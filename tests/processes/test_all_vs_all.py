"""The Figure 3 all-vs-all process: structure and end-to-end execution."""

import pytest

from repro.core.engine import BioOperaServer, InlineEnvironment
from repro.core.model import ParallelTask, SubprocessTask
from repro.processes import (
    build_align_chunk_template,
    build_all_vs_all_template,
    install_all_vs_all,
)
from repro.processes.partitioning import list_queue


class TestTemplates:
    def test_all_vs_all_validates(self):
        template = build_all_vs_all_template()
        assert template.validate() == []

    def test_align_chunk_validates(self):
        assert build_align_chunk_template().validate() == []

    def test_figure3_task_inventory(self):
        template = build_all_vs_all_template()
        tasks = template.graph.tasks
        assert set(tasks) == {
            "UserInput", "QueueGeneration", "Preprocessing", "Alignment",
            "MergeByEntry", "MergeByPAM",
        }
        assert isinstance(tasks["Alignment"], ParallelTask)
        assert isinstance(tasks["Alignment"].body, SubprocessTask)
        assert tasks["Alignment"].body.template_name == "align_chunk"

    def test_queue_generation_is_conditional(self):
        template = build_all_vs_all_template()
        conditions = {
            (c.source, c.target): c.condition.to_text()
            for c in template.graph.connectors
        }
        assert conditions[("UserInput", "QueueGeneration")] == (
            "NOT DEFINED(wb.queue_file)")
        assert conditions[("UserInput", "Preprocessing")] == (
            "DEFINED(wb.queue_file)")

    def test_chunk_has_fixed_then_refine(self):
        template = build_align_chunk_template()
        assert list(template.graph.topological_order()) == [
            "FixedPAM", "Refine"]

    def test_sphere_present(self):
        template = build_all_vs_all_template()
        assert template.spheres[0].tasks == ("Preprocessing", "Alignment")


@pytest.fixture()
def installed(darwin_modeled):
    server = BioOperaServer(seed=2)
    env = InlineEnvironment(nodes={"n1": 4, "n2": 4})
    server.attach_environment(env)
    install_all_vs_all(server, darwin_modeled)
    return server, env, darwin_modeled


class TestExecution:
    def test_full_run_without_queue_file(self, installed, small_profile):
        server, env, darwin = installed
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name, "granularity": 4,
        })
        assert env.run_instance(iid) == "completed"
        instance = server.instance(iid)
        # queue generation ran (no queue provided)
        assert instance.find_state("QueueGeneration").status == "completed"
        assert instance.outputs["match_count"] > 0
        assert instance.outputs["master_file"] == "allvsall.out"

    def test_run_with_user_queue_skips_generation(self, installed,
                                                  small_profile):
        server, env, darwin = installed
        queue = list_queue(list(range(1, len(small_profile) + 1)))
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name,
            "queue_file": queue,
            "granularity": 3,
        })
        assert env.run_instance(iid) == "completed"
        instance = server.instance(iid)
        assert instance.find_state("QueueGeneration").status == "skipped"

    def test_queue_subset_discards_entries(self, installed, small_profile):
        """The paper: the queue file lets BioOpera discard ill-behaving
        sequences — absent entries take no part in the comparison."""
        server, env, darwin = installed
        keep = [i for i in range(1, len(small_profile) + 1) if i not in (1, 2)]
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name,
            "queue_file": list_queue(keep),
            "granularity": 3,
        })
        env.run_instance(iid)
        merged = server.instance(iid).find_state("MergeByEntry").outputs
        for match in merged["matches"]["matches"]:
            assert match["i"] not in (1, 2)
            assert match["j"] not in (1, 2)

    def test_result_independent_of_granularity(self, small_profile,
                                               darwin_modeled):
        """Match counts must not depend on how the work was partitioned."""
        counts = []
        for granularity in (1, 3, 7):
            server = BioOperaServer(seed=2)
            env = InlineEnvironment()
            server.attach_environment(env)
            install_all_vs_all(server, darwin_modeled)
            iid = server.launch("all_vs_all", {
                "db_name": small_profile.name, "granularity": granularity,
            })
            env.run_instance(iid)
            counts.append(server.instance(iid).outputs["match_count"])
        assert counts[0] == counts[1] == counts[2]

    def test_real_mode_end_to_end(self, darwin_real, small_profile):
        server = BioOperaServer(seed=2)
        env = InlineEnvironment()
        server.attach_environment(env)
        install_all_vs_all(server, darwin_real)
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name, "granularity": 3,
        })
        assert env.run_instance(iid) == "completed"
        outputs = server.instance(iid).outputs
        assert outputs["match_count"] > 0
        # refined matches carry PAM estimates
        merged = server.instance(iid).find_state("MergeByEntry").outputs
        assert all("pam" in m for m in merged["matches"]["matches"])

    def test_real_matches_equal_direct_darwin_run(self, darwin_real,
                                                  small_profile):
        """The process orchestration adds nothing and loses nothing vs
        calling the application directly."""
        n = len(small_profile)
        queue = list(range(1, n + 1))
        direct_fixed = darwin_real.align_partition(queue, queue)["match_set"]
        direct = darwin_real.refine_match_set(direct_fixed)["match_set"]

        server = BioOperaServer(seed=2)
        env = InlineEnvironment()
        server.attach_environment(env)
        install_all_vs_all(server, darwin_real)
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name, "granularity": 1,
        })
        env.run_instance(iid)
        via_process = server.instance(iid).find_state(
            "MergeByEntry").outputs["matches"]
        assert via_process["count"] == direct["count"]
        assert [(m["i"], m["j"]) for m in via_process["matches"]] == \
               [(m["i"], m["j"]) for m in direct["matches"]]

    def test_pam_histogram_produced(self, installed, small_profile):
        server, env, darwin = installed
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name, "granularity": 2,
        })
        env.run_instance(iid)
        histogram = server.instance(iid).outputs["pam_histogram"]
        assert isinstance(histogram, dict)
        assert sum(histogram.values()) > 0

    def test_empty_queue_aborts_cleanly(self, installed, small_profile):
        server, env, darwin = installed
        iid = server.launch("all_vs_all", {
            "db_name": small_profile.name,
            "queue_file": {"kind": "list", "entries": []},
        })
        env.run_instance(iid)
        assert server.instance(iid).status == "aborted"
