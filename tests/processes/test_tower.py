"""Tower of information: nesting, data flow across levels, lineage."""

import pytest

from repro.core.engine import BioOperaServer, InlineEnvironment
from repro.core.model import SubprocessTask
from repro.processes import build_tower_template, install_tower
from repro.store import LineageGraph, LineageRecord


@pytest.fixture()
def tower_server(darwin_modeled):
    server = BioOperaServer(seed=4)
    env = InlineEnvironment(nodes={"n1": 8})
    server.attach_environment(env)
    install_tower(server, darwin_modeled)
    return server, env


class TestTemplate:
    def test_validates(self):
        assert build_tower_template().validate() == []

    def test_embeds_all_vs_all_as_subprocess(self):
        template = build_tower_template()
        pairwise = template.graph.tasks["PairwiseAlignments"]
        assert isinstance(pairwise, SubprocessTask)
        assert pairwise.template_name == "all_vs_all"

    def test_figure1_levels_present(self):
        template = build_tower_template()
        expected = {
            "GeneLocation", "Translation", "PairwiseAlignments",
            "Distances", "MultipleAlignment", "PhylogeneticTree",
            "AncestralSequences", "SecondaryStructure",
            "FunctionPrediction",
        }
        assert set(template.graph.tasks) == expected

    def test_ancestral_needs_both_msa_and_tree(self):
        template = build_tower_template()
        ancestral = template.graph.tasks["AncestralSequences"]
        assert ancestral.join == "and"
        sources = {c.source for c in template.graph.incoming(
            "AncestralSequences")}
        assert sources == {"MultipleAlignment", "PhylogeneticTree"}


class TestExecution:
    def launch(self, server, env, **overrides):
        inputs = {
            "genome_name": "synthetic_genome",
            "db_name": "mini_db",
            "granularity": 4,
        }
        inputs.update(overrides)
        iid = server.launch("tower_of_information", inputs)
        env.run_instance(iid)
        return iid

    def test_completes_with_outputs(self, tower_server):
        server, env = tower_server
        iid = self.launch(server, env)
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert set(instance.outputs) == {
            "functions", "tree", "structure_confidence"}
        assert 0.0 < instance.outputs["structure_confidence"] <= 1.0

    def test_nested_all_vs_all_ran(self, tower_server):
        server, env = tower_server
        iid = self.launch(server, env)
        instance = server.instance(iid)
        nested = instance.find_state("PairwiseAlignments")
        assert nested.status == "completed"
        assert nested.outputs["match_count"] > 0
        # the nested instance has its own frames
        assert "PairwiseAlignments/" in instance.frames

    def test_match_count_flows_to_distances(self, tower_server):
        server, env = tower_server
        iid = self.launch(server, env)
        instance = server.instance(iid)
        distances = instance.find_state("Distances")
        pairwise = instance.find_state("PairwiseAlignments")
        assert distances.outputs["pairs_used"] == \
            pairwise.outputs["match_count"]

    def test_lineage_records_every_activity(self, tower_server):
        server, env = tower_server
        iid = self.launch(server, env)
        records = [
            LineageRecord.from_dict(r)
            for r in server.store.data.lineage_records()
        ]
        graph = LineageGraph(records)
        produced = {r.task for r in records if r.instance_id == iid}
        assert "GeneLocation" in produced
        assert "FunctionPrediction" in produced
        assert any("Chunk" in task for task in produced)  # nested TEUs

    def test_genome_size_influences_cost(self, darwin_modeled):
        costs = []
        for size in (50_000, 500_000):
            server = BioOperaServer(seed=4)
            env = InlineEnvironment()
            server.attach_environment(env)
            install_tower(server, darwin_modeled)
            iid = server.launch("tower_of_information", {
                "genome_name": "g", "db_name": "d",
                "genome_size": size, "granularity": 2,
            })
            env.run_instance(iid)
            costs.append(
                server.instance(iid).find_state("GeneLocation").cost)
        assert costs[1] > costs[0]
