"""Queue files and TEU partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio import DatabaseProfile
from repro.errors import ReproError
from repro.processes import partitioning as P


class TestDescriptors:
    def test_range_queue(self):
        queue = P.range_queue(5)
        assert P.expand(queue) == [1, 2, 3, 4, 5]
        assert P.descriptor_size(queue) == 5

    def test_list_queue_dedupes_and_sorts(self):
        queue = P.list_queue([3, 1, 3, 2])
        assert P.expand(queue) == [1, 2, 3]

    def test_empty_queue_rejected(self):
        with pytest.raises(ReproError):
            P.range_queue(0)
        with pytest.raises(ReproError):
            P.list_queue([])

    def test_stride_expansion(self):
        descriptor = {"kind": "stride", "start": 2, "stride": 3, "hi": 11}
        assert P.expand(descriptor) == [2, 5, 8, 11]
        assert P.descriptor_size(descriptor) == 4

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            P.expand({"kind": "spiral"})
        with pytest.raises(ReproError):
            P.descriptor_size({"kind": "spiral"})

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=1, max_value=500),
           st.integers(min_value=1, max_value=50),
           st.integers(min_value=1, max_value=500))
    def test_size_matches_expansion(self, start, stride, hi):
        descriptor = {"kind": "stride", "start": start, "stride": stride,
                      "hi": hi}
        assert P.descriptor_size(descriptor) == len(P.expand(descriptor))


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["interleaved", "contiguous"])
    @pytest.mark.parametrize("n,granularity", [
        (10, 1), (10, 3), (10, 10), (522, 50), (100, 7),
    ])
    def test_partitions_cover_queue_exactly(self, strategy, n, granularity):
        queue = P.range_queue(n)
        partitions = P.make_partitions(queue, granularity, strategy)
        combined = sorted(
            entry for part in partitions for entry in P.expand(part)
        )
        assert combined == list(range(1, n + 1))

    def test_balanced_covers_queue(self):
        profile = DatabaseProfile.synthetic("p", 60, seed=1)
        queue = P.range_queue(60)
        partitions = P.make_partitions(queue, 7, "balanced", profile=profile)
        combined = sorted(
            entry for part in partitions for entry in P.expand(part)
        )
        assert combined == list(range(1, 61))

    def test_granularity_capped_at_queue_size(self):
        partitions = P.make_partitions(P.range_queue(4), 100)
        assert len(partitions) == 4

    def test_interleaved_range_uses_stride_descriptors(self):
        partitions = P.make_partitions(P.range_queue(1000), 50)
        assert all(part["kind"] == "stride" for part in partitions)
        # descriptors stay tiny regardless of queue size
        import json
        assert len(json.dumps(partitions)) < 50 * 70

    def test_interleaved_subset_queue(self):
        queue = P.list_queue([2, 4, 6, 8, 10])
        partitions = P.make_partitions(queue, 2)
        assert P.expand(partitions[0]) == [2, 6, 10]
        assert P.expand(partitions[1]) == [4, 8]

    def test_bad_granularity_rejected(self):
        with pytest.raises(ReproError):
            P.make_partitions(P.range_queue(10), 0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ReproError):
            P.make_partitions(P.range_queue(10), 2, "psychic")

    def test_balanced_requires_profile(self):
        with pytest.raises(ReproError):
            P.make_partitions(P.range_queue(10), 2, "balanced")


class TestBalance:
    def test_interleaved_beats_contiguous_on_pair_balance(self):
        """The triangular workload: contiguous ranges are badly imbalanced,
        striding fixes it — the reason `interleaved` is the default."""
        queue = P.range_queue(520)
        inter = P.partition_pair_counts(
            queue, P.make_partitions(queue, 20, "interleaved"))
        contig = P.partition_pair_counts(
            queue, P.make_partitions(queue, 20, "contiguous"))
        def imbalance(counts):
            return max(counts) / (sum(counts) / len(counts))
        assert imbalance(inter) < 1.1
        assert imbalance(contig) > 1.5

    def test_pair_counts_sum_to_total(self):
        queue = P.range_queue(100)
        for strategy in ("interleaved", "contiguous"):
            counts = P.partition_pair_counts(
                queue, P.make_partitions(queue, 9, strategy))
            assert sum(counts) == 100 * 99 // 2

    def test_balanced_strategy_is_most_even_by_cost(self):
        profile = DatabaseProfile.synthetic("p", 200, seed=5)
        queue = P.range_queue(200)

        def cost_spread(partitions):
            from repro.bio import CostModel
            model = CostModel()
            expanded_queue = P.expand(queue)
            costs = [
                model.teu_fixed_cost(profile, P.expand(part), expanded_queue)
                for part in partitions
            ]
            return max(costs) / (sum(costs) / len(costs))

        balanced = cost_spread(P.make_partitions(
            queue, 8, "balanced", profile=profile))
        contiguous = cost_spread(P.make_partitions(queue, 8, "contiguous"))
        assert balanced < contiguous
        assert balanced < 1.05

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=2, max_value=300),
           st.integers(min_value=1, max_value=40))
    def test_property_cover_disjoint(self, n, granularity):
        queue = P.range_queue(n)
        partitions = P.make_partitions(queue, granularity)
        seen = set()
        for part in partitions:
            entries = set(P.expand(part))
            assert not (entries & seen)
            seen |= entries
        assert seen == set(range(1, n + 1))
