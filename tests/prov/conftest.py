"""Shared fixtures for the provenance tests: a diamond-shaped process.

The diamond (two independent branches joining) is the smallest shape
where smart re-execution is observable: changing one branch's input
must re-run that branch and the join while the other branch replays
from the memo cache.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramRegistry,
    ProgramResult,
)

DIAMOND_OCR = """PROCESS diamond
  INPUT a
  INPUT b
  OUTPUT result = Join.out
  ACTIVITY Left
    PROGRAM work
    IN x = wb.a
    MAP out -> la
  END
  ACTIVITY Right
    PROGRAM work
    IN x = wb.b
    MAP out -> rb
  END
  ACTIVITY Join
    PROGRAM combine
    IN l = wb.la
    IN r = wb.rb
  END
  CONNECT Left -> Join
  CONNECT Right -> Join
END
"""


def diamond_registry(calls: List[Tuple[str, Dict]]) -> ProgramRegistry:
    """Programs for the diamond; every real execution lands in ``calls``."""
    registry = ProgramRegistry()

    def work(inputs, ctx):
        calls.append(("work", dict(inputs)))
        return ProgramResult({"out": inputs["x"] + 1})

    def combine(inputs, ctx):
        calls.append(("combine", dict(inputs)))
        return ProgramResult({"out": inputs["l"] * 100 + inputs["r"]})

    registry.register("work", work)
    registry.register("combine", combine)
    return registry


def diamond_server(calls: List[Tuple[str, Dict]], seed: int = 3,
                   memoize: bool = False
                   ) -> Tuple[BioOperaServer, InlineEnvironment]:
    """A server with the diamond template defined (optionally memoizing)."""
    server = BioOperaServer(registry=diamond_registry(calls), seed=seed)
    environment = InlineEnvironment()
    server.attach_environment(environment)
    if memoize:
        server.enable_memoization()
    server.define_template_ocr(DIAMOND_OCR)
    return server, environment


def run_diamond(server: BioOperaServer, environment: InlineEnvironment,
                a: int, b: int) -> str:
    """Launch the diamond with the given inputs and run to completion."""
    instance_id = server.launch("diamond", {"a": a, "b": b})
    environment.run_instance(instance_id)
    return instance_id
