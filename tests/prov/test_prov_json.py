"""W3C PROV-JSON export: structure, round-trip, cross-shard merge."""

from repro.prov import ProvenanceGraph, merge_prov_documents, \
    provenance_graph
from repro.store import codec

from .conftest import diamond_server, run_diamond


class TestExport:
    def test_document_has_the_w3c_sections(self):
        calls = []
        server, env = diamond_server(calls)
        iid = run_diamond(server, env, 1, 2)
        doc = provenance_graph(server.store).to_prov_json(iid)
        for section in ("prefix", "entity", "activity", "used",
                        "wasGeneratedBy", "wasDerivedFrom"):
            assert section in doc
        assert len(doc["activity"]) == 3
        spans = {a["repro:task"] for a in doc["activity"].values()}
        assert spans == {"Left", "Right", "Join"}

    def test_instance_filter_scopes_the_document(self):
        calls = []
        server, env = diamond_server(calls)
        run_a = run_diamond(server, env, 1, 2)
        run_b = run_diamond(server, env, 3, 4)
        graph = provenance_graph(server.store)
        doc = graph.to_prov_json(run_a)
        instances = {a["repro:instance"]
                     for a in doc["activity"].values()}
        assert instances == {run_a}
        full = graph.to_prov_json()
        assert len(full["activity"]) == 6
        assert run_b in {a["repro:instance"]
                         for a in full["activity"].values()}


class TestRoundTrip:
    def test_round_trip_is_byte_identical(self):
        calls = []
        server, env = diamond_server(calls)
        run_diamond(server, env, 1, 2)
        run_diamond(server, env, 3, 4)
        graph = provenance_graph(server.store)
        doc = graph.to_prov_json()
        back = ProvenanceGraph.from_prov_json(doc)
        assert codec.encode(back.dump()) == codec.encode(graph.dump())

    def test_round_trip_preserves_queries(self):
        calls = []
        server, env = diamond_server(calls)
        iid = run_diamond(server, env, 1, 2)
        graph = provenance_graph(server.store)
        back = ProvenanceGraph.from_prov_json(graph.to_prov_json())
        assert back.descendants(f"{iid}/wb:a") == \
            graph.descendants(f"{iid}/wb:a")
        assert [s["task"] for s in back.ancestry(f"{iid}/Join")] == \
            [s["task"] for s in graph.ancestry(f"{iid}/Join")]


class TestMerge:
    def test_merged_documents_cover_both_sources(self):
        calls = []
        server, env = diamond_server(calls)
        iid_a = run_diamond(server, env, 1, 2)
        iid_b = run_diamond(server, env, 3, 4)
        graph = provenance_graph(server.store)
        doc_a = graph.to_prov_json(iid_a)
        doc_b = graph.to_prov_json(iid_b)
        merged = merge_prov_documents([doc_a, doc_b])
        assert len(merged["activity"]) == 6
        merged_graph = ProvenanceGraph.from_prov_json(merged)
        ids = merged_graph.instance_ids()
        assert iid_a in ids and iid_b in ids
