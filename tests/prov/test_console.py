"""Operator console provenance surface: typed errors, shard fan-out."""

import pytest

from repro.core.engine.operator_console import OperatorConsole
from repro.errors import MigratedInstanceError, UnknownInstanceError
from repro.shard import ShardedConsole

from ..shard.conftest import make_plane
from .conftest import diamond_server, run_diamond


class TestSingleServerConsole:
    @pytest.fixture()
    def setup(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        return OperatorConsole(server), env, iid

    def test_provenance_run_lists_every_step(self, setup):
        console, _env, iid = setup
        steps = console.provenance_run(iid)
        assert [s["task"] for s in steps] == ["Left", "Right", "Join"]

    def test_dataset_names_accept_relative_form(self, setup):
        console, _env, iid = setup
        relative = console.provenance_descendants(iid, "wb:a")
        qualified = console.provenance_descendants(iid, f"{iid}/wb:a")
        assert relative == qualified and relative

    def test_unknown_instance_is_a_typed_error_not_empty(self, setup):
        console, _env, _iid = setup
        with pytest.raises(UnknownInstanceError):
            console.provenance_run("pi-424242")
        with pytest.raises(UnknownInstanceError):
            console.provenance_ancestry("pi-424242", "wb:a")

    def test_rerun_counts_as_manual_intervention(self, setup):
        console, env, iid = setup
        before = console.server.metrics["manual_interventions"]
        result = console.rerun(iid, changed_inputs={"b": 7})
        env.run_instance(result["rerun_id"])
        assert console.server.metrics["manual_interventions"] == before + 1
        report = console.rerun_report(result["rerun_id"])
        assert report["executed"] == ["Join", "Right"]
        assert report["replayed"] == ["Left"]


class TestShardedConsole:
    def _drained_plane(self):
        kernel, plane = make_plane(2, seed=9)
        requests = [plane.launch("t0", "job", {"cost": 0.4})
                    for _ in range(4)]
        kernel.run()
        ids = [r.result for r in requests]
        console = ShardedConsole(plane)
        donors = [i for i in ids if i.startswith("s00-")]
        moved = console.drain_shard(0)
        kernel.run()
        return kernel, plane, console, donors, moved

    def test_migrated_id_raises_typed_error_on_the_source_console(self):
        _kernel, plane, _console, donors, moved = self._drained_plane()
        source_console = OperatorConsole(plane.shards[0].server)
        old_id = donors[0]
        with pytest.raises(MigratedInstanceError) as excinfo:
            source_console.provenance_run(old_id)
        assert excinfo.value.forwarded_to == moved[old_id]

    def test_sharded_console_chases_the_forward(self):
        _kernel, _plane, console, donors, _moved = self._drained_plane()
        old_id = donors[0]
        steps = console.provenance_run(old_id)
        assert [s["task"] for s in steps] == ["Work"]
        # Qualified dataset names are re-based onto the migrated id.
        downstream = console.provenance_descendants(
            old_id, f"{old_id}/wb:cost")
        assert downstream and all("s01-" in d for d in downstream)

    def test_plane_wide_export_merges_every_shard(self):
        _kernel, plane, console, _donors, _moved = self._drained_plane()
        doc = console.export_prov()
        assert len(doc["activity"]) == 4
        live = [s for s in plane.shards if not s.retired]
        assert len(live) == 1  # everything merged onto the survivor

    def test_rerun_routes_through_the_forward(self):
        kernel, _plane, console, donors, _moved = self._drained_plane()
        old_id = donors[0]
        result = console.rerun(old_id, changed_inputs={"cost": 0.6})
        kernel.run()
        assert result["requested_id"] == old_id
        report = console.rerun_report(result["rerun_id"])
        assert report["executed"] == ["Work"]

    def test_cross_shard_diff(self):
        kernel, plane, console = None, None, None
        kernel, plane = make_plane(2, seed=5)
        requests = [plane.launch("t0", "job", {"cost": 0.4})
                    for _ in range(4)]
        kernel.run()
        ids = [r.result for r in requests]
        console = ShardedConsole(plane)
        a = next(i for i in ids if i.startswith("s00-"))
        b = next(i for i in ids if i.startswith("s01-"))
        diff = console.provenance_diff(a, b)
        assert diff["unchanged"] == ["Work"]
        assert diff["only_a"] == [] and diff["only_b"] == []
