"""Smart re-execution: minimal invalidated subgraph, memo accounting."""

import pytest

from repro.core.engine import BioOperaServer, InlineEnvironment
from repro.errors import InvalidStateError, StoreError, UnknownInstanceError
from repro.prov import execute_rerun, plan_rerun, rerun_report
from repro.store import codec

from .conftest import diamond_registry, diamond_server, run_diamond


class TestPlan:
    def test_changed_input_invalidates_only_its_branch(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        plan = plan_rerun(server.store, iid, changed_inputs={"b": 7})
        assert plan.stale_tasks == ["Join", "Right"]
        assert plan.memo_tasks == ["Left"]

    def test_task_ids_invalidate_the_task_and_downstream(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        plan = plan_rerun(server.store, iid, task_ids=["Left"])
        assert plan.stale_tasks == ["Join", "Left"]
        assert plan.memo_tasks == ["Right"]

    def test_unchanged_rerun_is_rejected(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        with pytest.raises(InvalidStateError):
            plan_rerun(server.store, iid)

    def test_unknown_task_is_a_typed_error(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        with pytest.raises(StoreError):
            plan_rerun(server.store, iid, task_ids=["Ghost"])

    def test_unknown_instance_is_a_typed_error(self):
        calls = []
        server, _env = diamond_server(calls)
        with pytest.raises(UnknownInstanceError):
            plan_rerun(server.store, "pi-999999", changed_inputs={"a": 1})


class TestExecution:
    def test_only_the_invalidated_subgraph_executes(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        calls.clear()
        handle = execute_rerun(server, iid, changed_inputs={"b": 7})
        env.run_instance(handle.new_instance_id)
        report = rerun_report(server.store, handle.new_instance_id)
        # Executed tasks == the predicted stale set; nothing else ran.
        assert report["executed"] == handle.plan.stale_tasks
        assert report["replayed"] == handle.plan.memo_tasks
        assert report["memo_hits"] == 1 and report["memo_misses"] == 2
        # The memoized branch's program never actually ran again.
        assert [name for name, _ in calls] == ["work", "combine"]
        assert calls[0][1] == {"x": 7}

    def test_outputs_byte_identical_to_full_rerun(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        handle = execute_rerun(server, iid, changed_inputs={"b": 7})
        env.run_instance(handle.new_instance_id)
        smart = server.instance(handle.new_instance_id).outputs
        server.disable_memoization()
        full_id = run_diamond(server, env, 1, 7)
        full = server.instance(full_id).outputs
        assert codec.encode(smart) == codec.encode(full)

    def test_rerun_recorded_as_linked_provenance(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        handle = execute_rerun(server, iid, changed_inputs={"b": 7})
        env.run_instance(handle.new_instance_id)
        record = server.store.data.run(f"rerun/{handle.new_instance_id}")
        assert record["original_id"] == iid
        assert record["rerun_id"] == handle.new_instance_id
        assert record["stale_tasks"] == ["Join", "Right"]

    def test_forced_task_rerun_executes_despite_cached_result(self):
        """task_ids mode deletes the stale tasks' memo entries, so the
        forced tasks re-execute even though their inputs are unchanged."""
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        calls.clear()
        handle = execute_rerun(server, iid, task_ids=["Left"])
        env.run_instance(handle.new_instance_id)
        report = rerun_report(server.store, handle.new_instance_id)
        assert report["executed"] == ["Join", "Left"]
        assert report["replayed"] == ["Right"]
        outputs = server.instance(handle.new_instance_id).outputs
        assert outputs == server.instance(iid).outputs

    def test_memo_metrics_count_hits_and_misses(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        assert server.metrics["memo_misses"] == 3
        handle = execute_rerun(server, iid, changed_inputs={"b": 7})
        env.run_instance(handle.new_instance_id)
        assert server.metrics["memo_hits"] == 1
        assert server.metrics["memo_misses"] == 5


class TestDurability:
    def test_memo_config_survives_recovery(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        run_diamond(server, env, 1, 2)
        server.crash()
        store = server.store.simulate_crash()
        recovered = BioOperaServer.recover(
            store, diamond_registry(calls),
            environment=InlineEnvironment())
        assert recovered.memoize is True

    def test_rerun_on_recovered_server_replays_from_durable_cache(self):
        calls = []
        server, env = diamond_server(calls, memoize=True)
        iid = run_diamond(server, env, 1, 2)
        server.crash()
        store = server.store.simulate_crash()
        fresh_calls = []
        recovered = BioOperaServer.recover(
            store, diamond_registry(fresh_calls),
            environment=InlineEnvironment())
        handle = execute_rerun(recovered, iid, changed_inputs={"b": 7})
        recovered.environment.run_instance(handle.new_instance_id)
        report = rerun_report(store, handle.new_instance_id)
        assert report["replayed"] == ["Left"]
        assert report["executed"] == ["Join", "Right"]
