"""Provenance view durability: checkpoints, crashes, recovery."""

import pytest

from repro.core.engine import BioOperaServer, InlineEnvironment
from repro.errors import StoreError
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.prov import CHECKPOINT_KEY, ProvenanceGraph, ProvenanceView
from repro.store import codec

from .conftest import diamond_registry, diamond_server, run_diamond


def _equivalent(store) -> bool:
    view = store.observability.provenance
    rebuilt = ProvenanceGraph.from_records(store.data.lineage_records())
    return (view.in_sync(store)
            and codec.encode(view.graph.dump())
            == codec.encode(rebuilt.dump()))


def _recover(server):
    calls = []
    store = server.store.simulate_crash()
    return BioOperaServer.recover(
        store, diamond_registry(calls), environment=InlineEnvironment()
    ), calls


class TestCheckpointRecovery:
    def test_recovery_from_checkpoint_replays_only_the_suffix(self):
        calls = []
        server, env = diamond_server(calls)
        run_diamond(server, env, 1, 2)
        server.obs.checkpoint()
        run_diamond(server, env, 3, 4)  # after the checkpoint
        server.crash()
        recovered, _ = _recover(server)
        assert _equivalent(recovered.store)
        assert len(recovered.store.observability.provenance.graph) == 6

    def test_crash_mid_checkpoint_recovers_equivalent(self):
        calls = []
        server, env = diamond_server(calls)
        run_diamond(server, env, 1, 2)
        injector = FaultInjector([FaultAction("prov.checkpoint", "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash):
                server.obs.checkpoint()
        server.crash()
        recovered, _ = _recover(server)
        assert _equivalent(recovered.store)

    def test_chaos_checkpoints_never_diverge(self):
        """Crash at every prov.checkpoint hit number in turn; each
        recovery must present an equivalent graph and keep running."""
        for at_hit in (1, 2):
            calls = []
            server, env = diamond_server(calls)
            run_diamond(server, env, 1, 2)
            injector = FaultInjector([
                FaultAction("prov.checkpoint", "crash", at_hit=at_hit)])
            with installed(injector):
                try:
                    server.obs.checkpoint()
                    run_diamond(server, env, 3, 4)
                    server.obs.checkpoint()
                except InjectedCrash:
                    pass
            server.crash()
            recovered, _ = _recover(server)
            assert _equivalent(recovered.store), f"at_hit={at_hit}"

    def test_cursor_ahead_of_log_is_rejected(self):
        calls = []
        server, env = diamond_server(calls)
        run_diamond(server, env, 1, 2)
        store = server.store
        view = store.observability.provenance
        with store.kv.transaction() as txn:
            txn.put(CHECKPOINT_KEY, {
                "cursor": view.cursor + 100,
                "state": view.graph.dump(),
            })
        fresh = ProvenanceView()
        with pytest.raises(StoreError):
            fresh.bind(store)


class TestLiveApplication:
    def test_redelivered_records_are_skipped(self):
        calls = []
        server, env = diamond_server(calls)
        iid = run_diamond(server, env, 1, 2)
        view = server.store.observability.provenance
        before = codec.encode(view.graph.dump())
        # Redeliver an already-folded record: idempotent, not a fork.
        view.on_lineage(0, server.store.data.lineage_records()[0])
        assert codec.encode(view.graph.dump()) == before
        assert iid in view.graph.instance_ids()

    def test_gap_in_the_stream_raises(self):
        calls = []
        server, env = diamond_server(calls)
        run_diamond(server, env, 1, 2)
        view = server.store.observability.provenance
        with pytest.raises(StoreError):
            view.on_lineage(view.cursor + 5,
                            server.store.data.lineage_records()[0])
