"""Provenance graph: queries, diff, equivalence with a full rescan."""

import pytest

from repro.errors import StoreError
from repro.prov import ProvenanceGraph, provenance_graph, relative_dataset
from repro.store import codec

from .conftest import diamond_server, run_diamond


class TestQueries:
    @pytest.fixture()
    def setup(self):
        calls = []
        server, env = diamond_server(calls)
        iid = run_diamond(server, env, 1, 2)
        return server, env, iid

    def test_ancestry_runs_furthest_ancestor_first(self, setup):
        server, _env, iid = setup
        graph = provenance_graph(server.store)
        tasks = [s["task"] for s in graph.ancestry(f"{iid}/Join")]
        assert tasks[-1] == "Join"
        assert set(tasks) == {"Left", "Right", "Join"}
        assert tasks.index("Left") < tasks.index("Join")
        assert tasks.index("Right") < tasks.index("Join")

    def test_descendants_of_one_input_stop_at_its_branch(self, setup):
        server, _env, iid = setup
        graph = provenance_graph(server.store)
        downstream = graph.descendants(f"{iid}/wb:a")
        assert f"{iid}/Left" in downstream
        assert f"{iid}/Join" in downstream
        assert f"{iid}/Right" not in downstream

    def test_derivation_path_walks_the_chain(self, setup):
        server, _env, iid = setup
        graph = provenance_graph(server.store)
        steps = graph.derivation_path(f"{iid}/wb:b", f"{iid}/Join")
        assert [s["task"] for s in steps] == ["Right", "Join"]

    def test_derivation_path_raises_when_unconnected(self, setup):
        server, _env, iid = setup
        graph = provenance_graph(server.store)
        with pytest.raises(StoreError):
            graph.derivation_path(f"{iid}/wb:a", f"{iid}/wb:b")

    def test_relative_dataset_strips_the_instance_prefix(self, setup):
        _server, _env, iid = setup
        assert relative_dataset(f"{iid}/wb:a", iid) == "wb:a"
        assert relative_dataset("other/wb:a", iid) == "other/wb:a"


class TestEquivalence:
    def test_live_view_matches_full_rescan_after_runs(self):
        calls = []
        server, env = diamond_server(calls)
        for a, b in [(1, 2), (3, 4), (5, 6)]:
            run_diamond(server, env, a, b)
        view = server.store.observability.provenance
        assert view.in_sync(server.store)
        rebuilt = ProvenanceGraph.from_records(
            server.store.data.lineage_records())
        assert codec.encode(view.graph.dump()) == \
            codec.encode(rebuilt.dump())

    def test_rederivation_replaces_not_duplicates(self):
        calls = []
        server, env = diamond_server(calls)
        iid = run_diamond(server, env, 1, 2)
        # Force Join to re-derive: its outputs replace the old record in
        # both the live view and a from-scratch rebuild, byte-identically.
        server.restart_task(iid, "Join")
        env.run_instance(iid)
        view = server.store.observability.provenance
        rebuilt = ProvenanceGraph.from_records(
            server.store.data.lineage_records())
        assert codec.encode(view.graph.dump()) == \
            codec.encode(rebuilt.dump())
        assert len([r for r in view.graph.run_records(iid)
                    if r.task == "Join"]) == 1


class TestDiff:
    def test_diff_flags_the_changed_branch(self):
        calls = []
        server, env = diamond_server(calls)
        run_a = run_diamond(server, env, 1, 2)
        run_b = run_diamond(server, env, 1, 9)
        graph = provenance_graph(server.store)
        diff = graph.diff_runs(run_a, run_b)
        assert diff["only_a"] == [] and diff["only_b"] == []
        assert set(diff["unchanged"]) == {"Left", "Right", "Join"}

    def test_diff_raises_typed_error_for_unknown_run(self):
        calls = []
        server, env = diamond_server(calls)
        run_a = run_diamond(server, env, 1, 2)
        graph = provenance_graph(server.store)
        with pytest.raises(StoreError):
            graph.diff_runs(run_a, "no-such-run")
