"""ScenarioScript: scheduled operations, annotations, background load."""

import pytest

from repro.cluster import (
    DAY,
    HOUR,
    ScenarioScript,
    SimKernel,
    SimulatedCluster,
    uniform,
)
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult


def build(n_nodes=2, cpus=2, seed=1):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(n_nodes, cpus=cpus))
    registry = ProgramRegistry()
    registry.register("w.u", lambda i, c: ProgramResult({}, 50.0))
    server = BioOperaServer(registry=registry, seed=seed)
    server.attach_environment(cluster)
    server.define_template_ocr(
        "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
    return kernel, cluster, server


class TestScheduling:
    def test_at_runs_and_annotates(self):
        kernel, cluster, _server = build()
        fired = []
        script = ScenarioScript(cluster)
        script.at(10.0, "my event", fired.append, "x")
        kernel.run(until=20.0)
        assert fired == ["x"]
        assert (10.0, "my event") in cluster.trace.annotations

    def test_node_crash_pair(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.node_crash(5.0, "node001", duration=10.0)
        kernel.run(until=6.0)
        assert not cluster.nodes["node001"].up
        kernel.run(until=16.0)
        assert cluster.nodes["node001"].up

    def test_storage_full_window(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.storage_full(5.0, duration=10.0)
        kernel.run(until=6.0)
        assert cluster.storage_full
        kernel.run(until=16.0)
        assert not cluster.storage_full

    def test_network_outage_window(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.network_outage(5.0, duration=10.0)
        kernel.run(until=6.0)
        assert cluster.network.outage
        kernel.run(until=16.0)
        assert not cluster.network.outage

    def test_server_maintenance(self):
        kernel, cluster, server = build()
        script = ScenarioScript(cluster)
        script.server_maintenance(5.0, duration=10.0)
        kernel.run(until=6.0)
        assert not cluster.server.up
        kernel.run(until=16.0)
        assert cluster.server.up
        assert cluster.server is not server  # recovered replacement

    def test_upgrade_all(self):
        kernel, cluster, server = build(cpus=1)
        script = ScenarioScript(cluster)
        script.upgrade_all(5.0, cpus=2)
        kernel.run(until=6.0)
        assert all(node.cpus == 2 for node in cluster.nodes.values())
        assert server.awareness.node("node001").cpus == 2

    def test_suspend_resume_instance(self):
        kernel, cluster, server = build()
        iid = server.launch("P")
        script = ScenarioScript(cluster)
        script.suspend_instance(5.0, iid)
        script.resume_instance(10.0, iid)
        kernel.run(until=6.0)
        assert server.instance(iid).status == "suspended"
        kernel.run(until=11.0)
        assert server.instance(iid).status == "running"


class TestLoadPatterns:
    def test_load_burst_sets_and_clears(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.load_burst(5.0, 10.0, ["node001"], 0.5)
        kernel.run(until=6.0)
        assert cluster.nodes["node001"].external_load == pytest.approx(1.0)
        assert cluster.nodes["node002"].external_load == 0.0
        kernel.run(until=16.0)
        assert cluster.nodes["node001"].external_load == 0.0

    def test_background_load_fluctuates_within_bounds(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.background_load(0.0, 2 * DAY, ["node001", "node002"],
                               mean_fraction=0.4, change_every=HOUR)
        observed = []

        def sample():
            observed.append(cluster.nodes["node001"].external_load)
            if kernel.now < 2 * DAY:
                kernel.schedule(HOUR, sample)

        kernel.schedule(HOUR, sample)
        kernel.run(until=2 * DAY + 1)
        assert observed
        assert all(0.0 <= load <= 2.0 for load in observed)
        assert len(set(observed)) > 3  # actually fluctuates

    def test_background_load_deterministic(self):
        loads = []
        for _ in range(2):
            kernel, cluster, _server = build(seed=9)
            script = ScenarioScript(cluster)
            script.background_load(0.0, DAY, ["node001"], 0.3,
                                   change_every=2 * HOUR)
            kernel.run(until=DAY)
            loads.append(cluster.nodes["node001"].external_load)
        assert loads[0] == loads[1]

    def test_background_load_clears_after_end(self):
        kernel, cluster, _server = build()
        script = ScenarioScript(cluster)
        script.background_load(0.0, HOUR, ["node001"], 0.9,
                               change_every=10 * 60.0)
        kernel.run(until=3 * HOUR)
        assert cluster.nodes["node001"].external_load == 0.0
