"""Per-link fault fabric: partitions, loss, duplication, reordering.

The network is no longer all-or-nothing: links between named endpoints can
be cut in either direction (or both), lose messages probabilistically,
duplicate them, or reorder them — and a cut that starts while a message is
in flight kills it at delivery time instead of letting it tunnel through.
These tests pin the fabric's semantics directly on :class:`Network`, then
the cluster-level partition API (`start_partition`/`heal_partition`) that
the failure detector and chaos harness drive.
"""

from repro.cluster import (
    ANY,
    SERVER,
    SimKernel,
    SimulatedCluster,
    uniform,
)
from repro.cluster.network import Network
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult


def _network(seed=1, **kw):
    kernel = SimKernel(seed=seed)
    return kernel, Network(kernel, **kw)


def _drain(kernel):
    while kernel.step():
        pass


class TestDirectedPartitions:
    def test_asymmetric_cut_blocks_one_direction_only(self):
        kernel, net = _network()
        net.partition({"a"}, {"b"}, symmetric=False)
        got = []
        assert net.send(got.append, "a->b", src="a", dst="b") is False
        assert net.send(got.append, "b->a", src="b", dst="a") is True
        _drain(kernel)
        assert got == ["b->a"]

    def test_symmetric_cut_blocks_both_directions(self):
        kernel, net = _network()
        pid = net.partition({"a"}, {"b"})
        assert not net.send(lambda: None, src="a", dst="b")
        assert not net.send(lambda: None, src="b", dst="a")
        net.heal(pid)
        assert net.send(lambda: None, src="a", dst="b")
        assert net.send(lambda: None, src="b", dst="a")

    def test_wildcard_endpoint_cuts_every_link_to_target(self):
        kernel, net = _network()
        net.partition({ANY}, {"b"}, symmetric=False)
        assert not net.send(lambda: None, src="a", dst="b")
        assert not net.send(lambda: None, src="z", dst="b")
        assert net.send(lambda: None, src="b", dst="a")

    def test_overlapping_partitions_heal_independently(self):
        kernel, net = _network()
        p1 = net.partition({"a"}, {"b"})
        p2 = net.partition({"a"}, {"c"})
        net.heal(p1)
        assert net.send(lambda: None, src="a", dst="b")
        assert not net.send(lambda: None, src="a", dst="c")
        net.heal(p2)
        assert net.send(lambda: None, src="a", dst="c")

    def test_inflight_message_killed_by_cut_invokes_on_dropped(self):
        kernel, net = _network()
        delivered = []
        dropped = []
        assert net.send(delivered.append, "late", src="a", dst="b",
                        on_dropped=lambda: dropped.append("late"))
        # cut starts while the message is in flight
        net.partition({"a"}, {"b"})
        _drain(kernel)
        assert delivered == []
        assert dropped == ["late"]
        assert net.inflight_killed == 1
        assert net.messages_dropped == 1

    def test_send_time_cut_returns_false_without_on_dropped_call(self):
        kernel, net = _network()
        dropped = []
        net.partition({"a"}, {"b"})
        sent = net.send(lambda: None, src="a", dst="b",
                        on_dropped=lambda: dropped.append(1))
        assert sent is False
        _drain(kernel)
        # a False return IS the signal; on_dropped covers post-send losses
        assert dropped == []


class TestLossDuplicationReordering:
    def test_asymmetric_loss_drops_one_direction(self):
        kernel, net = _network()
        net.set_loss("a", "b", 1.0)
        got = []
        assert net.send(got.append, "a->b", src="a", dst="b") is False
        assert net.send(got.append, "b->a", src="b", dst="a") is True
        _drain(kernel)
        assert got == ["b->a"]
        assert net.messages_dropped == 1

    def test_loss_rule_cleared_by_zero_probability(self):
        kernel, net = _network()
        net.set_loss("a", "b", 1.0)
        net.set_loss("a", "b", 0.0)
        assert net.send(lambda: None, src="a", dst="b") is True
        assert net.loss_probability("a", "b") == 0.0

    def test_wildcard_loss_applies_to_all_links(self):
        kernel, net = _network()
        net.set_loss(ANY, ANY, 1.0)
        assert net.send(lambda: None, src="a", dst="b") is False
        assert net.send(lambda: None, src="x", dst="y") is False

    def test_fractional_loss_drops_some_but_not_all(self):
        kernel, net = _network(seed=3)
        net.set_loss("a", "b", 0.5)
        results = [net.send(lambda: None, src="a", dst="b")
                   for _ in range(40)]
        assert any(results) and not all(results)

    def test_duplication_delivers_twice(self):
        kernel, net = _network()
        net.set_duplication(1.0)
        got = []
        net.send(got.append, "msg", src="a", dst="b")
        _drain(kernel)
        assert got == ["msg", "msg"]
        assert net.messages_duplicated == 1

    def test_reordering_flips_arrival_order(self):
        kernel, net = _network(seed=5, jitter=0.0)
        net.set_reordering(1.0, extra=50.0)
        order = []
        for i in range(10):
            net.send(order.append, i, src="a", dst="b")
        _drain(kernel)
        assert sorted(order) == list(range(10))
        assert order != list(range(10))
        assert net.messages_reordered == 10

    def test_disabled_features_draw_no_rng(self):
        """With every fabric feature off, the kernel's fault streams stay
        untouched — existing seeded runs must be bit-identical."""
        kernel, net = _network(seed=9)
        for _ in range(5):
            net.send(lambda: None, src="a", dst="b")
        _drain(kernel)
        # streams would have been consumed had the features been consulted
        assert kernel.rng("network-loss").random() == \
            SimKernel(seed=9).rng("network-loss").random()
        assert kernel.rng("network-dup").random() == \
            SimKernel(seed=9).rng("network-dup").random()


def _cluster_with_job(seed=21, nodes=2, cost=300.0):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(nodes, cpus=1),
                               execution_noise=0.0, detection_delay=30.0)
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({}, cost))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(
        "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
    instance_id = server.launch("P")
    return kernel, cluster, server, instance_id


class TestClusterPartitionAPI:
    def test_symmetric_partition_detected_as_node_down_then_heals(self):
        kernel, cluster, server, instance_id = _cluster_with_job()
        kernel.run(until=10.0)  # dispatch has landed
        pid = cluster.start_partition(["node001"], direction="both")
        kernel.run(until=50.0)  # past detection_delay
        assert server.awareness.node("node001").up is False
        cluster.heal_partition(pid)
        kernel.run(until=60.0)
        assert server.awareness.node("node001").up is True
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"

    def test_to_nodes_cut_is_invisible_to_failure_detector(self):
        kernel, cluster, server, instance_id = _cluster_with_job()
        kernel.run(until=10.0)
        cluster.start_partition(["node001"], direction="to-nodes")
        kernel.run(until=80.0)
        # reports still flow, so the detector never fires
        assert server.awareness.node("node001").up is True

    def test_available_cpus_excludes_partitioned_nodes(self):
        kernel = SimKernel(seed=4)
        cluster = SimulatedCluster(kernel, uniform(3, cpus=2))
        assert cluster.available_cpus() == 6
        pid = cluster.start_partition(["node001", "node002"],
                                      direction="to-server")
        assert cluster.available_cpus() == 2
        cluster.heal_partition(pid)
        assert cluster.available_cpus() == 6

    def test_heal_all_partitions(self):
        kernel = SimKernel(seed=4)
        cluster = SimulatedCluster(kernel, uniform(2, cpus=1))
        cluster.start_partition(["node001"], direction="both")
        cluster.start_partition(["node002"], direction="to-server")
        cluster.heal_all_partitions()
        assert not cluster.network.is_cut(SERVER, "node001")
        assert not cluster.network.is_cut("node002", SERVER)
        assert cluster.network.health()["partitions_active"] == 0
