"""Network, PEC, topology, and trace units."""

import pytest

from repro.cluster import (
    Network, NodeSpec, SimKernel, SimulatedCluster, ik_linux, ik_sun,
    linneus, uniform,
)


class TestNetwork:
    def test_delivery_with_latency(self):
        kernel = SimKernel(seed=1)
        network = Network(kernel, base_latency=0.1, jitter=0.05)
        got = []
        assert network.send(got.append, "msg") is True
        kernel.run()
        assert got == ["msg"]
        assert 0.1 <= kernel.now <= 0.15

    def test_outage_drops(self):
        kernel = SimKernel(seed=1)
        network = Network(kernel)
        network.start_outage()
        got = []
        assert network.send(got.append, "lost") is False
        kernel.run()
        assert got == []
        assert network.messages_dropped == 1
        network.end_outage()
        assert network.send(got.append, "ok") is True
        kernel.run()
        assert got == ["ok"]

    def test_latency_deterministic_per_seed(self):
        values1 = Network(SimKernel(seed=5)).latency()
        values2 = Network(SimKernel(seed=5)).latency()
        assert values1 == values2


class TestTopology:
    def test_linneus_is_33_cpus(self):
        specs = linneus()
        assert sum(spec.cpus for spec in specs) == 33
        sparc = [s for s in specs if "sparc" in s.name][0]
        assert "refine" in sparc.tags
        assert sparc.speed < 1.0

    def test_ik_sun_is_15_cpus_mean_speed_one(self):
        specs = ik_sun()
        assert sum(spec.cpus for spec in specs) == 15
        mean_speed = sum(s.speed for s in specs) / len(specs)
        assert mean_speed == pytest.approx(1.0)

    def test_ik_linux_upgradeable_8_to_16(self):
        specs = ik_linux()
        assert sum(s.cpus for s in specs) == 8
        assert all(s.speed == 1.25 for s in specs)

    def test_uniform(self):
        specs = uniform(3, cpus=4, speed=2.0)
        assert len(specs) == 3
        assert all(s.cpus == 4 and s.speed == 2.0 for s in specs)
        assert len({s.name for s in specs}) == 3

    def test_spec_to_dict(self):
        spec = NodeSpec("n", cpus=2, speed=1.5, tags=("gpu",))
        data = spec.to_dict()
        assert data["cpus"] == 2 and data["tags"] == ["gpu"]


class TestTrace:
    def make_cluster(self):
        kernel = SimKernel(seed=2)
        return SimulatedCluster(kernel, uniform(2, cpus=2))

    def test_record_dedupes_identical_samples(self):
        cluster = self.make_cluster()
        cluster.trace.record()
        cluster.trace.record()
        cluster.trace.record()
        assert len(cluster.trace.samples) == 1

    def test_force_record(self):
        cluster = self.make_cluster()
        cluster.trace.record()
        cluster.kernel.schedule(5.0, lambda: None)
        cluster.kernel.run()
        cluster.trace.record(force=True)
        assert len(cluster.trace.samples) == 2

    def test_integrals(self):
        cluster = self.make_cluster()
        kernel = cluster.kernel
        cluster.trace.record()                       # t=0: avail 4, busy 0
        kernel.schedule(10.0, cluster.crash_node, "node001")
        kernel.run(until=15.0)
        kernel.schedule_at(20.0, lambda: cluster.trace.record(force=True))
        kernel.run(until=20.0)
        available, _busy = cluster.trace.integrals()
        # 4 cpus x 10s + 2 cpus x 10s
        assert available == pytest.approx(60.0)

    def test_series_zero_order_hold(self):
        cluster = self.make_cluster()
        kernel = cluster.kernel
        cluster.trace.record()
        kernel.schedule(10.0, cluster.crash_node, "node001")
        kernel.run(until=15.0)
        kernel.schedule_at(30.0, lambda: cluster.trace.record(force=True))
        kernel.run(until=30.0)
        series = cluster.trace.series(step=5.0)
        values = {t: a for t, a, _b in series}
        assert values[0.0] == 4.0
        assert values[5.0] == 4.0
        assert values[15.0] == 2.0

    def test_annotations(self):
        cluster = self.make_cluster()
        cluster.trace.annotate("hello", time=3.0)
        assert cluster.trace.annotations == [(3.0, "hello")]

    def test_empty_trace_metrics(self):
        cluster = self.make_cluster()
        assert cluster.trace.utilization_fraction() == 0.0
        assert cluster.trace.max_available() == 0.0
        assert cluster.trace.series(step=1.0) == []


class TestPecMonitoring:
    def test_significant_load_change_reported(self):
        from repro.core.engine import BioOperaServer

        kernel = SimKernel(seed=3)
        cluster = SimulatedCluster(kernel, uniform(1, cpus=4))
        server = BioOperaServer()
        server.attach_environment(cluster)
        cluster.set_external_load("node001", 2.0)
        kernel.run(until=1.0)
        assert server.awareness.node("node001").external_load == \
            pytest.approx(2.0)

    def test_insignificant_change_suppressed(self):
        from repro.core.engine import BioOperaServer

        kernel = SimKernel(seed=3)
        cluster = SimulatedCluster(kernel, uniform(1, cpus=4))
        server = BioOperaServer()
        server.attach_environment(cluster)
        cluster.set_external_load("node001", 2.0)
        kernel.run(until=1.0)
        # +0.04 CPUs on a 4-cpu node = 1% — below the reporting cutoff
        cluster.set_external_load("node001", 2.04)
        kernel.run(until=2.0)
        assert server.awareness.node("node001").external_load == \
            pytest.approx(2.0)

    def test_pending_reports_cleared_after_send(self):
        kernel = SimKernel(seed=4)
        cluster = SimulatedCluster(kernel, uniform(1, cpus=1))
        from repro.core.engine import (
            BioOperaServer,
            ProgramRegistry,
            ProgramResult,
        )

        registry = ProgramRegistry()
        registry.register("w.u", lambda i, c: ProgramResult({}, 10.0))
        server = BioOperaServer(registry=registry)
        server.attach_environment(cluster)
        server.define_template_ocr(
            "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
        iid = server.launch("P")
        kernel.run(until=8.0)
        cluster.start_network_outage()
        kernel.run(until=60.0)  # completion report blocked, retry pending
        pec = cluster.pecs["node001"]
        assert pec.pending_reports
        cluster.end_network_outage()
        cluster.run_until_instance_done(iid)
        assert not pec.pending_reports
