"""Kill-and-restart load balancing (the paper's Section 5.4 discussion)."""


from repro.cluster import NodeSpec, SimKernel, SimulatedCluster
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult

ONE_TASK = """
PROCESS P
  ACTIVITY A
    PROGRAM w.unit
  END
END
"""


def build(migration: bool, seed: int = 1, cost: float = 1000.0):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(
        kernel,
        [NodeSpec("busy", 1, 1.0), NodeSpec("idle", 1, 1.0)],
        execution_noise=0.0,
    )
    registry = ProgramRegistry()
    registry.register("w.unit",
                      lambda i, c: ProgramResult({"v": 1}, cost=cost))
    server = BioOperaServer(registry=registry, seed=seed)
    server.attach_environment(cluster)
    if migration:
        server.enable_migration()
    server.define_template_ocr(ONE_TASK)
    return kernel, cluster, server


def starve_then_free(kernel, cluster, server):
    """Launch onto a node that then gets grabbed by other users while
    another node frees up — the migration-favourable pattern."""
    cluster.set_external_load("idle", 1.0)
    iid = server.launch("P")
    kernel.run(until=10.0)
    cluster.set_external_load("busy", 1.0)
    cluster.set_external_load("idle", 0.0)
    return iid


class TestMigration:
    def test_static_job_waits_out_preemption(self):
        kernel, cluster, server = build(migration=False)
        iid = starve_then_free(kernel, cluster, server)
        assert cluster.run_until_instance_done(iid) == "completed"
        assert server.metrics.get("jobs_migrated", 0) == 0

    def test_migration_moves_starving_job(self):
        kernel, cluster, server = build(migration=True)
        iid = starve_then_free(kernel, cluster, server)
        assert cluster.run_until_instance_done(iid) == "completed"
        assert server.metrics["jobs_migrated"] >= 1
        events = list(server.store.instances.events(iid))
        assert any(e.get("reason") == "migrated" for e in events)

    def test_migration_wins_when_user_fills_one_node_forever(self):
        """If the preempting user camps on the job's node while another is
        free, kill-and-restart beats leave-in-place."""
        walls = {}
        for migration in (False, True):
            kernel, cluster, server = build(migration=migration)
            cluster.set_external_load("idle", 1.0)
            kernel.run(until=1.0)  # let the load report land: place on busy
            iid = server.launch("P")
            kernel.run(until=50.0)
            cluster.set_external_load("busy", 1.0)   # camps forever
            cluster.set_external_load("idle", 0.0)
            if not migration:
                # without migration the job starves; free it eventually
                kernel.schedule(5000.0, cluster.set_external_load, "busy", 0.0)
            walls[migration] = None
            cluster.run_until_instance_done(iid)
            walls[migration] = kernel.now
        assert walls[True] < walls[False]

    def test_migration_does_not_fire_when_no_better_node(self):
        kernel, cluster, server = build(migration=True)
        iid = server.launch("P")
        kernel.run(until=10.0)
        # both nodes equally loaded: nothing to gain
        cluster.set_external_load("busy", 0.9)
        cluster.set_external_load("idle", 0.9)
        kernel.run(until=100.0)
        assert server.metrics.get("jobs_migrated", 0) == 0

    def test_migration_cancels_inflight_dispatch_cleanly(self):
        """A migrated job whose dispatch message was still in the network
        must not start as a zombie and slow the replacement down."""
        kernel, cluster, server = build(migration=True)
        iid = starve_then_free(kernel, cluster, server)
        cluster.run_until_instance_done(iid)
        # only the final attempt's job may have run on the idle node
        assert kernel.now < 1100.0

    def test_migrated_reason_is_infrastructure(self):
        from repro.core.engine.events import INFRASTRUCTURE_REASONS

        assert "migrated" in INFRASTRUCTURE_REASONS
