"""SimulatedCluster: dispatch, failures, outages, recovery, tracing."""

import pytest

from repro.cluster import ScenarioScript, SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult

FAN = """
PROCESS Fan
  INPUT items
  OUTPUT results = F.results
  PARALLEL F
    FOREACH wb.items AS e
    ACTIVITY Unit
      PROGRAM w.unit
    END
  END
END
"""


def build(n_nodes=3, cpus=2, unit_cost=100.0, seed=1, noise=0.0, **cluster_kw):
    registry = ProgramRegistry()
    registry.register(
        "w.unit",
        lambda i, c: ProgramResult({"v": i["e"]}, cost=unit_cost),
    )
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(n_nodes, cpus=cpus),
                               execution_noise=noise, **cluster_kw)
    server = BioOperaServer(registry=registry, seed=seed)
    server.attach_environment(cluster)
    server.define_template_ocr(FAN)
    return kernel, cluster, server


class TestHappyPath:
    def test_fan_completes_with_parallel_speedup(self):
        kernel, cluster, server = build(n_nodes=3, cpus=2)
        iid = server.launch("Fan", {"items": list(range(12))})
        assert cluster.run_until_instance_done(iid) == "completed"
        # 12 jobs of 100s on 6 CPUs: two waves plus overheads
        assert 200.0 <= kernel.now <= 260.0

    def test_server_clock_is_simulation_time(self):
        kernel, cluster, server = build()
        assert server.clock() == kernel.now

    def test_results_correct(self):
        _k, cluster, server = build()
        iid = server.launch("Fan", {"items": [3, 1, 4]})
        cluster.run_until_instance_done(iid)
        results = server.instance(iid).outputs["results"]
        assert [r["v"] for r in results] == [3, 1, 4]

    def test_cancel_kills_running_job(self):
        kernel, cluster, server = build()
        iid = server.launch("Fan", {"items": [1]})
        kernel.run(until=10.0)  # job is running on a node
        server.abort(iid, "test")
        assert all(not node.running_jobs()
                   for node in cluster.nodes.values())

    def test_deterministic_given_seed(self):
        walls = []
        for _ in range(2):
            kernel, cluster, server = build(seed=42, noise=0.2)
            iid = server.launch("Fan", {"items": list(range(8))})
            cluster.run_until_instance_done(iid)
            walls.append(kernel.now)
        assert walls[0] == walls[1]


class TestNodeFailure:
    def test_node_crash_work_is_rerun(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        iid = server.launch("Fan", {"items": [1, 2]})
        kernel.run(until=10.0)
        cluster.crash_node("node001")
        cluster.kernel.schedule(300.0, cluster.restore_node, "node001")
        assert cluster.run_until_instance_done(iid) == "completed"
        events = list(server.store.instances.events(iid))
        crash_failures = [e for e in events
                          if e["type"] == "task_failed"
                          and e["reason"] == "node-crash"]
        assert len(crash_failures) == 1

    def test_crash_detected_after_delay(self):
        kernel, cluster, server = build(detection_delay=120.0)
        iid = server.launch("Fan", {"items": [1]})
        kernel.run(until=10.0)
        cluster.crash_node("node001")
        assert server.awareness.node("node001").up  # not yet detected
        kernel.run(until=10.0 + 121.0)
        assert not server.awareness.node("node001").up

    def test_fast_recovery_cancels_detection(self):
        kernel, cluster, server = build(detection_delay=120.0)
        iid = server.launch("Fan", {"items": [1]})
        kernel.run(until=5.0)
        cluster.crash_node("node001")
        cluster.restore_node("node001")
        kernel.run(until=200.0)
        assert server.awareness.node("node001").up

    def test_whole_cluster_crash_and_recovery(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        iid = server.launch("Fan", {"items": [1, 2, 3, 4]})
        kernel.run(until=20.0)
        for name in list(cluster.nodes):
            cluster.crash_node(name)
        kernel.schedule(3600.0, cluster.restore_node, "node001")
        kernel.schedule(3600.0, cluster.restore_node, "node002")
        assert cluster.run_until_instance_done(iid) == "completed"


class TestNetworkOutage:
    def test_long_outage_loses_results_but_run_recovers(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1,
                                        detection_delay=60.0)
        iid = server.launch("Fan", {"items": [1, 2]})
        kernel.run(until=50.0)  # jobs running (100s each)
        cluster.start_network_outage()
        # outage longer than PEC retransmission budget
        kernel.schedule(3000.0, cluster.end_network_outage)
        assert cluster.run_until_instance_done(iid) == "completed"
        assert cluster.network.messages_dropped > 0

    def test_short_glitch_recovered_by_retransmission(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1,
                                        detection_delay=3600.0)
        iid = server.launch("Fan", {"items": [1, 2]})
        kernel.run(until=99.0)  # just before completion reports
        cluster.start_network_outage()
        kernel.schedule(120.0, cluster.end_network_outage)
        assert cluster.run_until_instance_done(iid) == "completed"
        # no rework: each unit ran once
        assert server.metrics["jobs_dispatched"] == 2


class TestStorageAndIO:
    def test_disk_full_fails_jobs_until_freed(self):
        kernel, cluster, server = build(n_nodes=1, cpus=1)
        cluster.set_storage_full(True)
        iid = server.launch("Fan", {"items": [1]})
        kernel.run(until=500.0)
        instance = server.instance(iid)
        assert instance.status == "running"  # retrying, not aborted
        cluster.set_storage_full(False)
        assert cluster.run_until_instance_done(iid) == "completed"
        events = list(server.store.instances.events(iid))
        assert any(e.get("reason") == "disk-full" for e in events)

    def test_io_error_rate_causes_retries(self):
        kernel, cluster, server = build(n_nodes=2, cpus=2, seed=3)
        cluster.set_job_failure_rate(0.5)
        iid = server.launch("Fan", {"items": list(range(6))})
        kernel.schedule(1000.0, cluster.set_job_failure_rate, 0.0)
        assert cluster.run_until_instance_done(iid) == "completed"
        events = list(server.store.instances.events(iid))
        io_errors = [e for e in events if e.get("reason") == "io-error"]
        assert io_errors  # some jobs failed and were retried


class TestServerCrash:
    def test_server_crash_and_recovery_completes(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        iid = server.launch("Fan", {"items": [1, 2, 3, 4]})
        kernel.run(until=50.0)
        cluster.crash_server()
        kernel.schedule(600.0, cluster.recover_server)
        kernel.run(until=651.0)
        recovered = cluster.server
        assert recovered is not server
        assert cluster.run_until_instance_done(iid) == "completed"
        assert recovered.instance(iid).outputs["results"]

    def test_results_during_server_downtime_are_lost_then_redone(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        iid = server.launch("Fan", {"items": [1, 2]})
        kernel.run(until=50.0)
        cluster.crash_server()
        kernel.run(until=200.0)  # jobs complete, reports dropped
        cluster.recover_server()
        assert cluster.run_until_instance_done(iid) == "completed"
        # server-recovery failures recorded for the in-flight tasks
        events = list(cluster.server.store.instances.events(iid))
        assert any(e.get("reason") == "server-recovery" for e in events)


class TestUpgradeAndTrace:
    def test_upgrade_doubles_throughput(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        iid = server.launch("Fan", {"items": list(range(8))})
        kernel.run(until=150.0)
        for name in list(cluster.nodes):
            cluster.upgrade_node(name, cpus=2)
        cluster.run_until_instance_done(iid)
        assert server.awareness.node("node001").cpus == 2
        assert cluster.trace.max_available() == 4.0

    def test_trace_availability_and_utilization(self):
        kernel, cluster, server = build(n_nodes=2, cpus=2)
        iid = server.launch("Fan", {"items": [1, 2, 3, 4]})
        cluster.run_until_instance_done(iid)
        assert cluster.trace.max_available() == 4.0
        assert cluster.trace.max_busy() == 4.0
        available, busy = cluster.trace.integrals()
        assert 0 < busy <= available

    def test_trace_series_resampling(self):
        kernel, cluster, server = build(n_nodes=1, cpus=1)
        iid = server.launch("Fan", {"items": [1]})
        cluster.run_until_instance_done(iid)
        series = cluster.trace.series(step=10.0)
        assert series[0][0] == 0.0
        assert all(t2 - t1 == pytest.approx(10.0)
                   for (t1, _, _), (t2, _, _) in zip(series, series[1:]))

    def test_scenario_annotations_recorded(self):
        kernel, cluster, server = build(n_nodes=2, cpus=1)
        script = ScenarioScript(cluster)
        script.node_crash(30.0, "node001", duration=60.0)
        iid = server.launch("Fan", {"items": [1, 2]})
        cluster.run_until_instance_done(iid)
        labels = [label for _t, label in cluster.trace.annotations]
        assert "node node001 failure" in labels
        assert "node node001 failure repaired" in labels


class TestExecutionNoise:
    def test_noise_changes_durations(self):
        kernel1, cluster1, server1 = build(seed=5, noise=0.0)
        iid1 = server1.launch("Fan", {"items": [1]})
        cluster1.run_until_instance_done(iid1)
        kernel2, cluster2, server2 = build(seed=5, noise=0.5)
        iid2 = server2.launch("Fan", {"items": [1]})
        cluster2.run_until_instance_done(iid2)
        assert kernel1.now != kernel2.now

    def test_noise_factor_mean_near_one(self):
        _k, cluster, _s = build(noise=0.3)
        samples = [cluster.execution_noise_factor() for _ in range(4000)]
        assert sum(samples) / len(samples) == pytest.approx(1.0, rel=0.05)
