"""PEC report retransmission: short glitches recover, long outages lose.

The PEC retries an unsendable report ``REPORT_RETRIES`` times, spaced
``RETRY_INTERVAL`` apart (paper: "TEUs failed to report" during network
trouble). These tests pin the bookkeeping on both sides of that schedule:

* a report that fails during a short outage, retries, and succeeds must
  clear ``pending_reports`` and must NOT count as lost;
* a report dropped after the retry budget must increment ``reports_lost``
  and clear ``pending_reports``.
"""

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult


def _launch_single_activity(seed):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(1, cpus=1))
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({}, 10.0))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(
        "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
    instance_id = server.launch("P")
    return kernel, cluster, server, instance_id


class TestReportRetransmission:
    def test_retry_success_clears_pending_without_loss(self):
        kernel, cluster, server, instance_id = _launch_single_activity(11)
        pec = cluster.pecs["node001"]
        # outage starts before the job completes (~t=12-14), so the first
        # completion report fails and a retry is scheduled
        kernel.run(until=2.0)
        cluster.start_network_outage()
        kernel.run(until=60.0)
        assert pec.pending_reports, "completion report should be pending"
        assert pec.reports_lost == 0
        # outage ends well before the first retry at ~+300s
        cluster.end_network_outage()
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert pec.pending_reports == set()
        assert pec.reports_lost == 0
        assert server.metrics["jobs_completed"] >= 1

    def test_exhausted_retries_count_as_lost(self):
        kernel, cluster, server, instance_id = _launch_single_activity(12)
        pec = cluster.pecs["node001"]
        kernel.run(until=2.0)
        cluster.start_network_outage()
        # retries fire at roughly +300, +600, +900 after the completion;
        # keep the outage up past all of them
        horizon = 2.0 + pec.RETRY_INTERVAL * (pec.REPORT_RETRIES + 1) + 100.0
        kernel.run(until=horizon)
        assert pec.reports_lost == 1
        assert pec.pending_reports == set()

    def test_lost_report_recovered_by_failure_path(self):
        """After the report is lost, the node-down/up machinery re-runs the
        task; the instance must still complete once the outage ends."""
        kernel, cluster, server, instance_id = _launch_single_activity(13)
        pec = cluster.pecs["node001"]
        kernel.run(until=2.0)
        cluster.start_network_outage()
        horizon = 2.0 + pec.RETRY_INTERVAL * (pec.REPORT_RETRIES + 1) + 100.0
        kernel.run(until=horizon)
        assert pec.reports_lost == 1
        cluster.end_network_outage()
        status = cluster.run_until_instance_done(
            cluster.server.instances and instance_id)
        assert status == "completed"
