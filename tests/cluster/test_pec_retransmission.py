"""PEC report retransmission: short glitches recover, long outages lose.

The PEC retries an unsendable report ``report_retries`` times with capped
exponential backoff plus seeded jitter (paper: "TEUs failed to report"
during network trouble). These tests pin the bookkeeping on both sides of
that schedule:

* a report that fails during a short outage, retries, and succeeds must
  clear ``pending_reports`` and must NOT count as lost;
* a report dropped after the retry budget must increment ``reports_lost``
  and clear ``pending_reports``;
* the backoff schedule itself must grow, cap, jitter deterministically
  per seed, and be configurable through the cluster environment.
"""

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult


def _launch_single_activity(seed, **cluster_kw):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(1, cpus=1), **cluster_kw)
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({}, 10.0))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(
        "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
    instance_id = server.launch("P")
    return kernel, cluster, server, instance_id


class TestReportRetransmission:
    def test_retry_success_clears_pending_without_loss(self):
        kernel, cluster, server, instance_id = _launch_single_activity(11)
        pec = cluster.pecs["node001"]
        # outage starts after the dispatch lands (~t=2.05) but before the
        # job completes (~t=12-14), so the first completion report fails
        # and a retry is scheduled
        kernel.run(until=5.0)
        cluster.start_network_outage()
        kernel.run(until=60.0)
        assert pec.pending_reports, "completion report should be pending"
        assert pec.reports_lost == 0
        # outage ends before the retry budget is spent (worst case the
        # first retry fires at ~+75s, well within the remaining budget)
        cluster.end_network_outage()
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert pec.pending_reports == set()
        assert pec.reports_lost == 0
        assert server.metrics["jobs_completed"] >= 1

    def test_exhausted_retries_count_as_lost(self):
        kernel, cluster, server, instance_id = _launch_single_activity(12)
        pec = cluster.pecs["node001"]
        kernel.run(until=5.0)
        cluster.start_network_outage()
        # keep the outage up past the whole worst-case backoff schedule
        horizon = 5.0 + 20.0 + pec.max_retry_span() + 100.0
        kernel.run(until=horizon)
        assert pec.reports_lost == 1
        assert pec.pending_reports == set()

    def test_lost_report_recovered_by_failure_path(self):
        """After the report is lost, the node-down/up machinery re-runs the
        task; the instance must still complete once the outage ends."""
        kernel, cluster, server, instance_id = _launch_single_activity(13)
        pec = cluster.pecs["node001"]
        kernel.run(until=5.0)
        cluster.start_network_outage()
        horizon = 5.0 + 20.0 + pec.max_retry_span() + 100.0
        kernel.run(until=horizon)
        assert pec.reports_lost == 1
        cluster.end_network_outage()
        status = cluster.run_until_instance_done(
            cluster.server.instances and instance_id)
        assert status == "completed"


class TestInFlightDrops:
    def test_report_killed_in_flight_feeds_retransmission(self):
        """A report that the fabric loses AFTER the send (outage starts
        mid-flight) must feed the same retry path as a send-time failure:
        Network.send returned True, so only ``on_dropped`` can tell the
        PEC its report died."""
        kernel, cluster, server, instance_id = _launch_single_activity(
            14, base_latency=5.0, jitter=0.0, execution_noise=0.0)
        pec = cluster.pecs["node001"]
        # dispatch lands at t=7, job runs 10s, report sent at t=17 and
        # would arrive at t=22 — the outage opens while it is in flight
        kernel.run(until=19.0)
        cluster.start_network_outage()
        kernel.run(until=30.0)
        assert cluster.network.inflight_killed >= 1
        assert pec.pending_reports, "killed report must be pending retry"
        assert pec.reports_lost == 0
        cluster.end_network_outage()
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert pec.pending_reports == set()
        assert pec.reports_lost == 0


class TestBackoffSchedule:
    def test_delays_grow_exponentially_and_cap(self):
        kernel = SimKernel(seed=7)
        cluster = SimulatedCluster(kernel, uniform(1, cpus=1),
                                   report_retries=8)
        pec = cluster.pecs["node001"]
        delays = [pec.retry_delay(k) for k in range(8)]
        for k, delay in enumerate(delays):
            base = min(pec.retry_cap, pec.retry_base * 2.0 ** k)
            assert base <= delay <= base * (1.0 + pec.retry_jitter)
        # the cap bounds every delay, jitter included
        assert max(delays) <= pec.retry_cap * (1.0 + pec.retry_jitter)
        # ignoring jitter, the schedule is non-decreasing up to the cap
        bases = [min(pec.retry_cap, pec.retry_base * 2.0 ** k)
                 for k in range(8)]
        assert bases == sorted(bases)
        assert bases[-1] == pec.retry_cap

    def test_jitter_is_seeded_and_deterministic(self):
        def delays(seed):
            kernel = SimKernel(seed=seed)
            cluster = SimulatedCluster(kernel, uniform(1, cpus=1))
            return [cluster.pecs["node001"].retry_delay(k) for k in range(5)]

        assert delays(3) == delays(3)
        assert delays(3) != delays(4)

    def test_cluster_environment_configures_backoff(self):
        kernel = SimKernel(seed=5)
        cluster = SimulatedCluster(
            kernel, uniform(2, cpus=1),
            report_retries=5, report_retry_base=10.0,
            report_retry_cap=40.0, report_retry_jitter=0.0,
        )
        for pec in cluster.pecs.values():
            assert pec.report_retries == 5
            assert pec.retry_delay(0) == 10.0
            assert pec.retry_delay(1) == 20.0
            assert pec.retry_delay(2) == 40.0
            assert pec.retry_delay(3) == 40.0  # capped
        assert cluster.pecs["node001"].max_retry_span() == 150.0
