"""SimNode compute mechanics: rates, preemption, crashes, upgrades."""

import pytest

from repro.cluster.node import NodeSpec, SimNode
from repro.cluster.simulation import SimKernel
from repro.errors import NodeDownError


class Harness:
    def __init__(self, cpus=2, speed=1.0):
        self.kernel = SimKernel()
        self.done = []
        self.node = SimNode(
            self.kernel,
            NodeSpec(name="n", cpus=cpus, speed=speed),
            on_job_done=lambda node, job_id, payload, cpu: self.done.append(
                (self.kernel.now, job_id, cpu)),
        )


class TestBasicExecution:
    def test_single_job_duration_equals_work_over_speed(self):
        h = Harness(cpus=1, speed=2.0)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.run()
        time, job_id, cpu = h.done[0]
        assert job_id == "j1"
        assert time == pytest.approx(5.0)       # 10 work at speed 2
        assert cpu == pytest.approx(5.0)        # 5 CPU-seconds on this node

    def test_two_jobs_two_cpus_run_in_parallel(self):
        h = Harness(cpus=2)
        h.node.start_job("j1", work=10.0, payload=None)
        h.node.start_job("j2", work=10.0, payload=None)
        h.kernel.run()
        assert [t for t, _j, _c in h.done] == pytest.approx([10.0, 10.0])

    def test_three_jobs_two_cpus_share(self):
        h = Harness(cpus=2)
        for j in ("j1", "j2", "j3"):
            h.node.start_job(j, work=10.0, payload=None)
        h.kernel.run()
        # each job progresses at 2/3 speed: 15 seconds
        assert h.done[0][0] == pytest.approx(15.0)

    def test_staggered_arrivals_integrate_progress(self):
        h = Harness(cpus=1)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(5.0, h.node.start_job, "j2", 10.0, None)
        h.kernel.run()
        # j1 runs alone 5s (5 work done), then shares: each at 0.5 rate.
        # j1 needs 5 more work -> 10 more seconds -> done at 15.
        # j2 then runs alone: 5 work left at t=15 -> done at 20.
        times = {job_id: t for t, job_id, _c in h.done}
        assert times["j1"] == pytest.approx(15.0)
        assert times["j2"] == pytest.approx(20.0)


class TestExternalLoad:
    def test_full_preemption_stalls_jobs(self):
        h = Harness(cpus=1)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(2.0, h.node.set_external_load, 1.0)
        h.kernel.run(until=100.0)
        assert h.done == []  # stalled forever (load never drops)

    def test_load_release_resumes(self):
        h = Harness(cpus=1)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(2.0, h.node.set_external_load, 1.0)
        h.kernel.schedule(12.0, h.node.set_external_load, 0.0)
        h.kernel.run()
        # 2s of work, 10s stalled, 8 more seconds of work
        assert h.done[0][0] == pytest.approx(20.0)

    def test_partial_load_slows_proportionally(self):
        h = Harness(cpus=2)
        h.node.start_job("j1", work=10.0, payload=None)
        h.node.set_external_load(1.0)  # one CPU's worth taken
        h.kernel.run()
        assert h.done[0][0] == pytest.approx(10.0)  # still a full CPU free
        h2 = Harness(cpus=2)
        h2.node.start_job("j1", work=10.0, payload=None)
        h2.node.set_external_load(1.5)  # only half a CPU left
        h2.kernel.run()
        assert h2.done[0][0] == pytest.approx(20.0)

    def test_cpu_consumed_excludes_stall_time(self):
        h = Harness(cpus=1)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(2.0, h.node.set_external_load, 1.0)
        h.kernel.schedule(12.0, h.node.set_external_load, 0.0)
        h.kernel.run()
        assert h.done[0][2] == pytest.approx(10.0)  # not 20

    def test_load_clamped_to_cpus(self):
        h = Harness(cpus=2)
        h.node.set_external_load(99.0)
        assert h.node.external_load == 2.0


class TestCrash:
    def test_crash_loses_running_jobs(self):
        h = Harness()
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(3.0, h.node.crash)
        h.kernel.run()
        assert h.done == []
        assert not h.node.up

    def test_crash_returns_lost_job_ids(self):
        h = Harness()
        h.node.start_job("j1", work=10.0, payload=None)
        h.node.start_job("j2", work=10.0, payload=None)
        assert h.node.crash() == ["j1", "j2"]

    def test_start_on_down_node_rejected(self):
        h = Harness()
        h.node.crash()
        with pytest.raises(NodeDownError):
            h.node.start_job("j1", work=1.0, payload=None)

    def test_restore_allows_new_work(self):
        h = Harness()
        h.node.crash()
        h.node.restore()
        h.node.start_job("j1", work=4.0, payload=None)
        h.kernel.run()
        assert h.done[0][1] == "j1"


class TestKillAndUpgrade:
    def test_kill_job(self):
        h = Harness()
        h.node.start_job("j1", work=10.0, payload=None)
        assert h.node.kill_job("j1") is True
        assert h.node.kill_job("j1") is False
        h.kernel.run()
        assert h.done == []

    def test_upgrade_mid_job_speeds_completion(self):
        h = Harness(cpus=1, speed=1.0)
        h.node.start_job("j1", work=10.0, payload=None)
        h.kernel.schedule(5.0, h.node.upgrade, None, 2.0)  # speed x2
        h.kernel.run()
        # 5 work in first 5s, remaining 5 work at speed 2 -> 2.5s
        assert h.done[0][0] == pytest.approx(7.5)

    def test_cpu_upgrade_unshares_jobs(self):
        h = Harness(cpus=1)
        h.node.start_job("j1", work=10.0, payload=None)
        h.node.start_job("j2", work=10.0, payload=None)
        h.kernel.schedule(5.0, h.node.upgrade, 2, None)
        h.kernel.run()
        # 5s shared (2.5 work each), then full speed: 7.5 more seconds
        assert h.done[0][0] == pytest.approx(12.5)


class TestMetrics:
    def test_utilization_counts_progressing_jobs(self):
        h = Harness(cpus=2)
        assert h.node.utilization() == 0.0
        h.node.start_job("j1", work=10.0, payload=None)
        assert h.node.utilization() == 1.0
        h.node.set_external_load(1.5)
        assert h.node.utilization() == pytest.approx(0.5)

    def test_available_cpus(self):
        h = Harness(cpus=2)
        assert h.node.available_cpus() == 2
        h.node.crash()
        assert h.node.available_cpus() == 0
