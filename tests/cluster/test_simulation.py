"""Discrete-event kernel: ordering, determinism, cancellation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.simulation import SimKernel, format_duration
from repro.errors import SimulationError


class TestScheduling:
    def test_events_run_in_time_order(self):
        kernel = SimKernel()
        log = []
        kernel.schedule(5.0, log.append, "late")
        kernel.schedule(1.0, log.append, "early")
        kernel.schedule(3.0, log.append, "middle")
        kernel.run()
        assert log == ["early", "middle", "late"]

    def test_ties_run_in_insertion_order(self):
        kernel = SimKernel()
        log = []
        for tag in "abc":
            kernel.schedule(1.0, log.append, tag)
        kernel.run()
        assert log == ["a", "b", "c"]

    def test_priority_breaks_ties(self):
        kernel = SimKernel()
        log = []
        kernel.schedule(1.0, log.append, "normal", priority=0)
        kernel.schedule(1.0, log.append, "urgent", priority=-1)
        kernel.run()
        assert log == ["urgent", "normal"]

    def test_now_advances_to_event_time(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(2.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [2.5]
        assert kernel.now == 2.5

    def test_schedule_at_absolute(self):
        kernel = SimKernel()
        kernel.schedule_at(10.0, lambda: None)
        kernel.run()
        assert kernel.now == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            SimKernel().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        kernel = SimKernel()
        kernel.schedule(5.0, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(2.0, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        kernel = SimKernel()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                kernel.schedule(1.0, chain, n + 1)

        kernel.schedule(0.0, chain, 0)
        kernel.run()
        assert log == [0, 1, 2, 3]
        assert kernel.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = SimKernel()
        log = []
        handle = kernel.schedule(1.0, log.append, "no")
        kernel.schedule(2.0, log.append, "yes")
        handle.cancel()
        kernel.run()
        assert log == ["yes"]

    def test_cancel_is_idempotent(self):
        kernel = SimKernel()
        handle = kernel.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        kernel.run()

    def test_pending_excludes_cancelled(self):
        kernel = SimKernel()
        handle = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None)
        handle.cancel()
        assert kernel.pending == 1


class TestRunControl:
    def test_run_until_horizon_inclusive(self):
        kernel = SimKernel()
        log = []
        kernel.schedule(1.0, log.append, "in")
        kernel.schedule(5.0, log.append, "at")
        kernel.schedule(5.1, log.append, "beyond")
        kernel.run(until=5.0)
        assert log == ["in", "at"]
        assert kernel.now == 5.0

    def test_run_max_events(self):
        kernel = SimKernel()
        log = []
        for i in range(5):
            kernel.schedule(float(i + 1), log.append, i)
        kernel.run(max_events=2)
        assert log == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert SimKernel().step() is False

    def test_reentrant_run_rejected(self):
        kernel = SimKernel()

        def recurse():
            kernel.run()

        kernel.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            kernel.run()

    def test_events_processed_counter(self):
        kernel = SimKernel()
        for i in range(3):
            kernel.schedule(float(i), lambda: None)
        kernel.run()
        assert kernel.events_processed == 3


class TestRandomness:
    def test_streams_deterministic_per_seed(self):
        a = SimKernel(seed=7).rng("x").random()
        b = SimKernel(seed=7).rng("x").random()
        assert a == b

    def test_streams_independent_by_name(self):
        kernel = SimKernel(seed=7)
        assert kernel.rng("x").random() != kernel.rng("y").random()

    def test_stream_is_cached(self):
        kernel = SimKernel()
        assert kernel.rng("x") is kernel.rng("x")

    def test_new_stream_does_not_perturb_existing(self):
        k1 = SimKernel(seed=3)
        first = [k1.rng("a").random() for _ in range(3)]
        k2 = SimKernel(seed=3)
        k2.rng("b").random()  # extra consumer
        second = [k2.rng("a").random() for _ in range(3)]
        assert first == second


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False), max_size=30))
    def test_execution_times_monotonic(self, delays):
        kernel = SimKernel()
        times = []
        for delay in delays:
            kernel.schedule(delay, lambda: times.append(kernel.now))
        kernel.run()
        assert times == sorted(times)
        assert len(times) == len(delays)


class TestFormatDuration:
    @pytest.mark.parametrize("seconds,expected", [
        (0, "0s"),
        (59, "59s"),
        (61, "1m 1s"),
        (3_600, "1h 0m 0s"),
        (86_400 * 38 + 3_600 * 3 + 60 * 22, "38d 3h 22m"),
        (-5, "0s"),
    ])
    def test_formats(self, seconds, expected):
        assert format_duration(seconds) == expected
