"""Snapshot atomicity and the replay-any-prefix robustness property."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.store.snapshot import FileSnapshot, MemorySnapshot


class TestFileSnapshot:
    def test_round_trip(self, tmp_path):
        snapshot = FileSnapshot(str(tmp_path / "snap"))
        snapshot.save({"a": 1, "b": [2, 3]})
        assert snapshot.load() == {"a": 1, "b": [2, 3]}

    def test_missing_file_loads_none(self, tmp_path):
        assert FileSnapshot(str(tmp_path / "nope")).load() is None

    def test_overwrite_is_atomic_rename(self, tmp_path):
        path = str(tmp_path / "snap")
        snapshot = FileSnapshot(path)
        snapshot.save({"v": 1})
        snapshot.save({"v": 2})
        assert snapshot.load() == {"v": 2}
        # no stray temp file left behind
        assert os.listdir(tmp_path) == ["snap"]

    def test_interrupted_write_leaves_old_snapshot(self, tmp_path):
        """A crash mid-write (temp file exists, rename never happened)
        must not corrupt the last good snapshot."""
        path = str(tmp_path / "snap")
        snapshot = FileSnapshot(path)
        snapshot.save({"good": True})
        with open(path + ".tmp", "wb") as fh:
            fh.write(b'{"half-writ')   # simulated torn temp file
        assert snapshot.load() == {"good": True}

    def test_save_fsyncs_directory_after_rename(self, tmp_path, monkeypatch):
        """Regression: the rename itself must be made durable by fsyncing
        the containing directory — without it a power loss shortly after
        save() can roll the directory entry back to the old snapshot."""
        import stat

        path = str(tmp_path / "snap")
        snapshot = FileSnapshot(path)
        synced_modes = []
        real_fsync = os.fsync

        def spy(fd):
            synced_modes.append(os.fstat(fd).st_mode)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        snapshot.save({"v": 1})
        assert any(stat.S_ISDIR(mode) for mode in synced_modes), \
            "save() must fsync the containing directory after os.replace"


class TestMemorySnapshot:
    def test_round_trip(self):
        snapshot = MemorySnapshot()
        assert snapshot.load() is None
        snapshot.save({"x": [1]})
        assert snapshot.load() == {"x": [1]}

    def test_load_returns_fresh_copy(self):
        snapshot = MemorySnapshot()
        snapshot.save({"x": [1]})
        first = snapshot.load()
        first["x"].append(99)
        assert snapshot.load() == {"x": [1]}


class TestReplayPrefixProperty:
    """Replaying ANY prefix of a valid event log must never crash and must
    yield a consistent instance — this is exactly the state a recovery
    sees if the server died mid-run."""

    @pytest.fixture(scope="class")
    def full_log(self, darwin_real, small_profile):
        from repro.core.engine import BioOperaServer, InlineEnvironment
        from repro.processes import install_all_vs_all

        server = BioOperaServer(seed=6)
        environment = InlineEnvironment()
        server.attach_environment(environment)
        install_all_vs_all(server, darwin_real)
        instance_id = server.launch("all_vs_all", {
            "db_name": small_profile.name, "granularity": 3,
        })
        environment.run_instance(instance_id)
        events = list(server.store.instances.events(instance_id))
        return server, instance_id, events

    def test_every_prefix_replays(self, full_log):
        from repro.core.engine import ProcessInstance

        server, instance_id, events = full_log
        assert len(events) > 20
        statuses = []
        for cut in range(1, len(events) + 1):
            twin = ProcessInstance(instance_id, server._resolver)
            twin.replay(iter(events[:cut]))
            statuses.append(twin.status)
            # invariants that must hold at every point in history:
            for state in twin.iter_states():
                assert state.attempts >= state.program_failures
                if state.status == "completed":
                    assert state.outputs is not None
        assert statuses[0] == "created"
        assert statuses[-1] == "completed"

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_random_prefix_progress_monotone(self, full_log, data):
        """Longer prefixes never have FEWER completed tasks."""
        from repro.core.engine import ProcessInstance

        server, instance_id, events = full_log
        short = data.draw(st.integers(min_value=1, max_value=len(events)))
        long = data.draw(st.integers(min_value=short, max_value=len(events)))

        def completed_count(cut):
            twin = ProcessInstance(instance_id, server._resolver)
            twin.replay(iter(events[:cut]))
            return sum(1 for s in twin.iter_states()
                       if s.status == "completed")

        assert completed_count(long) >= completed_count(short)
