"""Group commit: coalesced write+fsync, sync policies, crash windows.

The durability contract under a grouped sync policy is deliberately
weaker per commit and is pinned here: a commit is *acked* once a flush
covering it completes (explicit :meth:`KVStore.flush`, a full buffer, an
interval expiry, a checkpoint, or a clean close). A crash loses exactly
the unacked buffer — never an acked commit, and never a *prefix-torn*
batch: the ``store.group_commit.pre_sync`` window fires before the
coalesced append, so a crash there leaves nothing of the batch behind.
"""

import pytest

from repro.errors import StoreError
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.store import KVStore


def _group_store(**kwargs):
    kwargs.setdefault("sync_policy", "group")
    kwargs.setdefault("group_max_pending", 64)
    return KVStore(**kwargs)


class TestSyncPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(StoreError):
            KVStore(sync_policy="eventually")

    def test_per_commit_syncs_every_commit(self):
        kv = KVStore()  # default policy
        kv.put("a", 1)
        kv.put("b", 2)
        assert kv.pending_commits == 0
        assert kv.stats["syncs"] == 2

    def test_group_buffers_until_flush(self):
        kv = _group_store()
        kv.put("a", 1)
        kv.put("b", 2)
        # reads see the buffered state immediately...
        assert kv.get("b") == 2
        # ...but nothing reached the WAL yet
        assert kv.pending_commits == 2
        assert kv.wal_records == 0
        assert kv.stats["syncs"] == 0
        assert kv.flush() == 2
        assert kv.pending_commits == 0
        assert kv.wal_records == 2
        assert kv.stats["group_flushes"] == 1
        assert kv.stats["flushed_commits"] == 2
        assert kv.stats["max_group"] == 2

    def test_flush_on_empty_buffer_is_noop(self):
        kv = _group_store()
        assert kv.flush() == 0
        assert kv.stats["syncs"] == 0

    def test_full_buffer_flushes_itself(self):
        kv = _group_store(group_max_pending=3)
        kv.put("a", 1)
        kv.put("b", 2)
        assert kv.pending_commits == 2
        kv.put("c", 3)  # third commit fills the buffer
        assert kv.pending_commits == 0
        assert kv.wal_records == 3

    def test_interval_policy_flushes_when_clock_advances(self):
        clock = {"now": 0.0}
        kv = KVStore(sync_policy="interval", sync_interval=1.0,
                     clock=lambda: clock["now"])
        kv.put("a", 1)
        kv.put("b", 2)
        assert kv.pending_commits == 2  # interval not reached
        clock["now"] = 1.5
        kv.put("c", 3)  # commit notices the expired interval
        assert kv.pending_commits == 0
        assert kv.wal_records == 3

    def test_interval_policy_still_caps_buffer_size(self):
        kv = KVStore(sync_policy="interval", sync_interval=1e9,
                     group_max_pending=2, clock=lambda: 0.0)
        kv.put("a", 1)
        kv.put("b", 2)
        assert kv.pending_commits == 0  # cap, not clock, forced the flush


class TestDurabilityBoundary:
    def test_unacked_commits_lost_acked_survive(self):
        kv = _group_store()
        kv.put("acked", 1)
        kv.flush()
        kv.put("unacked", 2)
        survivor = kv.simulate_crash()
        assert survivor.get("acked") == 1
        assert survivor.get("unacked") is None
        assert survivor.audit() == []

    def test_checkpoint_acks_pending(self):
        kv = _group_store(retain_history=True)
        kv.put("a", 1)
        kv.put("b", 2)
        kv.checkpoint()
        assert kv.pending_commits == 0
        survivor = kv.simulate_crash()
        assert survivor.get("a") == 1 and survivor.get("b") == 2
        assert survivor.audit() == []

    def test_audit_clean_with_pending_commits(self):
        kv = _group_store(retain_history=True)
        kv.put("a", 1)
        kv.checkpoint()
        kv.put("b", 2)  # buffered, not yet in any log
        assert kv.pending_commits == 1
        assert kv.audit() == []

    def test_close_flushes_graceful_shutdown_loses_nothing(self, tmp_path):
        path = str(tmp_path / "store")
        kv = KVStore(path, sync_policy="group")
        kv.put("a", 1)
        kv.close()
        reopened = KVStore(path)
        assert reopened.get("a") == 1
        reopened.close()

    def test_recover_preserves_sync_policy(self, tmp_path):
        path = str(tmp_path / "store")
        kv = KVStore(path, sync_policy="group", group_max_pending=7)
        kv.put("a", 1)
        reopened = kv.recover()  # close() flushes, then reopen
        assert reopened.get("a") == 1
        reopened.put("b", 2)
        assert reopened.pending_commits == 1  # still grouped
        reopened.close()

    def test_transaction_is_one_buffered_commit(self):
        kv = _group_store()
        with kv.transaction() as txn:
            for i in range(5):
                txn.put(f"k{i}", i)
        assert kv.pending_commits == 1
        kv.flush()
        assert kv.wal_records == 1


class TestCrashWindows:
    def test_pre_sync_crash_loses_whole_batch(self):
        kv = _group_store()
        kv.put("acked", 1)
        kv.flush()
        kv.put("p1", 1)
        kv.put("p2", 2)
        action = FaultAction("store.group_commit.pre_sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash) as err:
                kv.flush()
        assert err.value.point == "store.group_commit.pre_sync"
        survivor = kv.simulate_crash()
        assert survivor.get("acked") == 1
        assert survivor.get("p1") is None
        assert survivor.get("p2") is None

    def test_post_sync_crash_keeps_whole_batch(self):
        kv = _group_store()
        kv.put("p1", 1)
        kv.put("p2", 2)
        action = FaultAction("store.group_commit.post_sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                kv.flush()
        survivor = kv.simulate_crash()
        assert survivor.get("p1") == 1
        assert survivor.get("p2") == 2

    def test_pre_sync_crash_on_disk_leaves_no_partial_batch(self, tmp_path):
        path = str(tmp_path / "store")
        kv = KVStore(path, sync_policy="group")
        kv.put("acked", 1)
        kv.flush()
        kv.put("p1", 1)
        kv.put("p2", 2)
        action = FaultAction("store.group_commit.pre_sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                kv.flush()
        # reopen the directory cold — close() would flush and defeat the
        # point, so the dead store is simply abandoned
        reopened = KVStore(path)
        assert reopened.get("acked") == 1
        assert reopened.get("p1") is None
        assert reopened.get("p2") is None
        reopened.close()

    def test_post_sync_crash_on_disk_keeps_batch(self, tmp_path):
        path = str(tmp_path / "store")
        kv = KVStore(path, sync_policy="group")
        kv.put("p1", 1)
        kv.put("p2", 2)
        action = FaultAction("store.group_commit.post_sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                kv.flush()
        reopened = KVStore(path)
        assert reopened.get("p1") == 1
        assert reopened.get("p2") == 2
        reopened.close()

    def test_auto_flush_passes_through_crash_windows(self):
        """The windows guard every flush, not just explicit ones."""
        kv = _group_store(group_max_pending=2)
        action = FaultAction("store.group_commit.pre_sync", "crash")
        with installed(FaultInjector([action])):
            kv.put("a", 1)
            with pytest.raises(InjectedCrash):
                kv.put("b", 2)  # fills the buffer -> auto-flush -> crash

    def test_batch_spanning_segment_rotation_survives(self, tmp_path):
        """A coalesced append bigger than a segment rotates mid-batch;
        every record still lands durably and reopen replays them all."""
        path = str(tmp_path / "store")
        kv = KVStore(path, sync_policy="group", segment_records=3)
        for i in range(8):
            kv.put(f"k{i}", i)
        kv.flush()
        reopened = KVStore(path, segment_records=3)
        assert {k: reopened.get(k) for k in reopened.keys()} \
            == {f"k{i}": i for i in range(8)}
        reopened.close()


class TestTransactionRetry:
    def test_failing_commit_leaves_transaction_retryable(self):
        """Regression: a commit that dies inside the store must NOT mark
        the transaction done — the caller may retry it once the fault
        clears, and only a *successful* commit finishes the transaction."""
        kv = KVStore()  # per-commit: commit hits wal.append directly
        txn = kv.transaction()
        txn.put("k", 42)
        with installed(FaultInjector([FaultAction("wal.append", "crash")])):
            with pytest.raises(InjectedCrash):
                txn.commit()
        # the fault cleared; the same transaction commits cleanly
        txn.commit()
        assert kv.get("k") == 42
        with pytest.raises(StoreError):
            txn.commit()  # now it IS done

    def test_failing_commit_through_context_manager(self):
        kv = KVStore()
        with installed(FaultInjector([FaultAction("wal.append", "crash")])):
            with pytest.raises(InjectedCrash):
                with kv.transaction() as txn:
                    txn.put("k", 1)
        # the crash propagated and nothing was applied
        assert kv.get("k") is None
