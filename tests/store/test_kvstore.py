"""KV store: durability, transactions, snapshots, recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreError
from repro.store import KVStore, MEMORY


class TestBasicOps:
    def test_put_get(self):
        store = KVStore()
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}

    def test_get_default(self):
        assert KVStore().get("missing", 42) == 42

    def test_delete(self):
        store = KVStore()
        store.put("k", 1)
        store.delete("k")
        assert "k" not in store

    def test_delete_missing_is_noop(self):
        KVStore().delete("never-there")

    def test_overwrite(self):
        store = KVStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_len(self):
        store = KVStore()
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2

    def test_keys_sorted_with_prefix(self):
        store = KVStore()
        for key in ("b/2", "a/1", "b/1"):
            store.put(key, key)
        assert store.keys("b/") == ["b/1", "b/2"]
        assert store.keys() == ["a/1", "b/1", "b/2"]

    def test_items_prefix_scan(self):
        store = KVStore()
        store.put("x/1", 10)
        store.put("y/1", 20)
        assert dict(store.items("x/")) == {"x/1": 10}


class TestTransactions:
    def test_commit_applies_all(self):
        store = KVStore()
        with store.transaction() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
        assert store.get("a") == 1 and store.get("b") == 2

    def test_abort_applies_nothing(self):
        store = KVStore()
        txn = store.transaction()
        txn.put("a", 1)
        txn.abort()
        assert "a" not in store

    def test_exception_rolls_back(self):
        store = KVStore()
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                txn.put("a", 1)
                raise RuntimeError("boom")
        assert "a" not in store

    def test_double_commit_rejected(self):
        store = KVStore()
        txn = store.transaction()
        txn.put("a", 1)
        txn.commit()
        with pytest.raises(StoreError):
            txn.commit()

    def test_transaction_is_single_wal_record(self):
        store = KVStore()
        with store.transaction() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
            txn.delete("a")
        assert store.wal_records == 1
        assert "a" not in store and store.get("b") == 2

    def test_empty_transaction_writes_nothing(self):
        store = KVStore()
        with store.transaction():
            pass
        assert store.wal_records == 0


class TestDurability:
    def test_disk_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        store.put("k", [1, 2, 3])
        store.delete("gone")
        store.close()
        recovered = KVStore(path)
        assert recovered.get("k") == [1, 2, 3]

    def test_recover_method(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        store.put("k", "v")
        recovered = store.recover()
        assert recovered.get("k") == "v"

    def test_recover_on_memory_store_rejected(self):
        with pytest.raises(StoreError):
            KVStore(MEMORY).recover()

    def test_simulate_crash_on_disk_store_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            KVStore(str(tmp_path / "db")).simulate_crash()

    def test_checkpoint_compacts_wal(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        for i in range(20):
            store.put(f"k{i}", i)
        assert store.wal_records == 20
        store.checkpoint()
        assert store.wal_records == 0
        store.put("after", 1)
        store.close()
        recovered = KVStore(path)
        assert recovered.get("k7") == 7
        assert recovered.get("after") == 1

    def test_memory_crash_preserves_synced_state(self):
        store = KVStore()
        store.put("durable", 1)  # put() syncs
        survivor = store.simulate_crash()
        assert survivor.get("durable") == 1

    def test_crash_after_checkpoint(self):
        store = KVStore()
        store.put("a", 1)
        store.checkpoint()
        store.put("b", 2)
        survivor = store.simulate_crash()
        assert survivor.get("a") == 1
        assert survivor.get("b") == 2


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcde", min_size=1, max_size=3),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=30,
    ))
    def test_disk_recovery_equals_dict_semantics(self, tmp_path_factory, ops):
        """The store recovered from disk matches a plain dict replay."""
        path = str(tmp_path_factory.mktemp("kv") / "db")
        store = KVStore(path)
        model = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        store.close()
        recovered = KVStore(path)
        assert dict(recovered.items()) == model
        recovered.close()
