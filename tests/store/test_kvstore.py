"""KV store: durability, transactions, snapshots, bounded recovery."""

import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StoreError
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.store import KVStore, MEMORY
from repro.store import codec
from repro.store.wal import MANIFEST_NAME, FileWAL


class TestBasicOps:
    def test_put_get(self):
        store = KVStore()
        store.put("k", {"v": 1})
        assert store.get("k") == {"v": 1}

    def test_get_default(self):
        assert KVStore().get("missing", 42) == 42

    def test_delete(self):
        store = KVStore()
        store.put("k", 1)
        store.delete("k")
        assert "k" not in store

    def test_delete_missing_is_noop(self):
        KVStore().delete("never-there")

    def test_overwrite(self):
        store = KVStore()
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2

    def test_len(self):
        store = KVStore()
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2

    def test_keys_sorted_with_prefix(self):
        store = KVStore()
        for key in ("b/2", "a/1", "b/1"):
            store.put(key, key)
        assert store.keys("b/") == ["b/1", "b/2"]
        assert store.keys() == ["a/1", "b/1", "b/2"]

    def test_items_prefix_scan(self):
        store = KVStore()
        store.put("x/1", 10)
        store.put("y/1", 20)
        assert dict(store.items("x/")) == {"x/1": 10}


class TestTransactions:
    def test_commit_applies_all(self):
        store = KVStore()
        with store.transaction() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
        assert store.get("a") == 1 and store.get("b") == 2

    def test_abort_applies_nothing(self):
        store = KVStore()
        txn = store.transaction()
        txn.put("a", 1)
        txn.abort()
        assert "a" not in store

    def test_exception_rolls_back(self):
        store = KVStore()
        with pytest.raises(RuntimeError):
            with store.transaction() as txn:
                txn.put("a", 1)
                raise RuntimeError("boom")
        assert "a" not in store

    def test_double_commit_rejected(self):
        store = KVStore()
        txn = store.transaction()
        txn.put("a", 1)
        txn.commit()
        with pytest.raises(StoreError):
            txn.commit()

    def test_transaction_is_single_wal_record(self):
        store = KVStore()
        with store.transaction() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
            txn.delete("a")
        assert store.wal_records == 1
        assert "a" not in store and store.get("b") == 2

    def test_empty_transaction_writes_nothing(self):
        store = KVStore()
        with store.transaction():
            pass
        assert store.wal_records == 0


class TestDurability:
    def test_disk_recovery(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        store.put("k", [1, 2, 3])
        store.delete("gone")
        store.close()
        recovered = KVStore(path)
        assert recovered.get("k") == [1, 2, 3]

    def test_recover_method(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        store.put("k", "v")
        recovered = store.recover()
        assert recovered.get("k") == "v"

    def test_recover_on_memory_store_rejected(self):
        with pytest.raises(StoreError):
            KVStore(MEMORY).recover()

    def test_simulate_crash_on_disk_store_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            KVStore(str(tmp_path / "db")).simulate_crash()

    def test_checkpoint_compacts_wal(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        for i in range(20):
            store.put(f"k{i}", i)
        assert store.wal_records == 20
        store.checkpoint()
        assert store.wal_records == 0
        store.put("after", 1)
        store.close()
        recovered = KVStore(path)
        assert recovered.get("k7") == 7
        assert recovered.get("after") == 1

    def test_memory_crash_preserves_synced_state(self):
        store = KVStore()
        store.put("durable", 1)  # put() syncs
        survivor = store.simulate_crash()
        assert survivor.get("durable") == 1

    def test_crash_after_checkpoint(self):
        store = KVStore()
        store.put("a", 1)
        store.checkpoint()
        store.put("b", 2)
        survivor = store.simulate_crash()
        assert survivor.get("a") == 1
        assert survivor.get("b") == 2


def _active_segment(path):
    """Path of the active (newest) WAL segment of an on-disk store."""
    with open(os.path.join(path, "wal", MANIFEST_NAME), "rb") as fh:
        manifest = codec.decode(fh.read())
    live = [e for e in manifest["segments"] if not e.get("retired")]
    return os.path.join(path, "wal", live[-1]["file"])


class TestBoundedRecovery:
    def test_reopen_replays_only_the_suffix(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        for i in range(10):
            store.put(f"k{i}", i)
        store.checkpoint()
        for i in range(4):
            store.put(f"after{i}", i)
        store.close()
        recovered = KVStore(path)
        assert recovered.last_recovery["checkpoint_position"] == 10
        assert recovered.last_recovery["records_replayed"] == 4
        assert recovered.last_recovery["wal_position"] == 14
        assert dict(recovered.items()) == {
            **{f"k{i}": i for i in range(10)},
            **{f"after{i}": i for i in range(4)},
        }
        recovered.close()

    def test_replay_cost_flat_across_checkpoints(self, tmp_path):
        """However long the run, recovery replays at most the records
        appended since the last checkpoint."""
        path = str(tmp_path / "db")
        store = KVStore(path, segment_records=8)
        for round_no in range(5):
            for i in range(20):
                store.put(f"k{i}", [round_no, i])
            store.checkpoint()
        store.put("tail", 1)
        store.close()
        recovered = KVStore(path, segment_records=8)
        assert recovered.last_recovery["records_replayed"] == 1
        assert recovered.last_recovery["checkpoint_position"] == 100
        assert recovered.get("k19") == [4, 19]
        assert recovered.audit() == []
        recovered.close()

    def test_crash_after_snapshot_before_truncation(self, tmp_path):
        """Window one of the satellite requirement: the checkpoint is
        durable but the covered segments were never truncated. Recovery
        must skip (not re-apply) the covered prefix, and the next
        checkpoint reclaims it."""
        path = str(tmp_path / "db")
        store = KVStore(path, segment_records=4)
        for i in range(10):
            store.put(f"k{i}", i)
        action = FaultAction("store.checkpoint.post-snapshot", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                store.checkpoint()
        store.close()
        recovered = KVStore(path, segment_records=4)
        assert recovered.last_recovery["checkpoint_position"] == 10
        assert recovered.last_recovery["records_replayed"] == 0
        assert dict(recovered.items()) == {f"k{i}": i for i in range(10)}
        assert recovered.audit() == []
        recovered.checkpoint()  # completes what the crash interrupted
        assert recovered.wal_records == 0
        recovered.close()

    def test_crash_mid_truncation_leaves_orphans_not_holes(self, tmp_path):
        """Window two: the manifest no longer references the covered
        segments but their files were never unlinked. Reopen cleans the
        orphans; recovery state is identical."""
        path = str(tmp_path / "db")
        store = KVStore(path, segment_records=4)
        for i in range(10):
            store.put(f"k{i}", i)
        action = FaultAction("store.checkpoint.truncate", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                store.checkpoint()
        store.close()
        # the covered segment files are still on disk (crash pre-unlink)
        wal_dir = os.path.join(path, "wal")
        before = {n for n in os.listdir(wal_dir) if n != MANIFEST_NAME}
        recovered = KVStore(path, segment_records=4)
        after = {n for n in os.listdir(wal_dir) if n != MANIFEST_NAME}
        assert after < before  # orphans removed on open
        assert dict(recovered.items()) == {f"k{i}": i for i in range(10)}
        assert recovered.wal_records == 0  # truncation effectively done
        assert recovered.audit() == []
        recovered.close()

    def test_corrupt_newest_segment_falls_back_to_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        for i in range(6):
            store.put(f"k{i}", i)
        store.checkpoint()
        for i in range(3):
            store.put(f"after{i}", i)
        store.close()
        active = _active_segment(path)
        with open(active, "r+b") as fh:
            fh.seek(9)  # into the first record's payload
            fh.write(b"X")
        recovered = KVStore(path)
        assert recovered.last_recovery["repairs"]
        assert dict(recovered.items()) == {f"k{i}": i for i in range(6)}
        assert recovered.audit() == []
        recovered.put("fresh", 1)
        assert recovered.get("fresh") == 1
        recovered.close()

    def test_missing_newest_segment_falls_back_to_checkpoint(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path)
        for i in range(6):
            store.put(f"k{i}", i)
        store.checkpoint()
        store.put("after", 1)
        store.close()
        os.unlink(_active_segment(path))
        recovered = KVStore(path)
        assert recovered.last_recovery["repairs"]
        assert dict(recovered.items()) == {f"k{i}": i for i in range(6)}
        assert recovered.audit() == []
        recovered.close()

    def test_legacy_single_file_layout_migrates(self, tmp_path):
        """A pre-segmentation store directory (flat ``store.wal`` plus a
        raw-state snapshot) opens cleanly: the log is adopted as the
        first segment and the snapshot reads as position zero."""
        path = str(tmp_path / "db")
        os.makedirs(path)
        legacy_wal = FileWAL(os.path.join(path, "store.wal"))
        legacy_wal.append(codec.encode([["put", "from-wal", 1]]))
        legacy_wal.sync()
        legacy_wal.close()
        from repro.store.snapshot import FileSnapshot
        FileSnapshot(os.path.join(path, "store.snapshot")).save(
            {"from-snap": 2})
        store = KVStore(path)
        assert store.get("from-wal") == 1
        assert store.get("from-snap") == 2
        assert not os.path.exists(os.path.join(path, "store.wal"))
        assert os.path.exists(os.path.join(path, "wal", MANIFEST_NAME))
        assert store.audit() == []
        store.close()

    def test_crash_mid_adoption_reopens_with_all_records(self, tmp_path):
        """Crash between the legacy-WAL rename and the first manifest
        write: the directory has ``wal/seg-00000001.wal`` but no MANIFEST
        and no ``store.wal``. Every acked record must survive reopen."""
        path = str(tmp_path / "db")
        os.makedirs(path)
        legacy_wal = FileWAL(os.path.join(path, "store.wal"))
        for i in range(5):
            legacy_wal.append(codec.encode([["put", f"k{i}", i]]))
        legacy_wal.sync()
        legacy_wal.close()
        os.makedirs(os.path.join(path, "wal"))
        os.replace(os.path.join(path, "store.wal"),
                   os.path.join(path, "wal", "seg-00000001.wal"))
        store = KVStore(path)
        assert dict(store.items()) == {f"k{i}": i for i in range(5)}
        assert store.audit() == []
        store.close()
        reopened = KVStore(path)
        assert dict(reopened.items()) == {f"k{i}": i for i in range(5)}
        reopened.close()

    def test_legacy_snapshot_containing_magic_key_not_misparsed(
            self, tmp_path):
        """A legacy raw-state snapshot whose user data happens to contain
        the checkpoint marker key is still read as raw state at position
        zero — a positioned checkpoint requires the full expected shape."""
        path = str(tmp_path / "db")
        os.makedirs(path)
        from repro.store.snapshot import FileSnapshot
        FileSnapshot(os.path.join(path, "store.snapshot")).save({
            "__kv_checkpoint__": "user data",
            "other": 7,
        })
        store = KVStore(path)
        assert store.get("__kv_checkpoint__") == "user data"
        assert store.get("other") == 7
        assert store.last_recovery["checkpoint_position"] == 0
        assert store.audit() == []
        store.close()

    def test_recover_preserves_store_options(self, tmp_path):
        path = str(tmp_path / "db")
        store = KVStore(path, segment_records=2, retain_history=True)
        for i in range(5):
            store.put(f"k{i}", i)
        recovered = store.recover()
        assert recovered._wal.max_segment_records == 2
        assert recovered._wal.retain_truncated is True
        recovered.close()

    def test_retained_history_audit_checks_byte_equivalence(self):
        store = KVStore(retain_history=True)
        store.put("a", 1)
        store.put("b", 2)
        store.checkpoint()
        assert store.audit() == []
        # tamper with retained history: the full-log replay now disagrees
        # with the snapshot+suffix reconstruction
        store._wal._truncated[0] = codec.encode([["put", "evil", 9]])
        problems = store.audit()
        assert any("byte-identical" in problem for problem in problems)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.text(alphabet="abcde", min_size=1, max_size=3),
            st.integers(min_value=0, max_value=99),
        ),
        max_size=30,
    ))
    def test_disk_recovery_equals_dict_semantics(self, tmp_path_factory, ops):
        """The store recovered from disk matches a plain dict replay."""
        path = str(tmp_path_factory.mktemp("kv") / "db")
        store = KVStore(path)
        model = {}
        for op, key, value in ops:
            if op == "put":
                store.put(key, value)
                model[key] = value
            else:
                store.delete(key)
                model.pop(key, None)
        store.close()
        recovered = KVStore(path)
        assert dict(recovered.items()) == model
        recovered.close()
