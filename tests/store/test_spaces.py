"""The four BioOpera data spaces over one store."""

import pytest

from repro.errors import StoreError, UnknownTemplateError
from repro.store import OperaStore


@pytest.fixture()
def store():
    return OperaStore()


class TestTemplateSpace:
    def test_save_assigns_versions(self, store):
        assert store.templates.save("p", {"v": 1}) == 1
        assert store.templates.save("p", {"v": 2}) == 2
        assert store.templates.latest_version("p") == 2

    def test_load_latest_and_pinned(self, store):
        store.templates.save("p", {"v": 1})
        store.templates.save("p", {"v": 2})
        assert store.templates.load("p")["v"] == 2
        assert store.templates.load("p", version=1)["v"] == 1

    def test_load_unknown_raises(self, store):
        with pytest.raises(UnknownTemplateError):
            store.templates.load("nope")

    def test_load_unknown_version_raises(self, store):
        store.templates.save("p", {})
        with pytest.raises(UnknownTemplateError):
            store.templates.load("p", version=9)

    def test_names_and_contains(self, store):
        store.templates.save("a", {})
        store.templates.save("b", {})
        assert store.templates.names() == ["a", "b"]
        assert "a" in store.templates
        assert "zz" not in store.templates


class TestInstanceSpace:
    def test_create_and_meta(self, store):
        store.instances.create("i1", {"status": "created"})
        assert store.instances.meta("i1") == {"status": "created"}

    def test_duplicate_create_rejected(self, store):
        store.instances.create("i1", {})
        with pytest.raises(StoreError):
            store.instances.create("i1", {})

    def test_update_meta(self, store):
        store.instances.create("i1", {"status": "created"})
        store.instances.update_meta("i1", status="running")
        assert store.instances.meta("i1")["status"] == "running"

    def test_update_meta_unknown_raises(self, store):
        with pytest.raises(StoreError):
            store.instances.update_meta("nope", status="x")

    def test_event_log_order_and_seq(self, store):
        store.instances.create("i1", {})
        for index in range(5):
            seq = store.instances.append_event("i1", {"n": index})
            assert seq == index
        assert [e["n"] for e in store.instances.events("i1")] == list(range(5))
        assert store.instances.event_count("i1") == 5

    def test_event_log_isolated_per_instance(self, store):
        store.instances.create("a", {})
        store.instances.create("b", {})
        store.instances.append_event("a", {"x": 1})
        assert list(store.instances.events("b")) == []

    def test_append_to_unknown_instance_raises(self, store):
        with pytest.raises(StoreError):
            store.instances.append_event("nope", {})

    def test_instance_ids_sorted(self, store):
        for name in ("pi-2", "pi-1"):
            store.instances.create(name, {})
        assert store.instances.instance_ids() == ["pi-1", "pi-2"]

    def test_large_seq_keeps_order(self, store):
        """Sequence keys must sort correctly past 9, 99, ... boundaries."""
        store.instances.create("i", {})
        for index in range(120):
            store.instances.append_event("i", {"n": index})
        assert [e["n"] for e in store.instances.events("i")] == list(range(120))


class TestAppendEvents:
    def test_batch_append_is_one_transaction(self, store):
        store.instances.create("i", {})
        before = store.kv.wal_records
        start = store.instances.append_events(
            "i", [{"n": 0}, {"n": 1}, {"n": 2}]
        )
        assert start == 0
        assert store.kv.wal_records == before + 1  # one WAL record
        assert [e["n"] for e in store.instances.events("i")] == [0, 1, 2]
        assert store.instances.event_count("i") == 3

    def test_batch_append_continues_sequence(self, store):
        store.instances.create("i", {})
        store.instances.append_event("i", {"n": 0})
        assert store.instances.append_events("i", [{"n": 1}, {"n": 2}]) == 1
        assert store.instances.append_event("i", {"n": 3}) == 3
        assert [e["n"] for e in store.instances.events("i")] == [0, 1, 2, 3]

    def test_empty_batch_is_noop(self, store):
        store.instances.create("i", {})
        before = store.kv.wal_records
        assert store.instances.append_events("i", []) == 0
        assert store.kv.wal_records == before
        assert store.instances.event_count("i") == 0

    def test_batch_append_unknown_instance_raises(self, store):
        with pytest.raises(StoreError):
            store.instances.append_events("nope", [{}])

    def test_batch_subscriber_gets_one_call_per_slice(self, store):
        store.instances.create("i", {})
        singles, batches = [], []
        store.instances.subscribe(
            lambda iid, seq, ev: singles.append((seq, ev["n"])),
            batch=lambda iid, start, evs: batches.append(
                (start, [e["n"] for e in evs])
            ),
        )
        store.instances.append_events("i", [{"n": 0}, {"n": 1}])
        store.instances.append_event("i", {"n": 2})
        assert batches == [(0, [0, 1])]   # multi-event slice: batch form
        assert singles == [(2, 2)]        # single event: per-event form

    def test_subscriber_without_batch_form_gets_per_event_calls(self, store):
        store.instances.create("i", {})
        seen = []
        store.instances.subscribe(
            lambda iid, seq, ev: seen.append((seq, ev["n"]))
        )
        store.instances.append_events("i", [{"n": 0}, {"n": 1}])
        assert seen == [(0, 0), (1, 1)]


class TestSubscriberIsolation:
    def test_failing_subscriber_does_not_starve_others(self, store):
        """Regression: one raising subscriber must not prevent delivery
        to the rest — their views would silently diverge from the log."""
        store.instances.create("i", {})
        seen_a, seen_c = [], []

        def bad(iid, seq, event):
            raise RuntimeError("subscriber bug")

        store.instances.subscribe(lambda iid, seq, ev: seen_a.append(seq))
        store.instances.subscribe(bad)
        store.instances.subscribe(lambda iid, seq, ev: seen_c.append(seq))
        with pytest.raises(RuntimeError, match="subscriber bug"):
            store.instances.append_event("i", {"n": 0})
        # every healthy subscriber saw the event, before the re-raise
        assert seen_a == [0]
        assert seen_c == [0]
        # and the append itself committed — no double-append on retry
        assert store.instances.event_count("i") == 1

    def test_first_failure_wins_when_several_fail(self, store):
        store.instances.create("i", {})

        def first(iid, seq, event):
            raise RuntimeError("first")

        def second(iid, seq, event):
            raise RuntimeError("second")

        store.instances.subscribe(first)
        store.instances.subscribe(second)
        with pytest.raises(RuntimeError, match="first"):
            store.instances.append_event("i", {"n": 0})

    def test_resubscribe_replaces_in_place(self, store):
        store.instances.create("i", {})
        seen = []
        callback = lambda iid, seq, ev: seen.append(seq)  # noqa: E731
        store.instances.subscribe(callback)
        store.instances.subscribe(callback)  # idempotent
        store.instances.append_event("i", {"n": 0})
        assert seen == [0]

    def test_unsubscribe_stops_delivery(self, store):
        store.instances.create("i", {})
        seen = []
        callback = lambda iid, seq, ev: seen.append(seq)  # noqa: E731
        store.instances.subscribe(callback,
                                  batch=lambda iid, s, evs: seen.append(s))
        store.instances.unsubscribe(callback)
        store.instances.append_events("i", [{"n": 0}, {"n": 1}])
        assert seen == []


class TestConfigurationSpace:
    def test_node_round_trip(self, store):
        store.configuration.save_node("n1", {"cpus": 2})
        assert store.configuration.node("n1") == {"cpus": 2}
        assert store.configuration.nodes() == {"n1": {"cpus": 2}}

    def test_remove_node(self, store):
        store.configuration.save_node("n1", {"cpus": 2})
        store.configuration.remove_node("n1")
        assert store.configuration.node("n1") is None

    def test_settings(self, store):
        store.configuration.set_setting("policy", "capacity-aware")
        assert store.configuration.setting("policy") == "capacity-aware"
        assert store.configuration.setting("nope", "dflt") == "dflt"


class TestDataSpace:
    def test_run_records(self, store):
        store.data.record_run("r1", {"wall": 10})
        assert store.data.run("r1") == {"wall": 10}
        assert store.data.runs() == {"r1": {"wall": 10}}

    def test_lineage_appends_in_order(self, store):
        for index in range(3):
            store.data.append_lineage({"n": index})
        assert [r["n"] for r in store.data.lineage_records()] == [0, 1, 2]


class TestCrashRecovery:
    def test_all_spaces_survive_crash(self, store):
        store.templates.save("t", {"x": 1})
        store.instances.create("i", {"s": "running"})
        store.instances.append_event("i", {"type": "e"})
        store.configuration.save_node("n", {"cpus": 4})
        store.data.record_run("r", {"ok": True})
        survivor = store.simulate_crash()
        assert survivor.templates.load("t") == {"x": 1}
        assert survivor.instances.meta("i") == {"s": "running"}
        assert list(survivor.instances.events("i")) == [{"type": "e"}]
        assert survivor.configuration.node("n") == {"cpus": 4}
        assert survivor.data.run("r") == {"ok": True}

    def test_disk_reopen(self, tmp_path):
        store = OperaStore(str(tmp_path / "opera"))
        store.templates.save("t", {"x": 1})
        reopened = store.reopen()
        assert reopened.templates.load("t") == {"x": 1}
        reopened.close()

    def test_checkpoint_then_crash(self, store):
        store.templates.save("t", {"x": 1})
        store.checkpoint()
        store.instances.create("i", {})
        survivor = store.simulate_crash()
        assert survivor.templates.load("t") == {"x": 1}
        assert survivor.instances.meta("i") == {}
