"""Lineage tracking: derivation queries and recomputation planning."""

import pytest

from repro.errors import StoreError
from repro.store import LineageGraph, LineageRecord


def record(outputs, inputs, program="prog", **kwargs):
    return LineageRecord(
        outputs=tuple(outputs), inputs=tuple(inputs), program=program,
        **kwargs,
    )


@pytest.fixture()
def tower():
    """A miniature tower of information: dna -> genes -> proteins -> {msa, tree}."""
    graph = LineageGraph()
    graph.add(record(["genes"], ["dna"], program="genefinder"))
    graph.add(record(["proteins"], ["genes"], program="translate"))
    graph.add(record(["alignments"], ["proteins"], program="allvsall"))
    graph.add(record(["msa"], ["alignments", "proteins"], program="msa"))
    graph.add(record(["tree"], ["alignments"], program="phylo"))
    return graph


class TestRecord:
    def test_dict_round_trip(self):
        rec = record(["out"], ["in1", "in2"], parameters=(("pam", 100),),
                     instance_id="pi-1", task="Align", timestamp=5.0)
        assert LineageRecord.from_dict(rec.to_dict()) == rec


class TestQueries:
    def test_producer(self, tower):
        assert tower.producer("genes").program == "genefinder"

    def test_producer_unknown_raises(self, tower):
        with pytest.raises(StoreError):
            tower.producer("nothing")

    def test_is_derived(self, tower):
        assert tower.is_derived("msa")
        assert not tower.is_derived("dna")

    def test_ancestors(self, tower):
        assert tower.ancestors("msa") == {
            "alignments", "proteins", "genes", "dna"
        }

    def test_ancestors_of_raw_input_empty(self, tower):
        assert tower.ancestors("dna") == set()

    def test_descendants(self, tower):
        assert tower.descendants("proteins") == {"alignments", "msa", "tree"}

    def test_invalidated_by_input_change(self, tower):
        assert tower.invalidated_by(["dna"]) == {
            "genes", "proteins", "alignments", "msa", "tree"
        }

    def test_invalidated_by_algorithm_change(self, tower):
        # the paper: "recompute processes as ... algorithms change"
        assert tower.invalidated_by_program("allvsall") == {
            "alignments", "msa", "tree"
        }

    def test_recompute_order_is_topological(self, tower):
        stale = tower.invalidated_by(["genes"])
        order = tower.recompute_order(stale)
        assert set(order) == stale
        assert order.index("proteins") < order.index("alignments")
        assert order.index("alignments") < order.index("msa")
        assert order.index("alignments") < order.index("tree")

    def test_recompute_order_ignores_fresh_data(self, tower):
        order = tower.recompute_order({"tree"})
        assert order == ["tree"]


class TestRederivation:
    def test_rederivation_replaces_producer(self, tower):
        # recompute alignments with different parameters: new record wins
        tower.add(record(["alignments"], ["proteins"], program="allvsall",
                         parameters=(("threshold", 90),)))
        assert tower.producer("alignments").parameters == (("threshold", 90),)
        # consumers still see it
        assert "msa" in tower.descendants("alignments")

    def test_cycle_detected(self):
        graph = LineageGraph()
        graph.add(record(["b"], ["a"]))
        graph.add(record(["a"], ["b"]))
        with pytest.raises(StoreError):
            graph.recompute_order({"a", "b"})

    def test_len_counts_records(self, tower):
        assert len(tower) == 5
