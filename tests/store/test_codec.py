"""Serialization: determinism, round trips, rejection of bad values."""


import pytest
from hypothesis import given, strategies as st

from repro.errors import CodecError
from repro.store import codec

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 53), max_value=2 ** 53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=10), children, max_size=5),
    ),
    max_leaves=25,
)


class TestEncode:
    def test_sorted_keys_are_canonical(self):
        assert codec.encode({"b": 1, "a": 2}) == codec.encode({"a": 2, "b": 1})

    def test_compact_output(self):
        assert codec.encode({"a": [1, 2]}) == b'{"a":[1,2]}'

    def test_tuple_encodes_as_list(self):
        assert codec.encode((1, 2)) == codec.encode([1, 2])

    def test_unicode(self):
        assert codec.decode(codec.encode("Zürich")) == "Zürich"

    def test_rejects_nan(self):
        with pytest.raises(CodecError):
            codec.encode(float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(CodecError):
            codec.encode(float("inf"))

    def test_rejects_non_string_keys(self):
        with pytest.raises(CodecError) as excinfo:
            codec.encode({1: "x"})
        assert "non-string" in str(excinfo.value)

    def test_rejects_objects(self):
        with pytest.raises(CodecError) as excinfo:
            codec.encode({"a": object()})
        assert "$.a" in str(excinfo.value)

    def test_rejects_nested_objects_with_path(self):
        with pytest.raises(CodecError) as excinfo:
            codec.encode({"a": [1, {"b": set()}]})
        assert "$.a[1].b" in str(excinfo.value)


class TestDecode:
    def test_round_trip_simple(self):
        value = {"x": [1, 2.5, None, True, "s"]}
        assert codec.decode(codec.encode(value)) == value

    def test_garbage_raises(self):
        with pytest.raises(CodecError):
            codec.decode(b"\xff\xfe not json")

    def test_truncated_raises(self):
        payload = codec.encode({"a": 1})
        with pytest.raises(CodecError):
            codec.decode(payload[:-2])


class TestProperties:
    @given(json_values)
    def test_round_trip(self, value):
        decoded = codec.decode(codec.encode(value))
        # tuples become lists; normalize before comparing
        def normalize(v):
            if isinstance(v, tuple):
                v = list(v)
            if isinstance(v, list):
                return [normalize(i) for i in v]
            if isinstance(v, dict):
                return {k: normalize(i) for k, i in v.items()}
            return v
        assert decoded == normalize(value)

    @given(json_values)
    def test_deterministic(self, value):
        assert codec.encode(value) == codec.encode(value)
