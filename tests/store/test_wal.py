"""WAL durability: framing, torn tails, corruption, crash simulation,
segment rotation, and checkpoint-driven truncation."""

import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptLogError
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.store.wal import MANIFEST_NAME, FileWAL, MemoryWAL, SegmentedWAL


@pytest.fixture()
def wal_path(tmp_path):
    return str(tmp_path / "test.wal")


class TestFileWAL:
    def test_empty_log(self, wal_path):
        wal = FileWAL(wal_path)
        assert list(wal.records()) == []
        assert len(wal) == 0

    def test_append_and_read(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"one")
        wal.append(b"two")
        wal.sync()
        assert list(wal.records()) == [b"one", b"two"]

    def test_survives_reopen(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"alpha")
        wal.sync()
        wal.close()
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"alpha"]

    def test_empty_payload_record(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"")
        wal.append(b"x")
        assert list(wal.records()) == [b"", b"x"]

    def test_torn_header_repaired(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x05\x00")  # half a header
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]
        # the torn tail was truncated away
        assert os.path.getsize(wal_path) == 8 + 4

    def test_torn_payload_repaired(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(struct.pack("<II", 100, 0))
            fh.write(b"short")
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]

    def test_corrupt_final_record_treated_as_torn(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.append(b"bad-crc")
        wal.sync()
        wal.close()
        # flip a byte in the final record's payload
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.seek(size - 1)
            fh.write(b"\x00")
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]

    def test_corruption_before_tail_raises(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"first")
        wal.append(b"second")
        wal.sync()
        wal.close()
        # corrupt the FIRST record's payload (not the tail)
        with open(wal_path, "r+b") as fh:
            fh.seek(8)  # into record 1's payload
            fh.write(b"X")
        with pytest.raises(CorruptLogError):
            FileWAL(wal_path)

    def test_reset_discards_records(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"x")
        wal.reset()
        assert list(wal.records()) == []
        wal.append(b"y")
        assert list(wal.records()) == [b"y"]

    def test_append_after_reopen_continues(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"a")
        wal.sync()
        wal.close()
        wal2 = FileWAL(wal_path)
        wal2.append(b"b")
        assert list(wal2.records()) == [b"a", b"b"]

    def test_crash_between_header_and_payload_recovers(self, wal_path):
        """Regression: a record whose payload never hit the disk (the old
        two-write append could crash between the writes) must be repaired
        away on reopen, and appending must continue cleanly."""
        wal = FileWAL(wal_path)
        wal.append(b"durable")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            # header promising a 7-byte payload, then the "crash"
            fh.write(struct.pack("<II", 7, 0xDEADBEEF))
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"durable"]
        reopened.append(b"after-crash")
        reopened.sync()
        assert list(reopened.records()) == [b"durable", b"after-crash"]

    def test_append_issues_single_write(self, wal_path):
        """The header+payload must leave as one buffer, so the OS cannot
        interleave a crash between them."""
        wal = FileWAL(wal_path)
        writes = []
        original = wal._file.write
        wal._file.write = lambda data: writes.append(bytes(data)) or \
            original(data)
        wal.append(b"payload")
        assert len(writes) == 1
        assert writes[0].endswith(b"payload")

    def test_reset_fsyncs_truncation(self, wal_path, monkeypatch):
        """Regression: a crash after reset() must not resurrect records —
        the truncation has to reach the disk before reset returns."""
        wal = FileWAL(wal_path)
        wal.append(b"old")
        wal.sync()
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        wal.reset()
        assert synced, "reset() must fsync the truncated file"
        assert list(wal.records()) == []

    @settings(max_examples=30, deadline=None)
    @given(
        records=st.lists(st.binary(max_size=64), min_size=1, max_size=10),
        cut=st.integers(min_value=1, max_value=50),
    )
    def test_random_truncation_keeps_valid_prefix(self, tmp_path_factory,
                                                  records, cut):
        """Chopping N bytes off the end never corrupts the valid prefix."""
        path = str(tmp_path_factory.mktemp("wal") / "t.wal")
        wal = FileWAL(path)
        for record in records:
            wal.append(record)
        wal.sync()
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(0, size - cut))
        recovered = list(FileWAL(path).records())
        assert recovered == records[: len(recovered)]


@pytest.fixture()
def seg_dir(tmp_path):
    return str(tmp_path / "wal")


def _fill(wal, count, start=0):
    records = [f"r{start + i:04d}".encode() for i in range(count)]
    for record in records:
        wal.append(record)
    wal.sync()
    return records


class TestSegmentedWAL:
    def test_empty_log(self, seg_dir):
        wal = SegmentedWAL(seg_dir)
        assert list(wal.records()) == []
        assert len(wal) == 0
        assert wal.position() == 0
        assert wal.segment_count() == 1
        assert os.path.exists(os.path.join(seg_dir, MANIFEST_NAME))

    def test_append_read_reopen(self, seg_dir):
        wal = SegmentedWAL(seg_dir)
        records = _fill(wal, 5)
        assert list(wal.records()) == records
        wal.close()
        reopened = SegmentedWAL(seg_dir)
        assert list(reopened.records()) == records
        assert reopened.position() == 5

    def test_rotation_at_record_threshold(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        records = _fill(wal, 7)
        # rotated after records 3 and 6: two sealed segments + active
        assert wal.segment_count() == 3
        assert list(wal.records()) == records
        assert len(wal) == 7

    def test_rotation_at_byte_threshold(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_bytes=64)
        records = _fill(wal, 6)  # 8-byte header + 5-byte payload each
        assert wal.segment_count() > 1
        assert list(wal.records()) == records

    def test_rotation_survives_reopen(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=2)
        records = _fill(wal, 5)
        wal.close()
        reopened = SegmentedWAL(seg_dir, max_segment_records=2)
        assert list(reopened.records()) == records
        more = _fill(reopened, 2, start=5)
        assert list(reopened.records()) == records + more

    def test_records_from_reads_only_the_suffix(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        records = _fill(wal, 8)
        for position in (0, 2, 3, 5, 7, 8):
            assert list(wal.records_from(position)) == records[position:]

    def test_truncate_through_drops_covered_segments(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        records = _fill(wal, 8)  # segments: [0..3) [3..6) [6..8)
        dropped = wal.truncate_through(6)
        assert dropped == 2
        assert wal.base_position() == 6
        assert wal.position() == 8
        assert list(wal.records()) == records[6:]
        # positions keep meaning what they meant before truncation
        assert list(wal.records_from(7)) == records[7:]
        # covered segment files are actually gone from disk
        assert len([name for name in os.listdir(wal.directory)
                    if name != MANIFEST_NAME]) == wal.segment_count()

    def test_truncate_at_head_rotates_and_empties(self, seg_dir):
        """A checkpoint at the log head must compact the live log to zero
        records — the active segment is sealed and dropped too."""
        wal = SegmentedWAL(seg_dir, max_segment_records=100)
        _fill(wal, 5)
        assert wal.truncate_through(wal.position()) >= 1
        assert len(wal) == 0
        assert wal.base_position() == wal.position() == 5
        more = _fill(wal, 2, start=5)
        assert list(wal.records()) == more

    def test_truncation_survives_reopen(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=2)
        records = _fill(wal, 6)
        wal.truncate_through(4)
        wal.close()
        reopened = SegmentedWAL(seg_dir, max_segment_records=2)
        assert reopened.base_position() == 4
        assert reopened.position() == 6
        assert list(reopened.records()) == records[4:]

    def test_retained_history_allows_full_replay(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=2,
                           retain_truncated=True)
        records = _fill(wal, 6)
        wal.truncate_through(4)
        assert wal.history_complete()
        assert list(wal.full_records()) == records
        assert list(wal.records()) == records[4:]
        wal.close()
        reopened = SegmentedWAL(seg_dir, max_segment_records=2,
                                retain_truncated=True)
        assert list(reopened.full_records()) == records

    def test_unretained_history_refuses_full_replay(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=2)
        _fill(wal, 6)
        assert wal.history_complete()  # nothing truncated yet
        wal.truncate_through(4)
        assert not wal.history_complete()
        with pytest.raises(CorruptLogError):
            list(wal.full_records())

    def test_orphan_segments_removed_on_open(self, seg_dir):
        """Files not in the manifest are crash leftovers (mid-rotation or
        mid-truncation) and must be cleaned up, never replayed."""
        wal = SegmentedWAL(seg_dir)
        records = _fill(wal, 3)
        wal.close()
        stray = os.path.join(seg_dir, "seg-99999999.wal")
        with open(stray, "wb") as fh:
            fh.write(b"garbage")
        reopened = SegmentedWAL(seg_dir)
        assert not os.path.exists(stray)
        assert list(reopened.records()) == records

    def test_cleanup_leaves_foreign_files_alone(self, seg_dir):
        """Orphan cleanup only touches names the WAL itself creates: an
        operator's backup copy in the directory survives reopen, while an
        unmanifested ``seg-*.wal`` is removed with a note in repairs."""
        wal = SegmentedWAL(seg_dir)
        records = _fill(wal, 3)
        wal.close()
        backup = os.path.join(seg_dir, "seg-00000001.wal.bak")
        with open(backup, "wb") as fh:
            fh.write(b"operator backup")
        stray = os.path.join(seg_dir, "seg-99999999.wal")
        with open(stray, "wb") as fh:
            fh.write(b"garbage")
        reopened = SegmentedWAL(seg_dir)
        assert os.path.exists(backup)
        assert not os.path.exists(stray)
        assert any("seg-99999999.wal" in note for note in reopened.repairs)
        assert list(reopened.records()) == records
        reopened.close()

    def test_crash_during_rotation_recovers(self, seg_dir):
        """A crash in the rotation window leaves the old manifest; reopen
        continues from the unsealed segment with nothing lost."""
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        wal.append(b"a")
        wal.append(b"b")
        wal.sync()
        with installed(FaultInjector([FaultAction("store.rotate", "crash")])):
            with pytest.raises(InjectedCrash):
                wal.append(b"c")  # crosses the threshold mid-append
        wal.sync()
        wal.close()
        reopened = SegmentedWAL(seg_dir, max_segment_records=3)
        assert list(reopened.records()) == [b"a", b"b", b"c"]
        assert reopened.segment_count() == 1  # rotation never completed
        reopened.append(b"d")  # threshold crossing now rotates cleanly
        assert reopened.segment_count() == 2

    def test_corrupt_newest_segment_truncated_tolerantly(self, seg_dir):
        """Damage to the newest segment is repaired (records past the
        corruption are dropped, noted in ``repairs``) — sealed history
        stays intact, so recovery falls back to what checkpoints cover."""
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        records = _fill(wal, 5)  # sealed [0..3), active [3..5)
        active = os.path.join(seg_dir, wal._entries[-1]["file"])
        wal.close()
        with open(active, "r+b") as fh:
            fh.seek(9)  # into the first active record's payload
            fh.write(b"X")
        reopened = SegmentedWAL(seg_dir, max_segment_records=3)
        assert reopened.repairs
        assert list(reopened.records()) == records[:3]
        assert reopened.position() == 3

    def test_missing_newest_segment_recreated(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        records = _fill(wal, 5)
        active = os.path.join(seg_dir, wal._entries[-1]["file"])
        wal.close()
        os.unlink(active)
        reopened = SegmentedWAL(seg_dir, max_segment_records=3)
        assert reopened.repairs
        assert list(reopened.records()) == records[:3]
        more = _fill(reopened, 2, start=5)
        assert list(reopened.records()) == records[:3] + more

    def test_corrupt_sealed_segment_raises(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=3)
        _fill(wal, 5)
        sealed = os.path.join(seg_dir, wal._entries[0]["file"])
        wal.close()
        with open(sealed, "r+b") as fh:
            fh.seek(9)
            fh.write(b"X")
        with pytest.raises(CorruptLogError):
            SegmentedWAL(seg_dir, max_segment_records=3)

    def test_adopts_legacy_single_file_wal(self, tmp_path):
        legacy_path = str(tmp_path / "store.wal")
        legacy = FileWAL(legacy_path)
        legacy.append(b"old-1")
        legacy.append(b"old-2")
        legacy.sync()
        legacy.close()
        wal = SegmentedWAL(str(tmp_path / "wal"), adopt_file=legacy_path)
        assert list(wal.records()) == [b"old-1", b"old-2"]
        assert wal.position() == 2
        assert not os.path.exists(legacy_path)

    def test_crash_mid_adoption_does_not_lose_records(self, tmp_path):
        """A crash between renaming the legacy file into the segment
        directory and writing the first manifest leaves a manifest-less
        directory holding ``seg-00000001.wal``; the next open must adopt
        that segment's contents, never truncate or orphan-delete them."""
        legacy_path = str(tmp_path / "store.wal")
        legacy = FileWAL(legacy_path)
        records = [f"old-{i}".encode() for i in range(5)]
        for payload in records:
            legacy.append(payload)
        legacy.sync()
        legacy.close()
        seg_dir = str(tmp_path / "wal")
        os.makedirs(seg_dir)
        # the crash state: rename done, manifest never written
        os.replace(legacy_path, os.path.join(seg_dir, "seg-00000001.wal"))
        wal = SegmentedWAL(seg_dir, adopt_file=legacy_path)
        assert list(wal.records()) == records
        assert wal.position() == 5
        assert os.path.exists(os.path.join(seg_dir, MANIFEST_NAME))
        wal.append(b"new")
        wal.sync()
        wal.close()
        reopened = SegmentedWAL(seg_dir, adopt_file=legacy_path)
        assert list(reopened.records()) == records + [b"new"]
        reopened.close()

    def test_crash_before_adoption_rename_readopts_legacy(self, tmp_path):
        """A crash *before* the rename (directory created, nothing else)
        leaves ``store.wal`` in place; the next open adopts it normally."""
        legacy_path = str(tmp_path / "store.wal")
        legacy = FileWAL(legacy_path)
        legacy.append(b"old")
        legacy.sync()
        legacy.close()
        seg_dir = str(tmp_path / "wal")
        os.makedirs(seg_dir)  # the crash state: empty segment directory
        wal = SegmentedWAL(seg_dir, adopt_file=legacy_path)
        assert list(wal.records()) == [b"old"]
        assert not os.path.exists(legacy_path)
        wal.close()

    def test_reset_keeps_positions_monotonic(self, seg_dir):
        wal = SegmentedWAL(seg_dir, max_segment_records=2)
        _fill(wal, 5)
        wal.reset()
        assert len(wal) == 0
        assert wal.position() == wal.base_position() == 5
        more = _fill(wal, 2, start=5)
        assert list(wal.records_from(5)) == more

    @settings(max_examples=25, deadline=None)
    @given(
        count=st.integers(min_value=0, max_value=20),
        threshold=st.integers(min_value=1, max_value=7),
        cut=st.integers(min_value=0, max_value=25),
    )
    def test_truncation_position_property(self, tmp_path_factory, count,
                                          threshold, cut):
        """For any segment layout and truncation point, the surviving
        records are exactly the suffix past the last covered segment."""
        directory = str(tmp_path_factory.mktemp("seg") / "wal")
        wal = SegmentedWAL(directory, max_segment_records=threshold)
        records = _fill(wal, count)
        wal.truncate_through(cut)
        base = wal.base_position()
        assert base <= max(cut, 0)  # never drop past the checkpoint
        assert list(wal.records()) == records[base:]
        assert wal.position() == count
        wal.close()
        reopened = SegmentedWAL(directory, max_segment_records=threshold)
        assert list(reopened.records()) == records[base:]


class TestMemoryWAL:
    def test_append_and_read(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.append(b"b")
        assert list(wal.records()) == [b"a", b"b"]

    def test_crash_loses_unsynced_tail(self):
        wal = MemoryWAL()
        wal.append(b"durable")
        wal.sync()
        wal.append(b"lost")
        survivor = wal.simulate_crash()
        assert list(survivor.records()) == [b"durable"]
        assert wal.unsynced == 1

    def test_crash_with_everything_synced(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.sync()
        survivor = wal.simulate_crash()
        assert list(survivor.records()) == [b"a"]

    def test_crash_of_empty_log(self):
        assert list(MemoryWAL().simulate_crash().records()) == []

    def test_reset(self):
        wal = MemoryWAL()
        wal.append(b"x")
        wal.sync()
        wal.reset()
        assert len(wal) == 0
        assert wal.unsynced == 0

    def test_positions_and_suffix_reads(self):
        wal = MemoryWAL()
        records = [f"r{i}".encode() for i in range(5)]
        for record in records:
            wal.append(record)
        wal.sync()
        assert wal.position() == 5
        assert wal.base_position() == 0
        assert list(wal.records_from(3)) == records[3:]

    def test_truncate_through_never_drops_unsynced(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.append(b"b")
        wal.sync()
        wal.append(b"c")  # unsynced: a checkpoint cannot have covered it
        assert wal.truncate_through(3) == 2
        assert wal.base_position() == 2
        assert list(wal.records()) == [b"c"]
        assert wal.unsynced == 1

    def test_retained_history_full_replay(self):
        wal = MemoryWAL(retain_truncated=True)
        records = [f"r{i}".encode() for i in range(4)]
        for record in records:
            wal.append(record)
        wal.sync()
        wal.truncate_through(2)
        assert wal.history_complete()
        assert list(wal.full_records()) == records
        assert list(wal.records()) == records[2:]

    def test_unretained_history_refuses_full_replay(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.append(b"b")
        wal.sync()
        wal.truncate_through(1)
        assert not wal.history_complete()
        with pytest.raises(CorruptLogError):
            list(wal.full_records())

    def test_crash_preserves_positions_and_history(self):
        wal = MemoryWAL(retain_truncated=True)
        for i in range(4):
            wal.append(f"r{i}".encode())
        wal.sync()
        wal.truncate_through(2)
        wal.append(b"lost")  # unsynced
        survivor = wal.simulate_crash()
        assert survivor.base_position() == 2
        assert survivor.position() == 4
        assert list(survivor.full_records()) == [b"r0", b"r1", b"r2", b"r3"]

    def test_rotation_counter_fires_store_rotate(self):
        wal = MemoryWAL(max_segment_records=3)
        injector = FaultInjector([])
        with installed(injector):
            for _ in range(7):
                wal.append(b"x")
        assert injector.hits.get("store.rotate") == 2
