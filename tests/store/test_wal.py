"""WAL durability: framing, torn tails, corruption, crash simulation."""

import os
import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CorruptLogError
from repro.store.wal import FileWAL, MemoryWAL


@pytest.fixture()
def wal_path(tmp_path):
    return str(tmp_path / "test.wal")


class TestFileWAL:
    def test_empty_log(self, wal_path):
        wal = FileWAL(wal_path)
        assert list(wal.records()) == []
        assert len(wal) == 0

    def test_append_and_read(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"one")
        wal.append(b"two")
        wal.sync()
        assert list(wal.records()) == [b"one", b"two"]

    def test_survives_reopen(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"alpha")
        wal.sync()
        wal.close()
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"alpha"]

    def test_empty_payload_record(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"")
        wal.append(b"x")
        assert list(wal.records()) == [b"", b"x"]

    def test_torn_header_repaired(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(b"\x05\x00")  # half a header
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]
        # the torn tail was truncated away
        assert os.path.getsize(wal_path) == 8 + 4

    def test_torn_payload_repaired(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            fh.write(struct.pack("<II", 100, 0))
            fh.write(b"short")
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]

    def test_corrupt_final_record_treated_as_torn(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"good")
        wal.append(b"bad-crc")
        wal.sync()
        wal.close()
        # flip a byte in the final record's payload
        size = os.path.getsize(wal_path)
        with open(wal_path, "r+b") as fh:
            fh.seek(size - 1)
            fh.write(b"\x00")
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"good"]

    def test_corruption_before_tail_raises(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"first")
        wal.append(b"second")
        wal.sync()
        wal.close()
        # corrupt the FIRST record's payload (not the tail)
        with open(wal_path, "r+b") as fh:
            fh.seek(8)  # into record 1's payload
            fh.write(b"X")
        with pytest.raises(CorruptLogError):
            FileWAL(wal_path)

    def test_reset_discards_records(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"x")
        wal.reset()
        assert list(wal.records()) == []
        wal.append(b"y")
        assert list(wal.records()) == [b"y"]

    def test_append_after_reopen_continues(self, wal_path):
        wal = FileWAL(wal_path)
        wal.append(b"a")
        wal.sync()
        wal.close()
        wal2 = FileWAL(wal_path)
        wal2.append(b"b")
        assert list(wal2.records()) == [b"a", b"b"]

    def test_crash_between_header_and_payload_recovers(self, wal_path):
        """Regression: a record whose payload never hit the disk (the old
        two-write append could crash between the writes) must be repaired
        away on reopen, and appending must continue cleanly."""
        wal = FileWAL(wal_path)
        wal.append(b"durable")
        wal.sync()
        wal.close()
        with open(wal_path, "ab") as fh:
            # header promising a 7-byte payload, then the "crash"
            fh.write(struct.pack("<II", 7, 0xDEADBEEF))
        reopened = FileWAL(wal_path)
        assert list(reopened.records()) == [b"durable"]
        reopened.append(b"after-crash")
        reopened.sync()
        assert list(reopened.records()) == [b"durable", b"after-crash"]

    def test_append_issues_single_write(self, wal_path):
        """The header+payload must leave as one buffer, so the OS cannot
        interleave a crash between them."""
        wal = FileWAL(wal_path)
        writes = []
        original = wal._file.write
        wal._file.write = lambda data: writes.append(bytes(data)) or \
            original(data)
        wal.append(b"payload")
        assert len(writes) == 1
        assert writes[0].endswith(b"payload")

    def test_reset_fsyncs_truncation(self, wal_path, monkeypatch):
        """Regression: a crash after reset() must not resurrect records —
        the truncation has to reach the disk before reset returns."""
        wal = FileWAL(wal_path)
        wal.append(b"old")
        wal.sync()
        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        wal.reset()
        assert synced, "reset() must fsync the truncated file"
        assert list(wal.records()) == []

    @settings(max_examples=30, deadline=None)
    @given(
        records=st.lists(st.binary(max_size=64), min_size=1, max_size=10),
        cut=st.integers(min_value=1, max_value=50),
    )
    def test_random_truncation_keeps_valid_prefix(self, tmp_path_factory,
                                                  records, cut):
        """Chopping N bytes off the end never corrupts the valid prefix."""
        path = str(tmp_path_factory.mktemp("wal") / "t.wal")
        wal = FileWAL(path)
        for record in records:
            wal.append(record)
        wal.sync()
        wal.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(max(0, size - cut))
        recovered = list(FileWAL(path).records())
        assert recovered == records[: len(recovered)]


class TestMemoryWAL:
    def test_append_and_read(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.append(b"b")
        assert list(wal.records()) == [b"a", b"b"]

    def test_crash_loses_unsynced_tail(self):
        wal = MemoryWAL()
        wal.append(b"durable")
        wal.sync()
        wal.append(b"lost")
        survivor = wal.simulate_crash()
        assert list(survivor.records()) == [b"durable"]
        assert wal.unsynced == 1

    def test_crash_with_everything_synced(self):
        wal = MemoryWAL()
        wal.append(b"a")
        wal.sync()
        survivor = wal.simulate_crash()
        assert list(survivor.records()) == [b"a"]

    def test_crash_of_empty_log(self):
        assert list(MemoryWAL().simulate_crash().records()) == []

    def test_reset(self):
        wal = MemoryWAL()
        wal.append(b"x")
        wal.sync()
        wal.reset()
        assert len(wal) == 0
        assert wal.unsynced == 0
