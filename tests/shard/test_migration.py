"""Shard drain & live migration: moves never lose a byte.

The contract under test (docs/sharding.md runbook):

* a migrated instance's event log on its new shard is byte-identical to
  its pre-migration log (events never carry instance ids, so the copy
  is verbatim; only the id prefix changes);
* stale ids keep working forever — forwarding records route-chase
  through any number of hops;
* every ``shard.migrate.*`` crash window resumes or rolls back cleanly:
  re-running the drain after recovery finishes the job with
  exactly-once outcomes;
* a broker redelivery racing the drain lands its signal exactly once.
"""

import pytest

from repro.errors import EngineError, UnknownShardError
from repro.faults import invariants
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.shard import ShardedConsole, migration_invariants

from .conftest import make_plane


def _launch(plane, count, cost, tenant="t0"):
    return [plane.launch(tenant, "job", {"cost": cost})
            for _ in range(count)]


def _events(plane, instance_id):
    owner = plane.router.shard_of(instance_id)
    store = plane.shards[owner].store
    return [dict(event) for event in store.instances.events(instance_id)]


def _ids_on(requests, shard_index):
    prefix = f"s{shard_index:02d}-"
    return sorted(r.result for r in requests
                  if r.result.startswith(prefix))


def _assert_plane_clean(plane):
    assert migration_invariants(plane) == []
    for shard in plane.shards:
        if shard.retired or not shard.server.up:
            continue
        assert invariants.check_server(shard.server) == [], (
            f"shard {shard.index}")


class TestSingleMigration:
    def test_log_copied_verbatim_and_instance_completes(self):
        kernel, plane = make_plane(shards=3, seed=7)
        requests = _launch(plane, 8, cost=60.0)
        plane.drain_requests()
        old_id = _ids_on(requests, 0)[0]
        pre_log = _events(plane, old_id)
        assert pre_log  # launched: mid-flight, not empty

        new_id = plane.migrator.migrate_instance(old_id, 1)
        assert new_id.startswith("s01-")
        # The copied log is the source log, byte for byte (events carry
        # paths and whiteboard keys, never instance ids).
        assert _events(plane, new_id)[:len(pre_log)] == pre_log
        # Source copy tombstoned, durable forward left behind.
        source = plane.shards[0]
        assert source.store.instances.meta(old_id) is None
        forward = source.store.configuration.setting(f"forward/{old_id}")
        assert forward["to"] == new_id

        kernel.run()
        # The stale id resolves to the completed migrated copy.
        assert plane.instance(old_id).status == "completed"
        assert plane.resolve_instance(old_id) == (1, new_id)
        _assert_plane_clean(plane)

    def test_migrating_to_own_shard_or_bad_target_is_rejected(self):
        kernel, plane = make_plane(shards=2, seed=7)
        requests = _launch(plane, 4, cost=5.0)
        plane.drain_requests()
        old_id = _ids_on(requests, 0)[0]
        with pytest.raises(EngineError):
            plane.migrator.migrate_instance(old_id, 0)
        with pytest.raises(EngineError):
            plane.migrator.migrate_instance(old_id, 9)
        with pytest.raises(UnknownShardError):
            plane.migrator.migrate_instance("s99-pi-000001", 1)


class TestDrain:
    def test_drain_moves_everything_retires_and_forwards(self):
        kernel, plane = make_plane(shards=3, seed=7)
        requests = _launch(plane, 9, cost=40.0)
        plane.drain_requests()
        victims = _ids_on(requests, 0)
        assert victims

        moved = plane.drain_shard(0)
        assert sorted(moved) == victims
        assert plane.shards[0].retired
        assert not plane.shards[0].server.up
        assert plane.shards[0].store.instances.instance_ids() == []
        kernel.run()
        for old_id in victims:
            owner, final_id = plane.resolve_instance(old_id)
            assert owner != 0 and final_id == moved[old_id]
            assert plane.instance(old_id).status == "completed"
        # New launches never land on the retired shard.
        later = _launch(plane, 12, cost=0.1)
        plane.drain_requests()
        assert not _ids_on(later, 0)
        # An id the retired shard never knew is a typed routing error.
        with pytest.raises(UnknownShardError):
            plane.resolve_instance("s00-pi-999999")
        _assert_plane_clean(plane)

    def test_second_hop_chases_through_two_forwards(self):
        kernel, plane = make_plane(shards=3, seed=7)
        requests = _launch(plane, 8, cost=50.0)
        plane.drain_requests()
        old_id = _ids_on(requests, 0)[0]
        hop1 = plane.migrator.migrate_instance(old_id, 1)
        hop2 = plane.migrator.migrate_instance(hop1, 2)
        assert hop2.startswith("s02-")
        assert plane.resolve_instance(old_id) == (2, hop2)
        kernel.run()
        assert plane.instance(old_id).status == "completed"
        # The merged console chases the whole chain too.
        detail = ShardedConsole(plane).instance_detail(old_id)
        assert detail["requested_id"] == old_id
        assert detail["forwarded_to"] == hop2
        assert detail["shard"] == 2
        _assert_plane_clean(plane)

    def test_grown_shard_crash_before_first_request_keeps_templates(self):
        """Construction writes (templates, identity, policy) must be
        durable before a shard serves anything: under a group sync
        policy they sit in the commit buffer, and a fresh grown shard
        crashed before its first request ack used to recover with an
        empty template space — making it unable to adopt migrated
        instances."""
        kernel, plane = make_plane(
            shards=2, seed=7,
            store_options=dict(sync_policy="group", group_max_pending=8))
        requests = _launch(plane, 4, cost=30.0)
        plane.drain_requests()
        assert plane.grow(1) == [2]
        plane.crash_shard(2)
        plane.recover_shard(2)
        moved = plane.drain_shard(0, targets=[2])
        assert moved
        kernel.run()
        for old_id in moved:
            assert plane.instance(old_id).status == "completed"
        _assert_plane_clean(plane)

    def test_drain_refuses_without_a_live_target(self):
        kernel, plane = make_plane(shards=2, seed=7)
        requests = _launch(plane, 4, cost=10.0)
        plane.drain_requests()
        plane.crash_shard(1)
        with pytest.raises(EngineError):
            plane.drain_shard(0)

    def test_grow_then_drain_lands_instances_on_fresh_shard(self):
        kernel, plane = make_plane(shards=2, seed=7)
        requests = _launch(plane, 6, cost=30.0)
        plane.drain_requests()
        assert plane.grow(1) == [2]
        moved = plane.drain_shard(0, targets=[2])
        assert all(new_id.startswith("s02-") for new_id in moved.values())
        kernel.run()
        for old_id in moved:
            assert plane.instance(old_id).status == "completed"
        # Growth also pulls fresh launches onto the new shard.
        later = _launch(plane, 20, cost=0.1)
        plane.drain_requests()
        assert _ids_on(later, 2)
        _assert_plane_clean(plane)


class TestCrashWindows:
    """Arm each ``shard.migrate.*`` window, kill the protocol party
    whose durable state the phase mutates, recover, and re-drain: the
    move must finish with exactly-once outcomes and verbatim logs."""

    WINDOWS = [
        ("shard.migrate.prepare", "source"),
        ("shard.migrate.export", "source"),
        ("shard.migrate.import", "target"),
        ("shard.migrate.commit", "source"),
        ("shard.migrate.activate", "target"),
    ]

    @pytest.mark.parametrize("point,side", WINDOWS)
    def test_crash_recover_redrain_converges(self, point, side):
        kernel, plane = make_plane(shards=2, seed=11)
        requests = _launch(plane, 6, cost=30.0)
        plane.drain_requests()
        victims = _ids_on(requests, 0)
        assert victims
        pre_logs = {old_id: _events(plane, old_id) for old_id in victims}

        injector = FaultInjector([FaultAction(point, "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash):
                plane.drain_shard(0)
        crash_index = plane.migrator.current[side]
        plane.crash_shard(crash_index)
        plane.recover_shard(crash_index)  # runs migrator.resume()

        moved = plane.drain_shard(0)
        kernel.run()
        assert plane.shards[0].retired
        for old_id in victims:
            owner, final_id = plane.resolve_instance(old_id)
            assert owner != 0
            pre = pre_logs[old_id]
            # Pre-migration log survives as a verbatim prefix (re-driven
            # in-flight work only ever appends).
            assert _events(plane, final_id)[:len(pre)] == pre
            assert plane.instance(old_id).status == "completed"
        _assert_plane_clean(plane)


class TestRedeliveryRace:
    def test_signal_deferred_mid_migration_lands_exactly_once(self):
        """A signal dispatched while its instance is quiesced for
        migration is deferred (no ack); the broker's redelivery plus
        the retirement resettle path must land it exactly once on the
        migrated copy."""
        kernel, plane = make_plane(shards=2, seed=11)
        requests = _launch(plane, 6, cost=200.0)
        plane.drain_requests()
        victims = _ids_on(requests, 0)
        old_id = victims[0]  # drain migrates in sorted order

        # Crash the import window: the drain dies with the first
        # instance quiesced on the source (mid-migration pause).
        injector = FaultInjector(
            [FaultAction("shard.migrate.import", "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash):
                plane.drain_shard(0)
        assert old_id in plane.shards[0].server.migrating

        # A signal arriving now is deferred, not erred: the request
        # stays un-acked, waiting on redelivery.
        signal = plane.signal("t0", old_id, "checkpoint-please")
        kernel.run(until=kernel.now + 5.0)
        assert signal.status != "done"

        # Undo the half-move and finish the drain; the un-acked request
        # is resettled onto the instance's new home.
        plane.migrator.resume()
        moved = plane.drain_shard(0)
        new_id = moved[old_id]
        kernel.run()
        assert signal.status == "done"
        raised = [
            event for event in _events(plane, new_id)
            if event["type"] == "signal_raised"
            and event.get("name") == "checkpoint-please"
        ]
        assert len(raised) == 1
        assert plane.instance(old_id).status == "completed"
        _assert_plane_clean(plane)


class TestBrokerTopology:
    def test_queue_stats_and_health_surface_depth_and_age(self):
        kernel, plane = make_plane(shards=2, seed=5)
        console = ShardedConsole(plane)
        _launch(plane, 4, cost=1.0)
        health = console.network_health()
        stats = health["broker_queues"]
        assert set(stats) == {"shard00", "shard01"}
        for entry in stats.values():
            assert {"depth", "oldest_pending_age_s",
                    "up", "retired"} <= set(entry)
        assert sum(entry["depth"] for entry in stats.values()) == 4
        kernel.run()
        after = console.network_health()["broker_queues"]
        assert all(entry["depth"] == 0 for entry in after.values())
        assert all(entry["oldest_pending_age_s"] == 0.0
                   for entry in after.values())

    def test_retired_shard_reports_and_refuses_traffic(self):
        kernel, plane = make_plane(shards=3, seed=5)
        requests = _launch(plane, 6, cost=5.0)
        plane.drain_requests()
        plane.drain_shard(0)
        kernel.run()
        health = plane.broker.health()
        assert health["shards_retired"] == 1
        stats = plane.broker.shard_queue_stats()
        assert stats[0]["retired"] and not stats[0]["up"]
        with pytest.raises(EngineError):
            plane.broker.shard_up(0)
        with pytest.raises(EngineError):
            plane.crash_shard(0)
        with pytest.raises(EngineError):
            plane.recover_shard(0)
        # The merged console stops listing the retired shard but keeps
        # every instance visible on its new home.
        console = ShardedConsole(plane)
        rows = console.list_instances()
        assert len(rows) == len(requests)
        assert {row["shard"] for row in rows} <= {1, 2}
