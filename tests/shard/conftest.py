"""Shared helpers for the sharded control-plane tests."""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.cluster import SimKernel
from repro.core.engine import ProgramRegistry, ProgramResult
from repro.core.ocr.parser import parse_ocr
from repro.shard import ShardedControlPlane

JOB_OCR = """
PROCESS job
  DESCRIPTION "One unit of tenant work"
  INPUT cost DEFAULT 0.5
  OUTPUT receipt = Work.receipt

  ACTIVITY Work
    PROGRAM t.work
    IN cost = wb.cost
  END
END
"""


def job_registry() -> ProgramRegistry:
    """Registry with a single costed no-op job program."""
    registry = ProgramRegistry()

    def work(inputs: Dict[str, Any], ctx) -> ProgramResult:
        return ProgramResult({"receipt": "ok"},
                             cost=float(inputs.get("cost", 0.5)))

    registry.register("t.work", work)
    return registry


def make_plane(shards: int, seed: int = 7,
               **kwargs) -> Tuple[SimKernel, ShardedControlPlane]:
    """A kernel + plane running the simple costed job template."""
    kernel = SimKernel(seed=seed)
    kwargs.setdefault("dispatch_overhead", 0.05)
    plane = ShardedControlPlane(
        kernel, shards=shards, registry=job_registry(),
        templates=[parse_ocr(JOB_OCR)], **kwargs,
    )
    return kernel, plane
