"""Shard failover: exactly-once signals, fencing, blast-radius zero."""

import json

from .conftest import make_plane


def shard_logs(plane, index):
    """Canonical serialization of one shard's durable event logs."""
    server = plane.shards[index].server
    return {
        instance_id: json.dumps(
            list(server.store.instances.events(instance_id)),
            sort_keys=True)
        for instance_id in server.store.instances.instance_ids()
    }


def signal_events(plane, instance_id):
    """All signal_raised events in an instance's durable log."""
    server = plane.shard_of(instance_id).server
    return [event for event
            in server.store.instances.events(instance_id)
            if event.get("type") == "signal_raised"]


class TestSignalAcrossFailover:
    def run_scenario(self):
        kernel, plane = make_plane(shards=4, seed=17,
                                   redeliver_after=5.0)
        requests = [plane.launch(f"tenant{i % 4}", "job",
                                 {"cost": 10_000.0})
                    for i in range(12)]
        plane.drain_requests(horizon=1e6)
        victim = 2
        target = next(r.result for r in requests
                      if plane.router.parse_prefix(r.result) == victim)
        return kernel, plane, victim, target

    def test_signal_during_crash_delivered_exactly_once(self):
        """A signal submitted while its shard is down is held by the
        broker, delivered once after failover, and never doubled."""
        kernel, plane, victim, target = self.run_scenario()
        plane.crash_shard(victim)
        request = plane.signal("tenant0", target, "pause-please")
        for _ in range(200):
            kernel.step()
        assert request.status != "done"  # held while the shard is down
        plane.recover_shard(victim)
        plane.run_until(lambda: request.status == "done", horizon=1e6)
        assert request.result is True
        assert len(signal_events(plane, target)) == 1

    def test_redelivered_signal_is_idempotent(self):
        """Executing the same request twice (redelivery after a lost
        ack) raises the signal once; the replay reports no-op."""
        kernel, plane, victim, target = self.run_scenario()
        request = plane.signal("tenant0", target, "pause-please")
        plane.drain_requests(horizon=1e6)
        assert request.result is True
        replay = plane.shards[victim].execute(request)
        assert replay is not None and replay[1] is False
        assert len(signal_events(plane, target)) == 1

    def test_failover_deposes_only_the_victim(self):
        kernel, plane, victim, target = self.run_scenario()
        plane.crash_shard(victim)
        plane.recover_shard(victim)
        epochs = [shard.server.epoch for shard in plane.shards]
        assert epochs[victim] == 2
        assert all(epoch == 1 for index, epoch in enumerate(epochs)
                   if index != victim)

    def test_stale_ack_from_deposed_incarnation_rejected(self):
        """An ack carrying a pre-failover epoch must not complete a
        request once the broker has seen the new incarnation."""
        kernel, plane, victim, target = self.run_scenario()
        plane.crash_shard(victim)
        plane.recover_shard(victim)
        request = plane.signal("tenant0", target, "late-ack")
        plane.drain_requests(horizon=1e6)  # epoch 2 now seen in acks
        broker = plane.broker
        before = broker.stale_acks_rejected
        victim_req = plane.signal("tenant1", target, "never-lands")
        broker._ack(victim_req, epoch=1, result=True)
        assert broker.stale_acks_rejected == before + 1
        assert victim_req.status != "done"
        assert request.status == "done"


class TestBlastRadius:
    def test_non_victim_logs_byte_identical_to_fault_free_twin(self):
        """Crash + fail over shard 1 mid-run: every other shard's
        durable event log must match a fault-free twin run at the same
        kernel seed byte for byte."""
        def drive(fault):
            kernel, plane = make_plane(shards=4, seed=29)
            requests = [plane.launch(f"tenant{i % 4}", "job",
                                     {"cost": 30.0})
                        for i in range(16)]
            if fault:
                kernel.schedule(5.0, plane.crash_shard, 1,
                                label="test: crash shard 1")
                kernel.schedule(25.0, plane.recover_shard, 1,
                                label="test: recover shard 1")
            plane.run_until(
                lambda: all(
                    r.status == "done"
                    and plane.shard_of(r.result).server.up
                    and plane.instance(r.result).terminal
                    for r in requests),
                horizon=1e7,
            )
            return plane

        faulted = drive(fault=True)
        twin = drive(fault=False)
        assert faulted.shards[1].server.epoch == 2
        for index in (0, 2, 3):
            assert shard_logs(faulted, index) == shard_logs(twin, index)
        statuses = {instance.status for instance
                    in faulted.all_instances().values()}
        assert statuses == {"completed"}
