"""Fairness property: a noisy tenant cannot degrade a quiet tenant.

The quiet tenant submits one launch every ~1.37 s (a light, interactive
workload). The noisy tenant floods thousands of launches at t=0 so its
backlog outlives the whole measurement window. The broker's per-tenant
queues + front-of-ring re-entry must keep the quiet tenant's p99 ack
latency within 2x of its quiet-plane baseline — the bound a global FIFO
intake would miss by an order of magnitude (the quiet tenant would sit
behind the entire flood).
"""

from repro.obs.merge import jain_index, percentile

from .conftest import make_plane

QUIET_PROBES = 40
QUIET_SPACING = 1.37
NOISY_FLOOD = 4_000


def quiet_latencies(noisy: bool):
    """Run the scenario and return the quiet tenant's ack latencies."""
    # Slow broker service (250 ms/request) so the noisy backlog outlives
    # the whole probe window — the quiet tenant is always contending.
    kernel, plane = make_plane(shards=4, seed=3, service_time=0.25)

    def probe():
        plane.launch("quiet", "job", {"cost": 5.0})

    for index in range(QUIET_PROBES):
        kernel.schedule(2.0 + index * QUIET_SPACING, probe,
                        label=f"quiet probe {index}")
    if noisy:
        for _ in range(NOISY_FLOOD):
            plane.launch("noisy", "job", {"cost": 5.0})
    horizon = 2.0 + QUIET_PROBES * QUIET_SPACING + 50.0
    plane.run_until(
        lambda: len(plane.broker.tenant_latencies.get("quiet", ()))
        >= QUIET_PROBES,
        horizon=horizon * 100,
    )
    return plane.broker.tenant_latencies["quiet"], plane


class TestNoisyNeighbour:
    def test_noisy_tenant_cannot_double_quiet_p99(self):
        baseline, _ = quiet_latencies(noisy=False)
        contended, plane = quiet_latencies(noisy=True)
        # the flood really was live for the whole window
        assert plane.broker.queue_depth(0, "noisy") > 0
        ratio = percentile(contended, 0.99) / percentile(baseline, 0.99)
        assert ratio <= 2.0, f"quiet p99 degraded {ratio:.2f}x"

    def test_equal_tenants_complete_fairly(self):
        """Eight equally-demanding tenants: round-robin draining keeps
        Jain's index over completed work ~1 at every point in time."""
        kernel, plane = make_plane(shards=4, seed=5)
        for index in range(800):
            plane.launch(f"tenant{index % 8}", "job", {"cost": 0.1})
        # stop mid-drain: fairness must hold *during* the burst too
        plane.run_until(lambda: plane.broker.completed >= 400,
                        horizon=1e6)
        counts = [plane.broker.tenant_completed.get(f"tenant{i}", 0)
                  for i in range(8)]
        assert jain_index(counts) >= 0.99, counts
