"""Shard-router properties: total, deterministic, growth-stable."""

from hypothesis import given, strategies as st
import pytest

from repro.errors import EngineError
from repro.shard import ShardRouter

ids = st.text(min_size=1, max_size=40)
shard_counts = st.integers(min_value=1, max_value=32)


class TestRouting:
    @given(instance_id=ids, shards=shard_counts)
    def test_every_id_routes_to_exactly_one_shard(self, instance_id,
                                                  shards):
        router = ShardRouter(shards)
        owner = router.shard_of(instance_id)
        assert 0 <= owner < shards
        # deterministic: same id, same router, same shard — always
        assert router.shard_of(instance_id) == owner

    @given(instance_id=ids, shards=shard_counts)
    def test_routing_is_stable_after_adding_a_shard(self, instance_id,
                                                    shards):
        """Growth keeps every id owned by exactly one shard, and a
        *prefixed* id (already minted by a shard) never moves."""
        router = ShardRouter(shards)
        grown = router.grown(shards + 1)
        assert 0 <= grown.shard_of(instance_id) < shards + 1
        for owner in range(shards):
            minted = f"{router.prefix(owner)}pi-000042"
            assert router.shard_of(minted) == owner
            assert grown.shard_of(minted) == owner

    @given(shards=shard_counts, serial=st.integers(0, 999_999))
    def test_prefix_round_trips(self, shards, serial):
        router = ShardRouter(shards)
        for owner in range(shards):
            minted = f"{router.prefix(owner)}pi-{serial:06d}"
            assert router.parse_prefix(minted) == owner

    def test_orphaned_prefix_falls_back_to_hash(self):
        """A prefix pointing past the plane (e.g. after a shrink) is
        still routed — by hash, not by the stale owner index."""
        router = ShardRouter(2)
        owner = router.shard_of("s07-pi-000001")
        assert 0 <= owner < 2

    def test_zero_shards_rejected(self):
        with pytest.raises(EngineError):
            ShardRouter(0)
