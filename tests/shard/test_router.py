"""Shard-router properties: total, deterministic, growth-stable."""

from hypothesis import given, strategies as st
import pytest

from repro.errors import EngineError, UnknownShardError
from repro.shard import ShardRouter

ids = st.text(min_size=1, max_size=40)
shard_counts = st.integers(min_value=1, max_value=32)


class TestRouting:
    @given(instance_id=ids, shards=shard_counts)
    def test_every_id_routes_to_exactly_one_shard(self, instance_id,
                                                  shards):
        router = ShardRouter(shards)
        try:
            owner = router.shard_of(instance_id)
        except UnknownShardError:
            # Only possible for an id carrying a prefix past the plane.
            assert router.parse_prefix(instance_id) >= shards
            return
        assert 0 <= owner < shards
        # deterministic: same id, same router, same shard — always
        assert router.shard_of(instance_id) == owner

    @given(instance_id=ids, shards=shard_counts)
    def test_routing_is_stable_after_adding_a_shard(self, instance_id,
                                                    shards):
        """Growth keeps every id owned by exactly one shard, and a
        *prefixed* id (already minted by a shard) never moves."""
        router = ShardRouter(shards)
        grown = router.grown(shards + 1)
        for owner in range(shards):
            minted = f"{router.prefix(owner)}pi-000042"
            assert router.shard_of(minted) == owner
            assert grown.shard_of(minted) == owner

    @given(shards=shard_counts, serial=st.integers(0, 999_999))
    def test_prefix_round_trips(self, shards, serial):
        router = ShardRouter(shards)
        for owner in range(shards):
            minted = f"{router.prefix(owner)}pi-{serial:06d}"
            assert router.parse_prefix(minted) == owner

    def test_orphaned_prefix_raises_typed_error(self):
        """A prefix pointing past the plane (a shard removed outright)
        must fail loudly — hash-routing it would query a shard that has
        never heard of the instance and report it missing."""
        router = ShardRouter(2)
        with pytest.raises(UnknownShardError):
            router.shard_of("s07-pi-000001")

    def test_zero_shards_rejected(self):
        with pytest.raises(EngineError):
            ShardRouter(0)


class TestRetirement:
    def test_retired_shard_still_owns_its_prefixed_ids(self):
        """Retired stores hold the forwarding records — prefixed ids
        must keep resolving to them so stale requests can route-chase."""
        router = ShardRouter(4).with_retired(1)
        assert router.shard_of("s01-pi-000007") == 1

    @given(key=ids)
    def test_hash_route_avoids_retired_shards(self, key):
        router = ShardRouter(4).with_retired(2)
        assert router.hash_route(key) != 2
        assert router.shard_of(f"req-{key}") != 2

    def test_growth_preserves_retirement(self):
        router = ShardRouter(4).with_retired(1)
        grown = router.grown(6)
        assert grown.retired == frozenset({1})
        assert set(grown.active) == {0, 2, 3, 4, 5}

    def test_cannot_retire_the_whole_plane(self):
        with pytest.raises(EngineError):
            ShardRouter(1).with_retired(0)

    @given(key=ids)
    def test_pick_is_deterministic_and_in_candidates(self, key):
        router = ShardRouter(8)
        candidates = [5, 1, 3]
        choice = router.pick(key, candidates)
        assert choice in candidates
        assert router.pick(key, [3, 5, 1]) == choice
