"""Plane-level behavior: id minting, broadcasts, merged console."""

import re

import repro.store.spaces as spaces
from repro.shard import ShardedConsole

from .conftest import make_plane

ID_PATTERN = re.compile(r"^s(\d{2})-pi-(\d{6})$")


class TestIdMinting:
    def test_two_shards_1k_launches_disjoint_ids_no_rescans(
            self, monkeypatch):
        """2 shards x 1000 launches: every id is shard-prefixed and
        unique, per-shard serials are contiguous, and the id counter
        never rescans the instance space (the old O(n) cost)."""
        scans = {"count": 0}
        original = spaces.InstanceSpace.instance_ids

        def counting(self):
            scans["count"] += 1
            return original(self)

        monkeypatch.setattr(spaces.InstanceSpace, "instance_ids",
                            counting)
        kernel, plane = make_plane(shards=2, seed=13)
        requests = [
            plane.launch(f"tenant{i % 4}", "job", {"cost": 0.1})
            for i in range(10)
        ]
        plane.drain_requests(horizon=1e6)
        # setup scans: hub catch-up + one-time serial seeding per shard
        after_warmup = scans["count"]
        requests += [
            plane.launch(f"tenant{i % 4}", "job", {"cost": 0.1})
            for i in range(990)
        ]
        plane.drain_requests(horizon=1e6)
        ids = [request.result for request in requests]
        assert len(set(ids)) == 1000
        per_shard = {0: [], 1: []}
        for instance_id in ids:
            match = ID_PATTERN.match(instance_id)
            assert match, instance_id
            per_shard[int(match.group(1))].append(int(match.group(2)))
        # both shards minted, serials contiguous from 1 within a shard
        for shard, serials in per_shard.items():
            assert serials, f"shard {shard} minted nothing"
            assert sorted(serials) == list(range(1, len(serials) + 1))
        # the serial counter is durable: after the one-time seeding no
        # launch ever rescans the instance space — launch cost is O(1)
        assert scans["count"] == after_warmup, (
            f"{scans['count'] - after_warmup} rescans across 990 launches")


class TestBroadcast:
    def test_broadcast_reaches_instances_on_every_shard(self):
        kernel, plane = make_plane(shards=4, seed=9)
        requests = [plane.launch(f"tenant{i % 4}", "job",
                                 {"cost": 10_000.0})
                    for i in range(16)]
        plane.drain_requests(horizon=1e6)
        assert {plane.router.parse_prefix(r.result)
                for r in requests} == {0, 1, 2, 3}
        plane.broadcast_signal("checkpoint-now")
        plane.drain_requests(horizon=1e6)
        for request in requests:
            instance = plane.instance(request.result)
            assert "checkpoint-now" in instance.signals, request.result

    def test_server_raised_broadcast_fans_out_plane_wide(self):
        """broadcast_signal raised *on one shard's server* still reaches
        instances owned by every other shard (the fanout-hook bugfix)."""
        kernel, plane = make_plane(shards=3, seed=9)
        requests = [plane.launch("t", "job", {"cost": 10_000.0})
                    for _ in range(9)]
        plane.drain_requests(horizon=1e6)
        plane.shards[1].server.broadcast_signal("drain")
        plane.drain_requests(horizon=1e6)
        signalled = sum(
            1 for request in requests
            if "drain" in plane.instance(request.result).signals
        )
        assert signalled == 9


class TestMergedConsole:
    def test_console_routes_and_merges(self):
        kernel, plane = make_plane(shards=2, seed=21)
        requests = [plane.launch(f"tenant{i % 2}", "job", {"cost": 0.1})
                    for i in range(8)]
        plane.drain_requests(horizon=1e6)
        plane.run_until(
            lambda: all(plane.instance(r.result).terminal
                        for r in requests),
            horizon=1e6,
        )
        console = ShardedConsole(plane)
        rows = console.list_instances()
        assert len(rows) == 8
        assert {row["shard"] for row in rows} == {0, 1}
        assert rows == sorted(rows, key=lambda row: row["instance_id"])
        detail = console.instance_detail(requests[0].result)
        assert detail["shard"] == plane.router.shard_of(
            requests[0].result)
        depths = console.queue_depth()
        assert set(depths) == {"shard00", "shard01", "broker"}
        health = console.network_health()
        assert health["broker"]["shards_up"] == 2
        snapshot = console.metrics_snapshot()
        assert len(snapshot["shards"]) == 2
        per_shard = [
            shard_snapshot["counters"].get("events_appended", 0)
            for shard_snapshot in snapshot["shards"].values()
        ]
        assert all(count > 0 for count in per_shard)
        assert (snapshot["total_counters"]["events_appended"]
                == sum(per_shard))
