"""Real vs. modeled Darwin execution through the identical process.

The benchmarks run cost-modeled Darwin for scale; these tests pin down
what the substitution preserves: the same process, run once with genuine
Smith-Waterman alignment and once with the modeled engine over the same
database, agrees on the biologically meaningful structure (the planted
homologous families) and exercises identical engine paths.
"""

import pytest

from repro.bio import DarwinEngine, DatabaseProfile, SequenceDatabase
from repro.core.engine import BioOperaServer, InlineEnvironment
from repro.processes import install_all_vs_all


@pytest.fixture(scope="module")
def database():
    return SequenceDatabase.synthetic(
        "rvm_db", 30, seed=77, mean_length=80.0, min_length=40,
        max_length=200, family_fraction=0.4, family_size=3,
        mutation_rate=0.15,
    )


@pytest.fixture(scope="module")
def profile(database):
    return DatabaseProfile.from_database(database)


def run(darwin, granularity=4):
    server = BioOperaServer(seed=1)
    environment = InlineEnvironment()
    server.attach_environment(environment)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {
        "db_name": darwin.profile.name,
        "granularity": granularity,
    })
    status = environment.run_instance(instance_id)
    assert status == "completed"
    instance = server.instance(instance_id)
    merged = instance.find_state("MergeByEntry").outputs["matches"]
    return server, instance, merged


class TestAgreement:
    @pytest.fixture(scope="class")
    def runs(self, database, profile):
        real = DarwinEngine(profile, database=database, mode="real",
                            match_threshold=60.0, seed=3)
        modeled = DarwinEngine(profile, mode="modeled",
                               match_threshold=60.0,
                               random_match_rate=0.0, seed=3)
        return run(real), run(modeled)

    def test_both_find_every_planted_family_pair(self, runs, profile):
        (_s1, _i1, real_matches), (_s2, _i2, modeled_matches) = runs
        planted = set(profile.homologous_pairs())
        assert planted
        real_pairs = {(m["i"], m["j"]) for m in real_matches["matches"]}
        modeled_pairs = {(m["i"], m["j"]) for m in modeled_matches["matches"]}
        assert planted <= modeled_pairs           # modeled: by construction
        assert len(planted & real_pairs) >= 0.8 * len(planted)

    def test_match_counts_same_magnitude(self, runs):
        (_s1, _i1, real_matches), (_s2, _i2, modeled_matches) = runs
        assert real_matches["count"] > 0
        # with background matches disabled, the modeled count is the family
        # count; real mode may add a few chance similarities
        assert modeled_matches["count"] <= real_matches["count"] * 1.5 + 5
        assert real_matches["count"] <= modeled_matches["count"] * 3 + 10

    def test_refined_pams_in_plausible_range_both_modes(self, runs):
        for _server, _instance, merged in runs:
            for match in merged["matches"]:
                assert 0 < match["pam"] <= 400

    def test_same_engine_event_shapes(self, runs):
        """Both modes drive identical orchestration: same activity count,
        same event-type sequence per chunk."""
        (server_real, i_real, _m1), (server_mod, i_mod, _m2) = runs
        assert i_real.activity_count() == i_mod.activity_count()

        def chunk_event_types(server, instance):
            return [
                event["type"]
                for event in server.store.instances.events(instance.id)
                if "Chunk[0]/" in event.get("path", "")
            ]

        assert chunk_event_types(server_real, i_real) == \
            chunk_event_types(server_mod, i_mod)

    def test_costs_comparable_scale(self, runs):
        """The cost model charges modeled runs an amount of the same order
        the real computation reports."""
        (_s1, i_real, _m1), (_s2, i_mod, _m2) = runs
        real_cpu = i_real.total_cpu_seconds()
        modeled_cpu = i_mod.total_cpu_seconds()
        assert real_cpu > 0 and modeled_cpu > 0
        ratio = modeled_cpu / real_cpu
        assert 0.3 <= ratio <= 3.0
