"""Integration: the dependability claims, exercised end to end.

Each test runs the real all-vs-all process on the simulated cluster and
injects one failure class from the paper's Figure 5 taxonomy, asserting
(a) the run completes, (b) the results are identical to an undisturbed
run, and (c) completed work is not silently lost or duplicated.
"""

import pytest

from repro.bio import DarwinEngine, DatabaseProfile
from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer
from repro.processes import install_all_vs_all


@pytest.fixture(scope="module")
def darwin():
    profile = DatabaseProfile.synthetic("itest", 120, seed=5)
    return DarwinEngine(profile, mode="modeled", random_match_rate=2e-3,
                        sample_cap=200, seed=2)


def launch(darwin, seed=11, nodes=4, cpus=2, granularity=8, noise=0.0):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(nodes, cpus=cpus),
                               execution_noise=noise)
    server = BioOperaServer(seed=seed)
    server.attach_environment(cluster)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {
        "db_name": darwin.profile.name,
        "granularity": granularity,
    })
    return kernel, cluster, server, instance_id


@pytest.fixture(scope="module")
def baseline(darwin):
    kernel, cluster, server, iid = launch(darwin)
    cluster.run_until_instance_done(iid)
    return {
        "outputs": server.instance(iid).outputs,
        "wall": kernel.now,
        "events": server.store.instances.event_count(iid),
    }


def run_with(darwin, disturb, **kw):
    kernel, cluster, server, iid = launch(darwin, **kw)
    disturb(kernel, cluster, server, iid)
    status = cluster.run_until_instance_done(iid)
    return kernel, cluster, server, iid, status


class TestFailureMatrix:
    def test_node_crash_mid_run(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(200.0, cluster.crash_node, "node001")
            kernel.schedule(2000.0, cluster.restore_node, "node001")

        _k, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]

    def test_entire_cluster_failure(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            def crash_all():
                for name in list(cluster.nodes):
                    cluster.crash_node(name)

            def restore_all():
                for name in list(cluster.nodes):
                    cluster.restore_node(name)

            kernel.schedule(300.0, crash_all)
            kernel.schedule(4000.0, restore_all)

        _k, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]

    def test_server_crash_and_recovery(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(250.0, cluster.crash_server)
            kernel.schedule(1000.0, cluster.recover_server)

        _k, cluster, _s, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert cluster.server.instance(iid).outputs == baseline["outputs"]

    def test_network_outage(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(200.0, cluster.start_network_outage)
            kernel.schedule(2500.0, cluster.end_network_outage)

        _k, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]

    def test_disk_full_window(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(150.0, cluster.set_storage_full, True)
            kernel.schedule(2000.0, cluster.set_storage_full, False)

        _k, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]

    def test_suspend_resume_window(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            # mid-run for this workload (baseline wall is ~75 s)
            kernel.schedule(10.0, server.suspend, iid, "other user")
            kernel.schedule(5000.0, server.resume, iid)

        kernel, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]
        assert kernel.now > baseline["wall"]  # suspension costs wall time

    def test_hardware_upgrade_mid_run(self, darwin):
        # more TEUs than CPUs, so extra processors actually absorb work
        kernel0, _c0, server0, iid0 = launch(darwin, granularity=32)
        _c0.run_until_instance_done(iid0)
        flat_wall = kernel0.now
        flat_outputs = server0.instance(iid0).outputs

        def disturb(kernel, cluster, server, iid):
            def upgrade():
                for name in list(cluster.nodes):
                    cluster.upgrade_node(name, cpus=4)

            kernel.schedule(10.0, upgrade)

        kernel, _c, server, iid, status = run_with(darwin, disturb,
                                                   granularity=32)
        assert status == "completed"
        assert server.instance(iid).outputs == flat_outputs
        assert kernel.now < flat_wall  # more CPUs help

    def test_io_error_burst(self, darwin, baseline):
        def disturb(kernel, cluster, server, iid):
            cluster.set_job_failure_rate(0.3)
            kernel.schedule(3000.0, cluster.set_job_failure_rate, 0.0)

        _k, _c, server, iid, status = run_with(darwin, disturb, seed=13)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]

    def test_combined_catastrophe(self, darwin, baseline):
        """Everything at once: crash + outage + server loss + disk full."""
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(100.0, cluster.crash_node, "node002")
            kernel.schedule(220.0, cluster.start_network_outage)
            kernel.schedule(900.0, cluster.end_network_outage)
            kernel.schedule(1000.0, cluster.crash_server)
            kernel.schedule(1800.0, cluster.recover_server)
            kernel.schedule(2000.0, cluster.set_storage_full, True)
            kernel.schedule(2600.0, cluster.set_storage_full, False)
            kernel.schedule(3000.0, cluster.restore_node, "node002")

        _k, cluster, _s, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert cluster.server.instance(iid).outputs == baseline["outputs"]


class TestCrashPointSweep:
    """Recovery correctness must be independent of *when* the server dies."""

    @pytest.mark.parametrize("crash_at", [50.0, 300.0, 700.0, 1200.0, 2500.0])
    def test_server_crash_at_many_points(self, darwin, baseline, crash_at):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(crash_at, cluster.crash_server)
            kernel.schedule(crash_at + 600.0, cluster.recover_server)

        _k, cluster, _s, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert cluster.server.instance(iid).outputs == baseline["outputs"]

    @pytest.mark.parametrize("crash_at", [100.0, 600.0, 1500.0])
    def test_node_crash_at_many_points(self, darwin, baseline, crash_at):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(crash_at, cluster.crash_node, "node003")
            kernel.schedule(crash_at + 1000.0, cluster.restore_node,
                            "node003")

        _k, _c, server, iid, status = run_with(darwin, disturb)
        assert status == "completed"
        assert server.instance(iid).outputs == baseline["outputs"]


class TestEventLogInvariants:
    def test_log_replay_after_disturbed_run(self, darwin):
        from repro.core.engine import replay_instance, verify_log

        def disturb(kernel, cluster, server, iid):
            kernel.schedule(200.0, cluster.crash_node, "node001")
            kernel.schedule(1500.0, cluster.restore_node, "node001")
            kernel.schedule(400.0, cluster.crash_server)
            kernel.schedule(1000.0, cluster.recover_server)

        _k, cluster, _s, iid, _status = run_with(darwin, disturb)
        server = cluster.server
        assert verify_log(server.store, iid, server._resolver) == []
        twin = replay_instance(server.store, iid, server._resolver)
        assert twin.status == "completed"
        assert twin.outputs == server.instance(iid).outputs

    def test_no_duplicate_completions_per_attempt(self, darwin):
        def disturb(kernel, cluster, server, iid):
            kernel.schedule(200.0, cluster.start_network_outage)
            kernel.schedule(1200.0, cluster.end_network_outage)

        _k, _c, server, iid, _status = run_with(darwin, disturb)
        seen = set()
        for event in server.store.instances.events(iid):
            if event["type"] == "task_completed" and event.get("node"):
                key = event["path"]
                assert key not in seen, f"{key} completed twice"
                seen.add(key)
