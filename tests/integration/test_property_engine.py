"""Property-based engine tests: random processes, random crash points."""

from hypothesis import given, settings, strategies as st

from repro.core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramRegistry,
    ProgramResult,
    replay_instance,
)
from repro.core.model import Activity, ProcessTemplate, TaskGraph
from repro.core.model.data import ProcessParameter


@st.composite
def random_dag_template(draw):
    """A random acyclic process whose activities each produce a token."""
    task_count = draw(st.integers(min_value=1, max_value=7))
    graph = TaskGraph()
    names = [f"T{i}" for i in range(task_count)]
    for name in names:
        graph.add_task(Activity(name, program="prop.token"))
    edges = []
    for i in range(task_count):
        for j in range(i + 1, task_count):
            if draw(st.booleans()):
                graph.connect(names[i], names[j])
                edges.append((names[i], names[j]))
    return ProcessTemplate(
        "RandomDag", graph=graph,
        parameters=[ProcessParameter("seed", optional=True, default=0)],
    ), edges


class TestRandomDags:
    @settings(max_examples=40, deadline=None)
    @given(random_dag_template())
    def test_every_dag_completes_and_respects_order(self, built):
        template, edges = built
        order = []

        def token(inputs, ctx):
            order.append(ctx.task_path)
            return ProgramResult({"token": ctx.task_path}, 0.1)

        registry = ProgramRegistry()
        registry.register("prop.token", token)
        server = BioOperaServer(registry=registry)
        environment = InlineEnvironment()
        server.attach_environment(environment)
        server.define_template(template)
        instance_id = server.launch("RandomDag")
        environment.run_instance(instance_id)
        instance = server.instance(instance_id)
        assert instance.status == "completed"
        # every task ran exactly once
        assert sorted(order) == sorted(template.graph.tasks)
        # control-flow edges respected
        positions = {name: index for index, name in enumerate(order)}
        for source, target in edges:
            assert positions[source] < positions[target]

    @settings(max_examples=25, deadline=None)
    @given(random_dag_template())
    def test_replay_equals_live(self, built):
        template, _edges = built
        registry = ProgramRegistry()
        registry.register(
            "prop.token",
            lambda i, c: ProgramResult({"token": c.task_path}, 0.1),
        )
        server = BioOperaServer(registry=registry)
        environment = InlineEnvironment()
        server.attach_environment(environment)
        server.define_template(template)
        instance_id = server.launch("RandomDag")
        environment.run_instance(instance_id)
        live = server.instance(instance_id)
        twin = replay_instance(server.store, instance_id, server._resolver)
        assert twin.status == live.status
        assert twin.progress() == live.progress()
        for state in live.iter_states():
            assert twin.find_state(state.path).outputs == state.outputs


class TestRandomCrashPoints:
    CHAIN_LENGTH = 6

    def build(self):
        graph = TaskGraph()
        previous = None
        for index in range(self.CHAIN_LENGTH):
            name = f"S{index}"
            graph.add_task(Activity(name, program="prop.step"))
            if previous is not None:
                graph.connect(previous, name)
            previous = name
        template = ProcessTemplate("Chain6", graph=graph)
        registry = ProgramRegistry()
        calls = []
        registry.register(
            "prop.step",
            lambda i, c: (calls.append(c.task_path),
                          ProgramResult({"done": c.task_path}, 1.0))[1],
        )
        server = BioOperaServer(registry=registry)
        environment = InlineEnvironment()
        server.attach_environment(environment)
        server.define_template(template)
        return server, environment, calls

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=CHAIN_LENGTH),
           st.integers(min_value=0, max_value=CHAIN_LENGTH))
    def test_crash_twice_anywhere_no_rework_of_completed_steps(
            self, first_crash, second_crash):
        server, environment, calls = self.build()
        instance_id = server.launch("Chain6")
        for _ in range(first_crash):
            environment.step()
        server.crash()
        environment2 = InlineEnvironment()
        server2 = BioOperaServer.recover(server.store, server.registry,
                                         environment=environment2)
        for _ in range(second_crash):
            environment2.step()
        server2.crash()
        environment3 = InlineEnvironment()
        server3 = BioOperaServer.recover(server2.store, server2.registry,
                                         environment=environment3)
        environment3.run_instance(instance_id)
        instance = server3.instance(instance_id)
        assert instance.status == "completed"
        # each step completed exactly once in the durable log...
        completed = [
            event["path"]
            for event in server3.store.instances.events(instance_id)
            if event["type"] == "task_completed"
        ]
        assert sorted(completed) == sorted(
            f"S{i}" for i in range(self.CHAIN_LENGTH))
        # ...and each step EXECUTED at most twice (once wasted per crash
        # at most: the in-flight victim)
        for index in range(self.CHAIN_LENGTH):
            assert calls.count(f"S{index}") <= 3
