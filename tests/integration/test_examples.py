"""The shipped examples must keep running (they are executable docs)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..",
                            "examples")

EXAMPLES = [
    "quickstart.py",
    "all_vs_all_real.py",
    "dependable_cluster_run.py",
    "tower_of_information.py",
    "coordination_and_failover.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_clean(script):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"


def test_examples_list_is_complete():
    on_disk = sorted(
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    )
    assert on_disk == sorted(EXAMPLES), (
        "examples/ changed; update EXAMPLES and the README list"
    )
