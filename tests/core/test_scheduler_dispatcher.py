"""Scheduling policies, awareness model, dispatcher bookkeeping."""

import pytest

from repro.core.engine.dispatcher import Dispatcher, JobRequest
from repro.core.engine.scheduler import (
    CapacityAwarePolicy,
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.monitor.awareness import AwarenessModel
from repro.errors import EngineError


def make_awareness(*specs):
    """specs: (name, cpus, speed[, tags])"""
    model = AwarenessModel()
    for spec in specs:
        name, cpus, speed = spec[0], spec[1], spec[2]
        tags = spec[3] if len(spec) > 3 else ()
        model.register(name, cpus, speed, tags)
    return model


class TestAwareness:
    def test_candidates_excludes_down_nodes(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 1.0))
        model.node_down("a")
        assert [v.name for v in model.candidates()] == ["b"]

    def test_candidates_excludes_full_nodes(self):
        model = make_awareness(("a", 1, 1.0), ("b", 2, 1.0))
        model.assign("a", "job1")
        assert [v.name for v in model.candidates()] == ["b"]

    def test_placement_tag_filter(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 1.0, ("refine",)))
        assert [v.name for v in model.candidates("refine")] == ["b"]
        assert [v.name for v in model.candidates()] == ["a", "b"]

    def test_node_down_returns_orphans(self):
        model = make_awareness(("a", 2, 1.0))
        model.assign("a", "j1")
        model.assign("a", "j2")
        assert model.node_down("a") == ["j1", "j2"]
        assert model.node("a").assigned == set()

    def test_effective_free_accounts_for_load(self):
        model = make_awareness(("a", 4, 1.0))
        model.load_report("a", 2.5)
        model.assign("a", "j1")
        assert model.node("a").effective_free() == pytest.approx(0.5)

    def test_reconfigure(self):
        model = make_awareness(("a", 1, 1.0))
        model.reconfigure("a", cpus=2, speed=1.5)
        assert model.node("a").cpus == 2
        assert model.node("a").speed == 1.5

    def test_total_cpus(self):
        model = make_awareness(("a", 2, 1.0), ("b", 3, 1.0))
        model.node_down("b")
        assert model.total_cpus() == 2
        assert model.total_cpus(only_up=False) == 5

    def test_unknown_node_raises(self):
        with pytest.raises(EngineError):
            make_awareness().node("ghost")

    def test_release_unknown_node_is_noop(self):
        make_awareness().release("ghost", "j1")


class TestPolicies:
    def test_least_loaded_prefers_free_capacity(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0))
        model.assign("a", "j1")
        model.assign("a", "j2")
        policy = LeastLoadedPolicy()
        assert policy.select(model.candidates()) == "b"

    def test_least_loaded_uses_external_load(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0))
        model.load_report("a", 3.0)
        assert LeastLoadedPolicy().select(model.candidates()) == "b"

    def test_capacity_aware_prefers_fast_free_node(self):
        model = make_awareness(("slow", 4, 0.5), ("fast", 2, 2.0))
        assert CapacityAwarePolicy().select(model.candidates()) == "fast"

    def test_capacity_aware_avoids_loaded_fast_node(self):
        model = make_awareness(("slow", 4, 0.8), ("fast", 2, 2.0))
        model.load_report("fast", 2.0)  # fully busy with other users
        assert CapacityAwarePolicy().select(model.candidates()) == "slow"

    def test_round_robin_cycles(self):
        model = make_awareness(("a", 9, 1.0), ("b", 9, 1.0), ("c", 9, 1.0))
        policy = RoundRobinPolicy()
        picks = [policy.select(model.candidates()) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_round_robin_independent_of_candidate_order(self):
        """Regression: the rotation must not depend on list order — with an
        unsorted candidate list the old implementation picked the first
        name > last in *list* order and could starve nodes."""
        import random

        model = make_awareness(("a", 9, 1.0), ("b", 9, 1.0), ("c", 9, 1.0))
        rng = random.Random(7)
        policy = RoundRobinPolicy()
        picks = []
        for _ in range(9):
            candidates = model.candidates()
            rng.shuffle(candidates)
            picks.append(policy.select(candidates))
        assert picks == ["a", "b", "c"] * 3

    def test_random_policy_deterministic_per_seed(self):
        model = make_awareness(("a", 9, 1.0), ("b", 9, 1.0))
        picks1 = [RandomPolicy(1).select(model.candidates())
                  for _ in range(5)]
        picks2 = [RandomPolicy(1).select(model.candidates())
                  for _ in range(5)]
        # fresh policies with the same seed agree on the first pick
        assert picks1[0] == picks2[0]

    def test_all_policies_handle_empty_candidates(self):
        for policy in (RoundRobinPolicy(), LeastLoadedPolicy(),
                       CapacityAwarePolicy(), RandomPolicy(0)):
            assert policy.select([]) is None

    def test_factory(self):
        assert make_policy("round-robin").name == "round-robin"
        assert make_policy("least-loaded").name == "least-loaded"
        assert make_policy("capacity-aware").name == "capacity-aware"
        assert make_policy("random").name == "random"
        with pytest.raises(ValueError):
            make_policy("oracle")


class _DispatchHarness:
    """Minimal server-side wiring for dispatcher unit tests."""

    def __init__(self, awareness):
        self.dispatcher = Dispatcher(awareness)
        self.submitted = []
        self.vetoed = []
        self.dispatchable = True
        self.dispatcher.wire(
            submit=lambda job, node: self.submitted.append((job, node)),
            record_dispatch=self._record,
            is_dispatchable=lambda _iid: self.dispatchable,
        )

    def _record(self, job, node):
        if job.task_path in self.vetoed:
            return False
        return True


def job(path="T", attempt=1, placement="", instance="pi-1"):
    return JobRequest(
        instance_id=instance, task_path=path, program="p", inputs={},
        attempt=attempt, placement=placement,
    )


class TestDispatcher:
    def test_places_job_and_tracks_assignment(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[0][1] == "a"
        assert model.node("a").assigned_count == 1

    def test_duplicate_enqueue_rejected(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        assert harness.dispatcher.enqueue(job()) is True
        assert harness.dispatcher.enqueue(job()) is False

    def test_enqueue_rejected_while_in_flight(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.dispatcher.enqueue(job())
        harness.dispatcher.pump()
        assert harness.dispatcher.enqueue(job(attempt=2)) is False

    def test_requeue_allowed_after_finish(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        request = job()
        harness.dispatcher.enqueue(request)
        harness.dispatcher.pump()
        harness.dispatcher.job_finished(request.job_id)
        assert harness.dispatcher.enqueue(job(attempt=2)) is True

    def test_jobs_wait_when_no_capacity(self):
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1
        assert harness.dispatcher.queue_length() == 1
        # capacity frees up -> next pump places the waiter
        first = harness.submitted[0][0]
        harness.dispatcher.job_finished(first.job_id)
        assert harness.dispatcher.pump() == 1

    def test_placement_tag_respected(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0, ("gpu",)))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        harness.dispatcher.pump()
        assert harness.submitted[0][1] == "b"

    def test_unplaceable_tagged_job_waits(self):
        model = make_awareness(("a", 4, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.queue_length() == 1

    def test_suspended_instance_not_dispatched(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.dispatchable = False
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 0
        harness.dispatchable = True
        assert harness.dispatcher.pump() == 1

    def test_veto_drops_job(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.vetoed.append("T")
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.queue_length() == 0  # dropped, not waiting

    def test_drop_instance_clears_queue_and_in_flight(self):
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", instance="pi-1"))
        harness.dispatcher.enqueue(job("T2", instance="pi-1"))
        harness.dispatcher.enqueue(job("T3", instance="pi-2"))
        harness.dispatcher.pump()  # places T1
        # drops queued T2 AND in-flight T1 (which releases its node slot)
        assert harness.dispatcher.drop_instance("pi-1") == 2
        assert harness.dispatcher.queue_length() == 1
        assert harness.dispatcher.in_flight == {}
        assert model.node("a").assigned_count == 0

    def test_drop_instance_frees_slots_for_other_instances(self):
        """Regression: aborting an instance under load must release its
        in-flight node slots — previously they stayed assigned until a
        completion that may never be delivered, starving other work."""
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", instance="pi-1"))
        harness.dispatcher.enqueue(job("T2", instance="pi-2"))
        assert harness.dispatcher.pump() == 1  # pi-1 takes the only slot
        harness.dispatcher.drop_instance("pi-1")
        # the freed slot must be usable immediately, without any completion
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[1][0].instance_id == "pi-2"

    def test_drop_instance_tombstones_survive_requeue(self):
        """A key dropped while queued may be re-enqueued (new attempt);
        the stale deque entry must not shadow the live one."""
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", instance="pi-1", attempt=1))
        harness.dispatcher.drop_instance("pi-1")
        assert harness.dispatcher.queue_length() == 0
        harness.dispatcher.enqueue(job("T1", instance="pi-1", attempt=2))
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[0][0].attempt == 2

    def test_jobs_on_node(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        harness.dispatcher.pump()
        assert len(harness.dispatcher.jobs_on_node("a")) == 2

    def test_job_finished_unknown_returns_none(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        assert harness.dispatcher.job_finished("ghost") is None


class TestIncrementalPump:
    """The parked-tag fast path must wake on every capacity-gain event."""

    def test_blocked_tag_wakes_on_job_release(self):
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1
        assert harness.dispatcher.pump() == 0  # parked: no capacity change
        first = harness.submitted[0][0]
        harness.dispatcher.job_finished(first.job_id)
        assert harness.dispatcher.pump() == 1

    def test_blocked_tag_wakes_on_node_up(self):
        model = make_awareness(("a", 1, 1.0))
        model.node_down("a")
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.pump() == 0
        model.node_up("a")
        assert harness.dispatcher.pump() == 1

    def test_blocked_tag_wakes_on_upgrade(self):
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1
        model.reconfigure("a", cpus=2)
        assert harness.dispatcher.pump() == 1

    def test_blocked_tag_wakes_on_register(self):
        model = make_awareness(("a", 4, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        assert harness.dispatcher.pump() == 0
        model.register("g1", 2, 1.0, ("gpu",))
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[0][1] == "g1"

    def test_untagged_jobs_not_starved_by_blocked_tag(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1  # T2 places, gpu parks
        assert harness.submitted[0][0].task_path == "T2"

    def test_tagged_job_keeps_fifo_priority_over_untagged(self):
        """A gpu job enqueued first must win the gpu node's last slot over
        a later untagged job that could also run there."""
        model = make_awareness(("g", 1, 1.0, ("gpu",)))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[0][0].task_path == "T1"

    def test_undispatchable_jobs_retried_every_pump(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatchable = False
        harness.dispatcher.enqueue(job("T1"))
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.pump() == 0
        harness.dispatchable = True
        # no capacity event happened, but dispatchability is re-tested
        assert harness.dispatcher.pump() == 1


class TestBestNodeHeap:
    """The lazy-heap fast path must agree with the list-based policies."""

    def test_matches_capacity_aware_select(self):
        model = make_awareness(("slow", 4, 0.5), ("fast", 2, 2.0))
        assert model.best_node("", "capacity-rate") == \
            CapacityAwarePolicy().select(model.candidates())

    def test_matches_least_loaded_select(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0))
        model.load_report("a", 3.0)
        assert model.best_node("", "effective-free") == \
            LeastLoadedPolicy().select(model.candidates())

    def test_tie_broken_by_larger_name(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 1.0))
        assert model.best_node("", "capacity-rate") == "b"
        assert model.best_node("", "effective-free") == "b"

    def test_tracks_mutations(self):
        model = make_awareness(("a", 3, 1.0), ("b", 3, 1.0))
        model.assign("b", "j1")
        assert model.best_node("", "effective-free") == "a"
        model.release("b", "j1")
        model.assign("a", "j1")
        model.assign("a", "j2")
        assert model.best_node("", "effective-free") == "b"
        model.node_down("b")
        assert model.best_node("", "effective-free") == "a"

    def test_returns_none_when_no_capacity(self):
        model = make_awareness(("a", 1, 1.0))
        model.assign("a", "j1")
        assert model.best_node("", "capacity-rate") is None
        model.release("a", "j1")
        assert model.best_node("", "capacity-rate") == "a"

    def test_respects_placement_tag(self):
        model = make_awareness(("a", 8, 9.0), ("g", 1, 0.1, ("gpu",)))
        assert model.best_node("gpu", "capacity-rate") == "g"
        assert model.best_node("nosuch", "capacity-rate") is None

    def test_unknown_metric_raises(self):
        with pytest.raises(EngineError):
            make_awareness(("a", 1, 1.0)).best_node("", "oracle")

    def test_forgotten_node_never_selected(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 2.0))
        assert model.best_node("", "capacity-rate") == "b"
        model.forget("b")
        assert model.best_node("", "capacity-rate") == "a"
