"""Scheduling policies, awareness model, dispatcher bookkeeping."""

import pytest

from repro.core.engine.dispatcher import Dispatcher, JobRequest
from repro.core.engine.scheduler import (
    CapacityAwarePolicy,
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.core.monitor.awareness import AwarenessModel
from repro.errors import EngineError


def make_awareness(*specs):
    """specs: (name, cpus, speed[, tags])"""
    model = AwarenessModel()
    for spec in specs:
        name, cpus, speed = spec[0], spec[1], spec[2]
        tags = spec[3] if len(spec) > 3 else ()
        model.register(name, cpus, speed, tags)
    return model


class TestAwareness:
    def test_candidates_excludes_down_nodes(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 1.0))
        model.node_down("a")
        assert [v.name for v in model.candidates()] == ["b"]

    def test_candidates_excludes_full_nodes(self):
        model = make_awareness(("a", 1, 1.0), ("b", 2, 1.0))
        model.assign("a", "job1")
        assert [v.name for v in model.candidates()] == ["b"]

    def test_placement_tag_filter(self):
        model = make_awareness(("a", 2, 1.0), ("b", 2, 1.0, ("refine",)))
        assert [v.name for v in model.candidates("refine")] == ["b"]
        assert [v.name for v in model.candidates()] == ["a", "b"]

    def test_node_down_returns_orphans(self):
        model = make_awareness(("a", 2, 1.0))
        model.assign("a", "j1")
        model.assign("a", "j2")
        assert model.node_down("a") == ["j1", "j2"]
        assert model.node("a").assigned == set()

    def test_effective_free_accounts_for_load(self):
        model = make_awareness(("a", 4, 1.0))
        model.load_report("a", 2.5)
        model.assign("a", "j1")
        assert model.node("a").effective_free() == pytest.approx(0.5)

    def test_reconfigure(self):
        model = make_awareness(("a", 1, 1.0))
        model.reconfigure("a", cpus=2, speed=1.5)
        assert model.node("a").cpus == 2
        assert model.node("a").speed == 1.5

    def test_total_cpus(self):
        model = make_awareness(("a", 2, 1.0), ("b", 3, 1.0))
        model.node_down("b")
        assert model.total_cpus() == 2
        assert model.total_cpus(only_up=False) == 5

    def test_unknown_node_raises(self):
        with pytest.raises(EngineError):
            make_awareness().node("ghost")

    def test_release_unknown_node_is_noop(self):
        make_awareness().release("ghost", "j1")


class TestPolicies:
    def test_least_loaded_prefers_free_capacity(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0))
        model.assign("a", "j1")
        model.assign("a", "j2")
        policy = LeastLoadedPolicy()
        assert policy.select(model.candidates()) == "b"

    def test_least_loaded_uses_external_load(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0))
        model.load_report("a", 3.0)
        assert LeastLoadedPolicy().select(model.candidates()) == "b"

    def test_capacity_aware_prefers_fast_free_node(self):
        model = make_awareness(("slow", 4, 0.5), ("fast", 2, 2.0))
        assert CapacityAwarePolicy().select(model.candidates()) == "fast"

    def test_capacity_aware_avoids_loaded_fast_node(self):
        model = make_awareness(("slow", 4, 0.8), ("fast", 2, 2.0))
        model.load_report("fast", 2.0)  # fully busy with other users
        assert CapacityAwarePolicy().select(model.candidates()) == "slow"

    def test_round_robin_cycles(self):
        model = make_awareness(("a", 9, 1.0), ("b", 9, 1.0), ("c", 9, 1.0))
        policy = RoundRobinPolicy()
        picks = [policy.select(model.candidates()) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_policy_deterministic_per_seed(self):
        model = make_awareness(("a", 9, 1.0), ("b", 9, 1.0))
        picks1 = [RandomPolicy(1).select(model.candidates())
                  for _ in range(5)]
        picks2 = [RandomPolicy(1).select(model.candidates())
                  for _ in range(5)]
        # fresh policies with the same seed agree on the first pick
        assert picks1[0] == picks2[0]

    def test_all_policies_handle_empty_candidates(self):
        for policy in (RoundRobinPolicy(), LeastLoadedPolicy(),
                       CapacityAwarePolicy(), RandomPolicy(0)):
            assert policy.select([]) is None

    def test_factory(self):
        assert make_policy("round-robin").name == "round-robin"
        assert make_policy("least-loaded").name == "least-loaded"
        assert make_policy("capacity-aware").name == "capacity-aware"
        assert make_policy("random").name == "random"
        with pytest.raises(ValueError):
            make_policy("oracle")


class _DispatchHarness:
    """Minimal server-side wiring for dispatcher unit tests."""

    def __init__(self, awareness):
        self.dispatcher = Dispatcher(awareness)
        self.submitted = []
        self.vetoed = []
        self.dispatchable = True
        self.dispatcher.wire(
            submit=lambda job, node: self.submitted.append((job, node)),
            record_dispatch=self._record,
            is_dispatchable=lambda _iid: self.dispatchable,
        )

    def _record(self, job, node):
        if job.task_path in self.vetoed:
            return False
        return True


def job(path="T", attempt=1, placement="", instance="pi-1"):
    return JobRequest(
        instance_id=instance, task_path=path, program="p", inputs={},
        attempt=attempt, placement=placement,
    )


class TestDispatcher:
    def test_places_job_and_tracks_assignment(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 1
        assert harness.submitted[0][1] == "a"
        assert model.node("a").assigned_count == 1

    def test_duplicate_enqueue_rejected(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        assert harness.dispatcher.enqueue(job()) is True
        assert harness.dispatcher.enqueue(job()) is False

    def test_enqueue_rejected_while_in_flight(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.dispatcher.enqueue(job())
        harness.dispatcher.pump()
        assert harness.dispatcher.enqueue(job(attempt=2)) is False

    def test_requeue_allowed_after_finish(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        request = job()
        harness.dispatcher.enqueue(request)
        harness.dispatcher.pump()
        harness.dispatcher.job_finished(request.job_id)
        assert harness.dispatcher.enqueue(job(attempt=2)) is True

    def test_jobs_wait_when_no_capacity(self):
        model = make_awareness(("a", 1, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        assert harness.dispatcher.pump() == 1
        assert harness.dispatcher.queue_length() == 1
        # capacity frees up -> next pump places the waiter
        first = harness.submitted[0][0]
        harness.dispatcher.job_finished(first.job_id)
        assert harness.dispatcher.pump() == 1

    def test_placement_tag_respected(self):
        model = make_awareness(("a", 4, 1.0), ("b", 4, 1.0, ("gpu",)))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        harness.dispatcher.pump()
        assert harness.submitted[0][1] == "b"

    def test_unplaceable_tagged_job_waits(self):
        model = make_awareness(("a", 4, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1", placement="gpu"))
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.queue_length() == 1

    def test_suspended_instance_not_dispatched(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.dispatchable = False
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 0
        harness.dispatchable = True
        assert harness.dispatcher.pump() == 1

    def test_veto_drops_job(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        harness.vetoed.append("T")
        harness.dispatcher.enqueue(job())
        assert harness.dispatcher.pump() == 0
        assert harness.dispatcher.queue_length() == 0  # dropped, not waiting

    def test_drop_instance_clears_queue(self):
        harness = _DispatchHarness(make_awareness(("a", 1, 1.0)))
        harness.dispatcher.enqueue(job("T1", instance="pi-1"))
        harness.dispatcher.enqueue(job("T2", instance="pi-1"))
        harness.dispatcher.enqueue(job("T3", instance="pi-2"))
        harness.dispatcher.pump()  # places T1
        assert harness.dispatcher.drop_instance("pi-1") == 1
        assert harness.dispatcher.queue_length() == 1

    def test_jobs_on_node(self):
        model = make_awareness(("a", 2, 1.0))
        harness = _DispatchHarness(model)
        harness.dispatcher.enqueue(job("T1"))
        harness.dispatcher.enqueue(job("T2"))
        harness.dispatcher.pump()
        assert len(harness.dispatcher.jobs_on_node("a")) == 2

    def test_job_finished_unknown_returns_none(self):
        harness = _DispatchHarness(make_awareness(("a", 2, 1.0)))
        assert harness.dispatcher.job_finished("ghost") is None
