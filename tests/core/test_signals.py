"""OCR event handling: RAISE / AWAIT signals (paper, Section 3.1)."""

import pytest

from repro.core.engine import BioOperaServer, InlineEnvironment, ProgramResult
from repro.core.ocr import parse_ocr, print_ocr
from repro.errors import InvalidStateError, ModelError

from ..conftest import constant_program, make_inline_server, run_process


class TestModelAndOcr:
    def test_raise_await_round_trip(self):
        source = """
PROCESS P
  ACTIVITY A
    PROGRAM ns.a
    RAISE data_ready
  END
  ACTIVITY B
    PROGRAM ns.b
    AWAIT data_ready
    AWAIT green_light
  END
  CONNECT A -> B
END
"""
        template = parse_ocr(source)
        assert template.graph.tasks["A"].raises == ["data_ready"]
        assert template.graph.tasks["B"].awaits == ["data_ready",
                                                    "green_light"]
        text = print_ocr(template)
        assert "RAISE data_ready" in text
        assert "AWAIT green_light" in text
        assert parse_ocr(text).to_dict() == template.to_dict()

    def test_bad_signal_name_rejected(self):
        from repro.core.model import Activity

        with pytest.raises(ModelError):
            Activity("A", program="p", raises=["not a name"])


class TestRuntimeSignals:
    def test_sibling_raise_satisfies_await(self):
        order = []

        def tag(name):
            def fn(inputs, ctx):
                order.append(name)
                return ProgramResult({}, 0.1)
            return fn

        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY Producer
                PROGRAM t.p
                RAISE ready
              END
              ACTIVITY Free
                PROGRAM t.f
              END
              ACTIVITY Gated
                PROGRAM t.g
                AWAIT ready
              END
            END
            """,
            {"t.p": tag("producer"), "t.f": tag("free"),
             "t.g": tag("gated")},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        # Gated has no control dependency on Producer but still ran after it
        assert order.index("gated") > order.index("producer")
        assert "ready" in instance.signals

    def test_await_without_raise_blocks(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Gated
            PROGRAM t.ok
            AWAIT never_raised
          END
        END
        """)
        iid = server.launch("P")
        env.run_until_idle()
        instance = server.instance(iid)
        assert instance.status == "running"
        assert instance.find_state("Gated").status == "inactive"

    def test_external_signal_unblocks(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Gated
            PROGRAM t.ok
            AWAIT operator_go
          END
        END
        """)
        iid = server.launch("P")
        env.run_until_idle()
        server.raise_signal(iid, "operator_go")
        env.run_instance(iid)
        assert server.instance(iid).status == "completed"

    def test_signal_on_terminal_instance_rejected(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY A
            PROGRAM t.ok
          END
        END
        """)
        iid = server.launch("P")
        env.run_instance(iid)
        with pytest.raises(InvalidStateError):
            server.raise_signal(iid, "late")

    def test_broadcast_reaches_all_live_instances(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Gated
            PROGRAM t.ok
            AWAIT go
          END
        END
        """)
        first = server.launch("P")
        second = server.launch("P")
        env.run_until_idle()
        server.broadcast_signal("go")
        env.run_until_idle()
        assert server.instance(first).status == "completed"
        assert server.instance(second).status == "completed"

    def test_signals_survive_recovery(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Gated
            PROGRAM t.ok
            AWAIT go
          END
        END
        """)
        iid = server.launch("P")
        env.run_until_idle()
        server.raise_signal(iid, "go")
        server.crash()  # before the gated task could run to completion
        env2 = InlineEnvironment()
        recovered = BioOperaServer.recover(server.store, server.registry,
                                           environment=env2)
        assert "go" in recovered.instance(iid).signals
        env2.run_instance(iid)
        assert recovered.instance(iid).status == "completed"

    def test_parallel_bodies_can_await(self):
        server, env = make_inline_server({
            "t.body": lambda i, c: ProgramResult({"v": i["e"]}, 0.1),
        })
        server.define_template_ocr("""
        PROCESS P
          INPUT items
          OUTPUT results = Fan.results
          PARALLEL Fan
            FOREACH wb.items AS e
            ACTIVITY Body
              PROGRAM t.body
              AWAIT go
            END
          END
        END
        """)
        iid = server.launch("P", {"items": [1, 2]})
        env.run_until_idle()
        assert server.instance(iid).status == "running"
        server.raise_signal(iid, "go")
        env.run_instance(iid)
        assert [r["v"] for r in
                server.instance(iid).outputs["results"]] == [1, 2]

    def test_raise_emitted_once(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.ok
                RAISE done
              END
            END
            """,
            {"t.ok": constant_program({})},
        )
        events = [e for e in server.store.instances.events(iid)
                  if e["type"] == "signal_raised"]
        assert len(events) == 1
        assert events[0]["source"] == "A"
