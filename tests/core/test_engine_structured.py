"""Structured tasks: blocks, parallel fan-out, subprocesses, late binding."""


from repro.core.engine import ProgramResult

from ..conftest import constant_program, echo_program, make_inline_server, run_process


class TestParallel:
    SOURCE = """
    PROCESS P
      INPUT items
      OUTPUT total = Sum.total
      PARALLEL Fan
        FOREACH wb.items AS e
        JOIN and
        ACTIVITY Square
          PROGRAM t.sq
        END
      END
      ACTIVITY Sum
        PROGRAM t.sum
        IN results = Fan.results
      END
      CONNECT Fan -> Sum
    END
    """

    def programs(self):
        return {
            "t.sq": lambda i, c: ProgramResult({"v": i["e"] ** 2}, 1.0),
            "t.sum": lambda i, c: ProgramResult(
                {"total": sum(r["v"] for r in i["results"])}, 0.1),
        }

    def test_fan_out_and_gather(self):
        server, _env, iid = run_process(
            self.SOURCE, self.programs(), inputs={"items": [1, 2, 3, 4]})
        assert server.instance(iid).outputs == {"total": 30}

    def test_results_preserve_element_order(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT items
              OUTPUT results = Fan.results
              PARALLEL Fan
                FOREACH wb.items AS e
                ACTIVITY Id
                  PROGRAM t.echo
                END
              END
            END
            """,
            {"t.echo": echo_program()},
            inputs={"items": [5, 1, 9]},
        )
        results = server.instance(iid).outputs["results"]
        assert [r["e"] for r in results] == [5, 1, 9]

    def test_empty_list_completes_immediately(self):
        server, _env, iid = run_process(
            self.SOURCE, self.programs(), inputs={"items": []})
        assert server.instance(iid).outputs == {"total": 0}

    def test_degree_of_parallelism_from_input(self):
        """"The degree of parallelism can be determined at runtime" —
        body instances equal the list length."""
        server, _env, iid = run_process(
            self.SOURCE, self.programs(), inputs={"items": list(range(17))})
        instance = server.instance(iid)
        frame = instance.frames["Fan/"]
        assert len(frame.states) == 17

    def test_non_list_input_fails_task(self):
        server, _env, iid = run_process(
            self.SOURCE, self.programs(), inputs={"items": "not-a-list"})
        assert server.instance(iid).status == "aborted"

    def test_body_inputs_resolve_in_parent_scope(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT items
              INPUT scale DEFAULT 10
              OUTPUT results = Fan.results
              PARALLEL Fan
                FOREACH wb.items AS e
                ACTIVITY Mul
                  PROGRAM t.mul
                  IN k = wb.scale
                END
              END
            END
            """,
            {"t.mul": lambda i, c: ProgramResult({"v": i["e"] * i["k"]}, 0.1)},
            inputs={"items": [1, 2], "scale": 100},
        )
        results = server.instance(iid).outputs["results"]
        assert [r["v"] for r in results] == [100, 200]


class TestBlock:
    def test_block_internal_graph_runs_in_order(self):
        order = []

        def tracer(tag):
            def fn(inputs, ctx):
                order.append(tag)
                return ProgramResult({"tag": tag}, 0.1)
            return fn

        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY Before
                PROGRAM t.before
              END
              BLOCK Middle
                ACTIVITY In1
                  PROGRAM t.in1
                END
                ACTIVITY In2
                  PROGRAM t.in2
                  IN x = In1.tag
                END
                CONNECT In1 -> In2
              END
              ACTIVITY After
                PROGRAM t.after
              END
              CONNECT Before -> Middle
              CONNECT Middle -> After
            END
            """,
            {"t.before": tracer("before"), "t.in1": tracer("in1"),
             "t.in2": tracer("in2"), "t.after": tracer("after")},
        )
        assert order == ["before", "in1", "in2", "after"]
        assert server.instance(iid).status == "completed"

    def test_block_inner_mappings_hit_process_whiteboard(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT got = Reader.got
              BLOCK B
                ACTIVITY Writer
                  PROGRAM t.w
                  MAP v -> shared
                END
              END
              ACTIVITY Reader
                PROGRAM t.r
                IN got = wb.shared
              END
              CONNECT B -> Reader
            END
            """,
            {"t.w": constant_program({"v": "hello"}),
             "t.r": echo_program()},
        )
        assert server.instance(iid).outputs == {"got": "hello"}


class TestSubprocess:
    CHILD = """
    PROCESS child
      INPUT x
      OUTPUT doubled = D.v
      ACTIVITY D
        PROGRAM t.double
        IN x = wb.x
      END
    END
    """

    PARENT = """
    PROCESS parent
      INPUT start
      OUTPUT result = Sub.doubled
      SUBPROCESS Sub
        TEMPLATE child
        IN x = wb.start
      END
    END
    """

    def test_subprocess_runs_with_own_whiteboard(self):
        server, _env, iid = run_process(
            self.PARENT,
            {"t.double": lambda i, c: ProgramResult({"v": i["x"] * 2}, 0.5)},
            inputs={"start": 21},
            extra_templates=(self.CHILD,),
        )
        assert server.instance(iid).outputs == {"result": 42}

    def test_missing_subprocess_input_aborts(self):
        server, env = make_inline_server(
            {"t.double": lambda i, c: ProgramResult({"v": 1}, 0.1)})
        server.define_template_ocr(self.CHILD)
        server.define_template_ocr("""
        PROCESS parent
          SUBPROCESS Sub
            TEMPLATE child
          END
        END
        """)
        import pytest as _pytest
        from repro.errors import InvalidStateError
        with _pytest.raises(InvalidStateError):
            server.launch("parent", {})

    def test_late_binding_picks_latest_version(self):
        """Redefining the child template between launches changes behaviour
        of subsequent subprocess starts — the paper's dynamic modification."""
        programs = {
            "t.double": lambda i, c: ProgramResult({"v": i["x"] * 2}, 0.1),
            "t.triple": lambda i, c: ProgramResult({"v": i["x"] * 3}, 0.1),
        }
        server, env = make_inline_server(programs)
        server.define_template_ocr(self.CHILD)
        server.define_template_ocr(self.PARENT)
        first = server.launch("parent", {"start": 10})
        env.run_instance(first)
        assert server.instance(first).outputs == {"result": 20}
        # evolve the child algorithm
        server.define_template_ocr(self.CHILD.replace("t.double", "t.triple"))
        second = server.launch("parent", {"start": 10})
        env.run_instance(second)
        assert server.instance(second).outputs == {"result": 30}

    def test_pinned_version_ignores_updates(self):
        programs = {
            "t.double": lambda i, c: ProgramResult({"v": i["x"] * 2}, 0.1),
            "t.triple": lambda i, c: ProgramResult({"v": i["x"] * 3}, 0.1),
        }
        server, env = make_inline_server(programs)
        server.define_template_ocr(self.CHILD)
        server.define_template_ocr(
            self.PARENT.replace("TEMPLATE child", "TEMPLATE child VERSION 1"))
        server.define_template_ocr(self.CHILD.replace("t.double", "t.triple"))
        iid = server.launch("parent", {"start": 10})
        env.run_instance(iid)
        assert server.instance(iid).outputs == {"result": 20}

    def test_nested_parallel_subprocess(self):
        """The all-vs-all shape: parallel task whose body is a subprocess."""
        server, _env, iid = run_process(
            """
            PROCESS parent
              INPUT items
              OUTPUT results = Fan.results
              PARALLEL Fan
                FOREACH wb.items AS x
                SUBPROCESS Sub
                  TEMPLATE child
                END
              END
            END
            """,
            {"t.double": lambda i, c: ProgramResult({"v": i["x"] * 2}, 0.1)},
            inputs={"items": [1, 2, 3]},
            extra_templates=(self.CHILD,),
        )
        results = server.instance(iid).outputs["results"]
        assert [r["doubled"] for r in results] == [2, 4, 6]

    def test_three_level_nesting(self):
        grandchild = """
        PROCESS grandchild
          INPUT y
          OUTPUT out = G.v
          ACTIVITY G
            PROGRAM t.inc
            IN y = wb.y
          END
        END
        """
        child = """
        PROCESS mid
          INPUT x
          OUTPUT out = Inner.out
          SUBPROCESS Inner
            TEMPLATE grandchild
            IN y = wb.x
          END
        END
        """
        parent = """
        PROCESS top
          INPUT x
          OUTPUT out = Mid.out
          SUBPROCESS Mid
            TEMPLATE mid
            IN x = wb.x
          END
        END
        """
        server, _env, iid = run_process(
            parent,
            {"t.inc": lambda i, c: ProgramResult({"v": i["y"] + 1}, 0.1)},
            inputs={"x": 7},
            extra_templates=(grandchild, child),
        )
        assert server.instance(iid).outputs == {"out": 8}
