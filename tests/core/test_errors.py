"""The exception hierarchy contract: one base, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    ALL_ERRORS = [
        errors.ModelError, errors.ValidationError, errors.BindingError,
        errors.ConditionError, errors.OCRError, errors.OCRSyntaxError,
        errors.OCRCompileError, errors.EngineError,
        errors.UnknownInstanceError, errors.UnknownTemplateError,
        errors.InvalidStateError, errors.DispatchError,
        errors.ActivityFailure, errors.StoreError, errors.CodecError,
        errors.CorruptLogError, errors.ClusterError, errors.NodeDownError,
        errors.DiskFullError, errors.SimulationError, errors.BioError,
        errors.AlignmentError, errors.MatrixError, errors.PlanningError,
    ]

    def test_everything_derives_from_repro_error(self):
        for klass in self.ALL_ERRORS:
            assert issubclass(klass, errors.ReproError), klass

    def test_catching_the_base_catches_all(self):
        for klass in (errors.CodecError, errors.NodeDownError,
                      errors.OCRCompileError):
            with pytest.raises(errors.ReproError):
                raise klass("boom")


class TestValidationError:
    def test_lists_all_problems(self):
        error = errors.ValidationError(["first", "second"])
        assert error.problems == ["first", "second"]
        assert "first" in str(error) and "second" in str(error)


class TestOCRSyntaxError:
    def test_location_formatting(self):
        assert "line 3, column 7" in str(
            errors.OCRSyntaxError("bad token", line=3, column=7))
        assert "line 3" in str(errors.OCRSyntaxError("bad", line=3))
        assert "line" not in str(errors.OCRSyntaxError("bad"))


class TestActivityFailure:
    def test_reason_and_detail(self):
        failure = errors.ActivityFailure("disk-full", "no space on /data")
        assert failure.reason == "disk-full"
        assert "disk-full" in str(failure)
        assert "no space" in str(failure)

    def test_detail_optional(self):
        failure = errors.ActivityFailure("io-error")
        assert failure.detail == ""
        assert str(failure).endswith("(io-error)")
