"""Analytics over the persistent instance space."""

import pytest

from repro.bio import DarwinEngine, DatabaseProfile
from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer
from repro.core.monitor import queries
from repro.processes import install_all_vs_all


@pytest.fixture(scope="module")
def finished_run():
    profile = DatabaseProfile.synthetic("qtest", 100, seed=4)
    darwin = DarwinEngine(profile, mode="modeled", random_match_rate=1e-3,
                          seed=2)
    kernel = SimKernel(seed=8)
    cluster = SimulatedCluster(kernel, uniform(3, cpus=2),
                               execution_noise=0.1)
    server = BioOperaServer(seed=8)
    server.attach_environment(cluster)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {
        "db_name": profile.name, "granularity": 6,
    })
    kernel.schedule(20.0, cluster.crash_node, "node002")
    kernel.schedule(400.0, cluster.restore_node, "node002")
    kernel.schedule(30.0, server.suspend, instance_id, "test pause")
    kernel.schedule(600.0, lambda: cluster.server.resume(instance_id))
    cluster.run_until_instance_done(instance_id)
    return server, instance_id, kernel.now


class TestNodeUsage:
    def test_all_work_attributed_to_nodes(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = queries.node_usage(server.store, instance_id)
        assert usage
        total_cpu = sum(u.cpu_seconds for u in usage)
        assert total_cpu == pytest.approx(
            server.instance(instance_id).total_cpu_seconds())
        assert sum(u.activities for u in usage) == \
            server.instance(instance_id).activity_count()

    def test_sorted_by_cpu(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = queries.node_usage(server.store, instance_id)
        cpus = [u.cpu_seconds for u in usage]
        assert cpus == sorted(cpus, reverse=True)

    def test_crashed_node_has_failures(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = {u.node: u for u in queries.node_usage(server.store,
                                                       instance_id)}
        assert usage["node002"].failures >= 1

    def test_all_instances_aggregate(self, finished_run):
        server, instance_id, _wall = finished_run
        total = queries.node_usage(server.store)
        specific = queries.node_usage(server.store, instance_id)
        assert sum(u.cpu_seconds for u in total) >= \
            sum(u.cpu_seconds for u in specific)


class TestHistogramsAndCurves:
    def test_event_histogram(self, finished_run):
        server, instance_id, _wall = finished_run
        histogram = queries.event_histogram(server.store, instance_id)
        assert histogram["instance_created"] == 1
        assert histogram["instance_completed"] == 1
        assert histogram["task_completed"] >= 12
        assert histogram["instance_suspended"] == 1

    def test_completion_curve_monotone_buckets(self, finished_run):
        server, instance_id, wall = finished_run
        curve = queries.completions_over_time(server.store, instance_id,
                                              bucket=wall / 10)
        assert sum(count for _t, count in curve) == \
            server.instance(instance_id).activity_count()
        times = [t for t, _count in curve]
        assert times == sorted(times)

    def test_slowest_activities(self, finished_run):
        server, instance_id, _wall = finished_run
        ranked = queries.slowest_activities(server.store, instance_id,
                                            top=3)
        assert len(ranked) == 3
        costs = [cost for _path, cost in ranked]
        assert costs == sorted(costs, reverse=True)
        # the heaviest work is alignment, not merging
        assert "Alignment/" in ranked[0][0]

    def test_retry_hotspots_name_the_crashed_work(self, finished_run):
        server, instance_id, _wall = finished_run
        hotspots = queries.retry_hotspots(server.store, instance_id)
        assert hotspots
        reasons = {reason for _p, _c, rs in hotspots for reason in rs}
        assert "node-crash" in reasons


class TestWallBreakdown:
    def test_suspension_accounted(self, finished_run):
        server, instance_id, wall = finished_run
        breakdown = queries.wall_time_breakdown(server.store, instance_id)
        assert breakdown["suspended"] == pytest.approx(570.0, abs=30.0)
        assert breakdown["total"] == pytest.approx(
            breakdown["running"] + breakdown["suspended"])

    def test_empty_instance(self):
        from repro.store import OperaStore

        store = OperaStore()
        store.instances.create("empty", {})
        assert queries.wall_time_breakdown(store, "empty")["total"] == 0.0
