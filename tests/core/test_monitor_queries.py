"""Analytics over the persistent instance space."""

import pytest

from repro.bio import DarwinEngine, DatabaseProfile
from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer
from repro.core.monitor import queries
from repro.processes import install_all_vs_all


@pytest.fixture(scope="module")
def finished_run():
    profile = DatabaseProfile.synthetic("qtest", 100, seed=4)
    darwin = DarwinEngine(profile, mode="modeled", random_match_rate=1e-3,
                          seed=2)
    kernel = SimKernel(seed=8)
    cluster = SimulatedCluster(kernel, uniform(3, cpus=2),
                               execution_noise=0.1)
    server = BioOperaServer(seed=8)
    server.attach_environment(cluster)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {
        "db_name": profile.name, "granularity": 6,
    })
    kernel.schedule(20.0, cluster.crash_node, "node002")
    kernel.schedule(400.0, cluster.restore_node, "node002")
    kernel.schedule(30.0, server.suspend, instance_id, "test pause")
    kernel.schedule(600.0, lambda: cluster.server.resume(instance_id))
    cluster.run_until_instance_done(instance_id)
    return server, instance_id, kernel.now


class TestNodeUsage:
    def test_all_work_attributed_to_nodes(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = queries.node_usage(server.store, instance_id)
        assert usage
        total_cpu = sum(u.cpu_seconds for u in usage)
        assert total_cpu == pytest.approx(
            server.instance(instance_id).total_cpu_seconds())
        assert sum(u.activities for u in usage) == \
            server.instance(instance_id).activity_count()

    def test_sorted_by_cpu(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = queries.node_usage(server.store, instance_id)
        cpus = [u.cpu_seconds for u in usage]
        assert cpus == sorted(cpus, reverse=True)

    def test_crashed_node_has_failures(self, finished_run):
        server, instance_id, _wall = finished_run
        usage = {u.node: u for u in queries.node_usage(server.store,
                                                       instance_id)}
        assert usage["node002"].failures >= 1

    def test_all_instances_aggregate(self, finished_run):
        server, instance_id, _wall = finished_run
        total = queries.node_usage(server.store)
        specific = queries.node_usage(server.store, instance_id)
        assert sum(u.cpu_seconds for u in total) >= \
            sum(u.cpu_seconds for u in specific)


class TestHistogramsAndCurves:
    def test_event_histogram(self, finished_run):
        server, instance_id, _wall = finished_run
        histogram = queries.event_histogram(server.store, instance_id)
        assert histogram["instance_created"] == 1
        assert histogram["instance_completed"] == 1
        assert histogram["task_completed"] >= 12
        assert histogram["instance_suspended"] == 1

    def test_completion_curve_monotone_buckets(self, finished_run):
        server, instance_id, wall = finished_run
        curve = queries.completions_over_time(server.store, instance_id,
                                              bucket=wall / 10)
        assert sum(count for _t, count in curve) == \
            server.instance(instance_id).activity_count()
        times = [t for t, _count in curve]
        assert times == sorted(times)

    def test_slowest_activities(self, finished_run):
        server, instance_id, _wall = finished_run
        ranked = queries.slowest_activities(server.store, instance_id,
                                            top=3)
        assert len(ranked) == 3
        costs = [cost for _path, cost in ranked]
        assert costs == sorted(costs, reverse=True)
        # the heaviest work is alignment, not merging
        assert "Alignment/" in ranked[0][0]

    def test_retry_hotspots_name_the_crashed_work(self, finished_run):
        server, instance_id, _wall = finished_run
        hotspots = queries.retry_hotspots(server.store, instance_id)
        assert hotspots
        reasons = {reason for _p, _c, rs in hotspots for reason in rs}
        assert "node-crash" in reasons

    def test_retry_hotspots_classify_node_crashes_as_infrastructure(
            self, finished_run):
        server, instance_id, _wall = finished_run
        hotspots = queries.retry_hotspots(server.store, instance_id)
        # the crashed node002's re-dispatches must show up as
        # infrastructure failures, not program failures
        infra = sum(c["infrastructure_failures"] for _p, c, _r in hotspots)
        assert infra >= 1
        for _path, counts, reasons in hotspots:
            assert counts["dispatches"] >= 2
            assert set(counts) == {"dispatches", "program_failures",
                                   "infrastructure_failures"}


class TestWallBreakdown:
    def test_suspension_accounted(self, finished_run):
        server, instance_id, wall = finished_run
        breakdown = queries.wall_time_breakdown(server.store, instance_id)
        assert breakdown["suspended"] == pytest.approx(570.0, abs=30.0)
        assert breakdown["total"] == pytest.approx(
            breakdown["running"] + breakdown["suspended"])

    def test_empty_instance(self):
        from repro.store import OperaStore

        store = OperaStore()
        store.instances.create("empty", {})
        assert queries.wall_time_breakdown(store, "empty")["total"] == 0.0


def _synthetic_store(events):
    """A store holding one instance with a hand-built event log, with an
    observability hub attached so queries take the view-backed path (the
    ``*_rescan`` comparisons below are then real differentials)."""
    from repro.obs import ObservabilityHub
    from repro.store import OperaStore

    store = OperaStore()
    ObservabilityHub().attach(store)
    store.instances.create("syn", {})
    for event in events:
        store.instances.append_event("syn", event)
    return store


class TestQueryBugfixes:
    """Regression tests for the monitor-query bugs this layer flushed out."""

    def test_zero_cost_completions_stay_on_the_curve(self):
        # BUG: filtering on event.get("cost") truthiness dropped
        # legitimately zero-cost completed tasks from the progress curve.
        from repro.core.engine import events as ev

        store = _synthetic_store([
            ev.task_completed("P/A", {}, 0.0, "node001", 10.0),
            ev.task_completed("P/B", {}, 5.0, "node001", 20.0),
            ev.task_completed("P/#comp", {}, 0.0, "", 30.0),  # frame: not
        ])
        curve = queries.completions_over_time(store, "syn", bucket=100.0)
        assert sum(c for _t, c in curve) == 2  # both activities, no frame
        rescan = queries.completions_over_time_rescan(store, "syn", 100.0)
        assert rescan == curve

    def test_zero_cost_completions_rank_in_slowest(self):
        from repro.core.engine import events as ev

        store = _synthetic_store([
            ev.task_completed("P/A", {}, 0.0, "node001", 10.0),
            ev.task_completed("P/B", {}, 5.0, "node001", 20.0),
        ])
        ranked = queries.slowest_activities(store, "syn", top=10)
        assert ("P/A", 0.0) in ranked
        assert ranked[0] == ("P/B", 5.0)

    def test_unknown_instance_raises_store_error(self):
        # BUG: a typo'd instance id silently returned empty results (the
        # KV prefix scan just yields nothing).
        from repro.errors import StoreError
        from repro.store import OperaStore

        store = OperaStore()
        for query in (
            lambda: queries.node_usage(store, "nope"),
            lambda: queries.node_usage_rescan(store, "nope"),
            lambda: queries.event_histogram(store, "nope"),
            lambda: queries.completions_over_time(store, "nope", 10.0),
            lambda: queries.slowest_activities(store, "nope"),
            lambda: queries.retry_hotspots(store, "nope"),
            lambda: queries.wall_time_breakdown(store, "nope"),
            lambda: queries.wall_time_breakdown_rescan(store, "nope"),
        ):
            with pytest.raises(StoreError):
                query()

    def test_double_suspend_keeps_both_intervals(self):
        # BUG: a second instance_suspended before a resume overwrote
        # suspend_start, losing the earlier interval.
        from repro.core.engine import events as ev

        store = _synthetic_store([
            ev.instance_started(0.0),
            ev.instance_suspended("first", 10.0),
            ev.instance_suspended("second", 30.0),  # closes [10, 30] first
            ev.instance_resumed(40.0),
            ev.instance_completed({}, 100.0),
        ])
        breakdown = queries.wall_time_breakdown(store, "syn")
        assert breakdown["suspended"] == pytest.approx(30.0)  # 20 + 10
        assert breakdown["running"] == pytest.approx(70.0)
        assert breakdown == queries.wall_time_breakdown_rescan(store, "syn")

    def test_in_flight_dispatches_do_not_fabricate_node_rows(self):
        # BUG (flushed out by the view differential): the rescan created
        # a [0, 0.0, 0] row for *any* event carrying a node — including
        # task_dispatched — so mid-run queries listed phantom all-zero
        # nodes whose work had not produced an outcome yet.
        from repro.core.engine import events as ev

        store = _synthetic_store([
            ev.task_completed("P/A", {}, 2.0, "node001", 5.0),
            ev.task_dispatched("P/B", "node002", "w.u", 1, 6.0),  # in flight
        ])
        for usage in (queries.node_usage(store, "syn"),
                      queries.node_usage_rescan(store, "syn")):
            assert [u.node for u in usage] == ["node001"]

    def test_retry_hotspots_split_by_failure_class(self):
        # BUG: infrastructure re-dispatches (node-crash etc.) counted
        # identically to program-failure retries, making healthy tasks on
        # flaky nodes look like program hot spots.
        from repro.core.engine import events as ev

        store = _synthetic_store([
            # flaky-node task: two infra failures, three dispatches
            ev.task_dispatched("P/Flaky", "node001", "w.u", 1, 1.0),
            ev.task_failed("P/Flaky", "node-crash", "node001", 1, 2.0),
            ev.task_dispatched("P/Flaky", "node002", "w.u", 2, 3.0),
            ev.task_failed("P/Flaky", "network-outage", "node002", 2, 4.0),
            ev.task_dispatched("P/Flaky", "node003", "w.u", 3, 5.0),
            ev.task_completed("P/Flaky", {}, 1.0, "node003", 6.0),
            # buggy-program task: two program failures
            ev.task_dispatched("P/Buggy", "node001", "w.u", 1, 7.0),
            ev.task_failed("P/Buggy", "program-error", "node001", 1, 8.0),
            ev.task_dispatched("P/Buggy", "node001", "w.u", 2, 9.0),
            ev.task_failed("P/Buggy", "program-error", "node001", 2, 10.0),
        ])
        hotspots = queries.retry_hotspots(store, "syn", minimum=2)
        by_path = {path: counts for path, counts, _r in hotspots}
        assert by_path["P/Flaky"] == {
            "dispatches": 3, "program_failures": 0,
            "infrastructure_failures": 2,
        }
        assert by_path["P/Buggy"] == {
            "dispatches": 2, "program_failures": 2,
            "infrastructure_failures": 0,
        }
        # program failures rank ahead of infrastructure-driven retries
        assert hotspots[0][0] == "P/Buggy"
        assert hotspots == queries.retry_hotspots_rescan(store, "syn", 2)
