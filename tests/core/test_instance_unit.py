"""ProcessInstance: direct unit tests of the event-sourced state machine."""

import pytest

from repro.core.engine import events as ev
from repro.core.engine.instance import (
    COMPLETED,
    DISPATCHED,
    EXPANDED,
    FAILED,
    INACTIVE,
    ProcessInstance,
    SKIPPED,
)
from repro.core.model.data import UNDEFINED
from repro.core.ocr import parse_ocr
from repro.errors import EngineError, InvalidStateError

TEMPLATE = parse_ocr("""
PROCESS P
  INPUT x
  INPUT opt OPTIONAL
  INPUT dflt DEFAULT 5
  OUTPUT out = B.v
  ACTIVITY A
    PROGRAM ns.a
    MAP v -> shared
  END
  ACTIVITY B
    PROGRAM ns.b
    IN got = wb.shared
  END
  PARALLEL Fan
    FOREACH wb.shared AS e
    ACTIVITY Body
      PROGRAM ns.body
    END
  END
  CONNECT A -> B
  CONNECT B -> Fan
END
""")

CHILD = parse_ocr("""
PROCESS child
  INPUT seed
  OUTPUT r = C.r
  ACTIVITY C
    PROGRAM ns.c
  END
END
""")


def resolver(name, version):
    return {"P": TEMPLATE, "child": CHILD}[name]


def fresh(inputs=None):
    instance = ProcessInstance("pi-test", resolver)
    instance.apply(ev.instance_created("P", 1, inputs or {"x": 1}, 0.0))
    instance.apply(ev.instance_started(0.0))
    return instance


class TestCreation:
    def test_whiteboard_initialized_from_inputs_and_defaults(self):
        instance = fresh({"x": 9})
        board = instance.whiteboards[""]
        assert board.get("x") == 9
        assert board.get("dflt") == 5
        assert board.get("opt") is UNDEFINED

    def test_missing_required_input_rejected(self):
        instance = ProcessInstance("pi-test", resolver)
        with pytest.raises(InvalidStateError):
            instance.apply(ev.instance_created("P", 1, {}, 0.0))

    def test_root_frame_has_all_tasks_inactive(self):
        instance = fresh()
        frame = instance.frames[""]
        assert set(frame.states) == {"A", "B", "Fan"}
        assert all(s.status == INACTIVE for s in frame.states.values())


class TestTaskEvents:
    def test_dispatch_then_complete(self):
        instance = fresh()
        instance.apply(ev.task_dispatched("A", "n1", "ns.a", 1, 1.0))
        state = instance.find_state("A")
        assert state.status == DISPATCHED
        assert state.node == "n1"
        instance.apply(ev.task_completed("A", {"v": [1, 2]}, 3.0, "n1", 4.0))
        assert state.status == COMPLETED
        assert state.cost == 3.0
        # output mapping wrote the whiteboard
        assert instance.whiteboards[""].get("shared") == [1, 2]

    def test_failure_counts_program_failures_only(self):
        instance = fresh()
        instance.apply(ev.task_dispatched("A", "n1", "ns.a", 1, 1.0))
        instance.apply(ev.task_failed("A", "node-crash", "n1", 1, 2.0))
        state = instance.find_state("A")
        assert state.status == FAILED
        assert state.program_failures == 0      # infrastructure
        instance.apply(ev.task_dispatched("A", "n1", "ns.a", 2, 3.0))
        instance.apply(ev.task_failed("A", "program-error", "n1", 2, 4.0))
        assert state.program_failures == 1

    def test_skip(self):
        instance = fresh()
        instance.apply(ev.task_skipped("B", 1.0))
        assert instance.find_state("B").status == SKIPPED

    def test_unknown_path_raises(self):
        instance = fresh()
        with pytest.raises(EngineError):
            instance.apply(ev.task_completed("Nope", {}, 0.0, "", 1.0))

    def test_unknown_event_type_raises(self):
        instance = fresh()
        with pytest.raises(EngineError):
            instance.apply({"type": "quantum_entangled", "time": 0.0})


class TestExpansion:
    def expand_fan(self, instance, elements):
        instance.apply(ev.task_completed("A", {"v": elements}, 1.0, "n", 1.0))
        instance.apply(ev.task_completed("B", {"v": "done"}, 1.0, "n", 2.0))
        instance.apply(ev.parallel_expanded("Fan", elements, 3.0))

    def test_parallel_creates_body_states(self):
        instance = fresh()
        self.expand_fan(instance, [10, 20, 30])
        frame = instance.frames["Fan/"]
        assert set(frame.states) == {"Body[0]", "Body[1]", "Body[2]"}
        assert frame.states["Body[1]"].element == 20
        assert instance.find_state("Fan").status == EXPANDED

    def test_body_paths_resolve(self):
        instance = fresh()
        self.expand_fan(instance, [1])
        state = instance.find_state("Fan/Body[0]")
        assert state is not None
        assert instance.frame_of("Fan/Body[0]").kind == "parallel"

    def test_subprocess_frame_owns_whiteboard(self):
        instance = ProcessInstance("pi-sub", lambda n, v: CHILD)
        instance.apply(ev.instance_created("child", 1, {"seed": 1}, 0.0))
        instance.apply(ev.instance_started(0.0))
        # create a nested subprocess manually through an event on a fake
        # parent: here we just verify whiteboard separation via a new frame
        assert instance.whiteboards[""].get("seed") == 1

    def test_frame_complete(self):
        instance = fresh()
        self.expand_fan(instance, [1, 2])
        frame = instance.frames["Fan/"]
        assert not frame.complete()
        instance.apply(ev.task_completed("Fan/Body[0]", {}, 1.0, "n", 4.0))
        instance.apply(ev.task_completed("Fan/Body[1]", {}, 1.0, "n", 5.0))
        assert frame.complete()


class TestReset:
    def test_reset_clears_task_and_frames(self):
        instance = fresh()
        instance.apply(ev.task_completed("A", {"v": [1]}, 1.0, "n", 1.0))
        instance.apply(ev.task_completed("B", {"v": 2}, 1.0, "n", 2.0))
        instance.apply(ev.parallel_expanded("Fan", [1], 3.0))
        instance.apply(ev.task_reset("Fan", 4.0))
        assert instance.find_state("Fan").status == INACTIVE
        assert "Fan/" not in instance.frames

    def test_reset_preserves_budgets_and_cost(self):
        instance = fresh()
        instance.apply(ev.task_dispatched("A", "n", "ns.a", 1, 1.0))
        instance.apply(ev.task_failed("A", "program-error", "n", 1, 2.0))
        instance.apply(ev.task_dispatched("A", "n", "ns.a", 2, 3.0))
        instance.apply(ev.task_completed("A", {"v": []}, 7.0, "n", 4.0))
        instance.apply(ev.task_reset("A", 5.0))
        state = instance.find_state("A")
        assert state.status == INACTIVE
        assert state.cost == 7.0
        assert state.program_failures == 1
        assert state.attempts == 2

    def test_reset_reopens_terminal_instance(self):
        instance = fresh()
        instance.apply(ev.instance_completed({"out": 1}, 9.0))
        assert instance.terminal
        instance.apply(ev.task_reset("B", 10.0))
        assert instance.status == "running"
        assert instance.outputs == {}


class TestWhiteboardEvents:
    def test_whiteboard_set(self):
        instance = fresh()
        instance.apply(ev.whiteboard_set("", "tweak", 3.14, 1.0))
        assert instance.whiteboards[""].get("tweak") == 3.14

    def test_whiteboard_set_unknown_scope_raises(self):
        instance = fresh()
        with pytest.raises(EngineError):
            instance.apply(ev.whiteboard_set("ghost/", "x", 1, 1.0))


class TestQueries:
    def test_progress_histogram(self):
        instance = fresh()
        instance.apply(ev.task_completed("A", {"v": [1]}, 1.0, "n", 1.0))
        instance.apply(ev.task_skipped("B", 2.0))
        histogram = instance.progress()
        assert histogram == {"completed": 1, "skipped": 1, "inactive": 1}

    def test_total_cpu_sums_all_attempts(self):
        instance = fresh()
        instance.apply(ev.task_completed("A", {"v": [1]}, 2.5, "n", 1.0))
        instance.apply(ev.task_completed("B", {"v": 1}, 1.5, "n", 2.0))
        assert instance.total_cpu_seconds() == pytest.approx(4.0)

    def test_dispatched_states(self):
        instance = fresh()
        instance.apply(ev.task_dispatched("A", "n", "ns.a", 1, 1.0))
        assert [s.path for s in instance.dispatched_states()] == ["A"]

    def test_resolve_inputs_skips_undefined(self):
        instance = fresh()
        frame = instance.frames[""]
        task = frame.graph.tasks["B"]
        inputs = instance.resolve_inputs(frame, task, frame.states["B"])
        assert inputs == {}  # wb.shared not yet written
        instance.apply(ev.task_completed("A", {"v": "X"}, 1.0, "n", 1.0))
        inputs = instance.resolve_inputs(frame, task, frame.states["B"])
        assert inputs == {"got": "X"}
