"""OCR language: lexer, parser, printer, round-trip property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import Activity, Binding, ParallelTask, ProcessTemplate
from repro.core.model.data import ProcessParameter
from repro.core.model.failure import FailureHandler
from repro.core.model.process import TaskGraph
from repro.core.model.tasks import Block, SubprocessTask
from repro.core.ocr import parse_ocr, parse_ocr_unchecked, print_ocr, tokenize
from repro.errors import OCRSyntaxError


class TestLexer:
    def test_keywords_and_idents(self):
        kinds = [(t.kind, t.value) for t in tokenize("PROCESS Foo END")]
        assert kinds == [("kw", "PROCESS"), ("ident", "Foo"),
                         ("kw", "END"), ("eof", "")]

    def test_keywords_uppercase_only(self):
        # lowercase/mixed-case words stay identifiers, so tasks may be
        # named Join, End, Process, ...
        assert tokenize("process")[0].kind == "ident"
        assert tokenize("Join")[0].kind == "ident"
        assert tokenize("JOIN")[0].kind == "kw"

    def test_dotted_names(self):
        token = tokenize("darwin.align_fixed_pam")[0]
        assert token.kind == "dotted"
        assert token.value == "darwin.align_fixed_pam"

    def test_comments_ignored(self):
        tokens = tokenize("PROCESS # the whole rest is comment\nEND")
        assert [t.kind for t in tokens] == ["kw", "kw", "eof"]

    def test_condition_token_raw(self):
        tokens = tokenize("WHEN [NOT DEFINED(wb.q)]")
        assert tokens[1].kind == "condition"
        assert tokens[1].value == "NOT DEFINED(wb.q)"

    def test_string_escapes(self):
        token = tokenize('"a\\"b\\n"')[0]
        assert token.value == 'a"b\n'

    def test_numbers(self):
        tokens = tokenize("42 -7 3.5")
        assert [t.value for t in tokens[:3]] == ["42", "-7", "3.5"]

    def test_line_numbers_reported(self):
        with pytest.raises(OCRSyntaxError) as excinfo:
            tokenize("PROCESS\n  @bad")
        assert excinfo.value.line == 2

    def test_unterminated_string(self):
        with pytest.raises(OCRSyntaxError):
            tokenize('"never closed')

    def test_unterminated_condition(self):
        with pytest.raises(OCRSyntaxError):
            tokenize("WHEN [no closing bracket")


class TestParserErrors:
    @pytest.mark.parametrize("source,fragment", [
        ("ACTIVITY A END", "PROCESS"),
        ("PROCESS P ACTIVITY A END END", "PROGRAM"),
        ("PROCESS P ACTIVITY A PROGRAM p END END extra", "trailing"),
        ("PROCESS P PARALLEL F FOREACH wb.x AS e END END", "no body task"),
        ("PROCESS P SUBPROCESS S IN x = wb.y END END", "TEMPLATE"),
        ("PROCESS P CONNECT A -> B WHEN TRUE END", "bracketed"),
    ])
    def test_syntax_errors(self, source, fragment):
        with pytest.raises(OCRSyntaxError) as excinfo:
            parse_ocr_unchecked(source)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_validation_runs_on_parse(self):
        source = """
        PROCESS P
          ACTIVITY A
            PROGRAM p
            IN x = Ghost.field
          END
        END
        """
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            parse_ocr(source)

    def test_parallel_two_bodies_rejected(self):
        source = """
        PROCESS P
          INPUT xs
          PARALLEL F
            FOREACH wb.xs AS e
            ACTIVITY A
              PROGRAM p
            END
            ACTIVITY B
              PROGRAM p
            END
          END
        END
        """
        with pytest.raises(OCRSyntaxError):
            parse_ocr_unchecked(source)


class TestParsedStructure:
    SOURCE = """
    PROCESS Demo
      DESCRIPTION "demo process"
      INPUT required
      INPUT opt OPTIONAL
      INPUT with_default DEFAULT 7
      OUTPUT result = Last.value

      ACTIVITY First
        PROGRAM ns.first
        PARAM threshold = 2.5
        IN q = wb.required
        MAP out -> produced
        ON_FAILURE RETRY 2 THEN ALTERNATIVE ns.alt
      END
      BLOCK Inner
        JOIN and
        ACTIVITY Deep
          PROGRAM ns.deep
        END
      END
      PARALLEL Fan
        FOREACH wb.produced AS element
        SUBPROCESS Sub
          TEMPLATE subproc
          IN seed = wb.required
        END
      END
      ACTIVITY Last
        PROGRAM ns.last
        IN items = Fan.results
      END
      CONNECT First -> Inner WHEN [DEFINED(wb.opt)]
      CONNECT First -> Fan
      CONNECT Inner -> Last
      CONNECT Fan -> Last
      SPHERE Core
        TASKS First Fan
        COMPENSATE First WITH ns.undo
        ON_ABORT continue
      END
    END
    """

    @pytest.fixture()
    def template(self):
        return parse_ocr_unchecked(self.SOURCE)

    def test_header(self, template):
        assert template.name == "Demo"
        assert template.description == "demo process"
        params = {p.name: p for p in template.parameters}
        assert not params["required"].optional
        assert params["opt"].optional
        assert params["with_default"].default == 7
        assert template.outputs["result"] == Binding.task_output(
            "Last", "value")

    def test_activity(self, template):
        first = template.graph.tasks["First"]
        assert isinstance(first, Activity)
        assert first.program == "ns.first"
        assert first.parameters == {"threshold": 2.5}
        assert first.inputs["q"] == Binding.whiteboard("required")
        assert first.output_mappings == [("out", "produced")]
        assert first.failure.max_retries == 2
        assert first.failure.alternative_program == "ns.alt"

    def test_block(self, template):
        inner = template.graph.tasks["Inner"]
        assert isinstance(inner, Block)
        assert inner.join == "and"
        assert "Deep" in inner.graph.tasks

    def test_parallel_with_subprocess_body(self, template):
        fan = template.graph.tasks["Fan"]
        assert isinstance(fan, ParallelTask)
        assert fan.element_param == "element"
        assert isinstance(fan.body, SubprocessTask)
        assert fan.body.template_name == "subproc"

    def test_connectors(self, template):
        conditions = {
            (c.source, c.target): c.condition.to_text()
            for c in template.graph.connectors
        }
        assert conditions[("First", "Inner")] == "DEFINED(wb.opt)"
        assert conditions[("First", "Fan")] == "TRUE"

    def test_sphere(self, template):
        sphere = template.spheres[0]
        assert sphere.tasks == ("First", "Fan")
        assert sphere.on_abort == "continue"
        assert sphere.compensation_program("First") == "ns.undo"


class TestRoundTrip:
    def test_canonical_form_stable(self):
        template = parse_ocr_unchecked(TestParsedStructure.SOURCE)
        text = print_ocr(template)
        assert print_ocr(parse_ocr_unchecked(text)) == text

    def test_library_templates_round_trip(self):
        from repro.processes import (
            ALIGN_CHUNK_OCR,
            ALL_VS_ALL_OCR,
            TOWER_OCR,
        )
        for source in (ALIGN_CHUNK_OCR, ALL_VS_ALL_OCR, TOWER_OCR):
            template = parse_ocr(source)
            text = print_ocr(template)
            reparsed = parse_ocr(text)
            assert reparsed.to_dict() == template.to_dict()

    # -- random-template property ------------------------------------------------

    names = st.sampled_from(["Alpha", "Beta", "Gamma", "Delta", "Eps"])

    @st.composite
    def random_template(draw):
        task_count = draw(st.integers(min_value=1, max_value=4))
        graph = TaskGraph()
        task_names = []
        for index in range(task_count):
            name = f"T{index}"
            task_names.append(name)
            kind = draw(st.sampled_from(["activity", "parallel", "sub"]))
            failure = draw(st.sampled_from([
                None,
                FailureHandler(strategy="ignore"),
                FailureHandler(max_retries=draw(
                    st.integers(min_value=1, max_value=5))),
            ]))
            inputs = {}
            if draw(st.booleans()):
                inputs["x"] = Binding.whiteboard("seed")
            raises = draw(st.sampled_from([[], ["done"], ["done", "extra"]]))
            awaits = draw(st.sampled_from([[], ["go"]]))
            if kind == "activity":
                graph.add_task(Activity(
                    name, program="ns.prog", inputs=inputs, failure=failure,
                    parameters={"k": draw(st.integers(0, 9))},
                    output_mappings=[("o", "seed")] if draw(st.booleans())
                    else [],
                    raises=raises, awaits=awaits,
                ))
            elif kind == "parallel":
                graph.add_task(ParallelTask(
                    name, list_input=Binding.whiteboard("seed"),
                    body=Activity("Body", program="ns.body"),
                    inputs=inputs, failure=failure,
                ))
            else:
                graph.add_task(SubprocessTask(
                    name, template_name="ns.sub", inputs=inputs,
                    failure=failure,
                ))
        # random forward edges (guaranteed acyclic)
        for i in range(task_count):
            for j in range(i + 1, task_count):
                if draw(st.booleans()):
                    condition = draw(st.sampled_from(
                        [None, "DEFINED(wb.seed)", "wb.seed > 3"]))
                    graph.connect(task_names[i], task_names[j], condition)
        return ProcessTemplate(
            "Random", graph=graph,
            parameters=[ProcessParameter("seed", optional=True, default=1)],
        )

    @settings(max_examples=50, deadline=None)
    @given(random_template())
    def test_print_parse_identity(self, template):
        text = print_ocr(template)
        reparsed = parse_ocr_unchecked(text)
        assert reparsed.to_dict() == template.to_dict()
        assert print_ocr(reparsed) == text
