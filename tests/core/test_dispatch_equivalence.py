"""Placement equivalence: indexed dispatcher vs the seed linear-scan one.

The indexed dispatch path (per-tag queues, parked-tag incremental pump,
lazy-heap policy fast path) is a pure performance rebuild: it must make
*identical placement decisions* to the seed implementation for every
policy. This module keeps a faithful copy of the seed dispatcher and
replays randomized operation scripts — enqueues (tagged and untagged),
pumps, completions, node failures/recoveries, load reports, upgrades,
aborts, suspended instances, vetoes — through both, asserting that every
observable (submission order, chosen nodes, rejections, queue lengths,
in-flight sets) matches exactly.
"""

import random

import pytest

from repro.core.engine.dispatcher import Dispatcher, JobRequest
from repro.core.engine.scheduler import make_policy
from repro.core.monitor.awareness import AwarenessModel


class SeedDispatcher:
    """The seed implementation, verbatim: linear scans everywhere."""

    def __init__(self, awareness, policy):
        self.awareness = awareness
        self.policy = policy
        self._queue = []
        self._queued_keys = set()
        self.in_flight = {}
        self._submit = None
        self._record_dispatch = None
        self._is_dispatchable = None

    def wire(self, submit, record_dispatch, is_dispatchable):
        self._submit = submit
        self._record_dispatch = record_dispatch
        self._is_dispatchable = is_dispatchable

    def _candidates(self, placement):
        # the seed AwarenessModel.candidates: full scan over sorted nodes
        result = []
        for view in self.awareness.nodes():
            if not view.up or view.free_slots() < 1:
                continue
            if placement and placement not in view.tags:
                continue
            result.append(view)
        return result

    def enqueue(self, job):
        if job.key in self._queued_keys:
            return False
        for pending, _node in self.in_flight.values():
            if pending.key == job.key:
                return False
        self._queue.append(job)
        self._queued_keys.add(job.key)
        return True

    def is_pending(self, instance_id, task_path):
        key = f"{instance_id}:{task_path}"
        if key in self._queued_keys:
            return True
        return any(j.key == key for j, _ in self.in_flight.values())

    def drop_instance(self, instance_id):
        # seed behaviour plus the in-flight fix, so both dispatchers
        # release aborted instances' slots the same way
        before = len(self._queue)
        self._queue = [j for j in self._queue if j.instance_id != instance_id]
        self._queued_keys = {j.key for j in self._queue}
        removed = before - len(self._queue)
        for job_id in sorted(
            job_id for job_id, (j, _n) in self.in_flight.items()
            if j.instance_id == instance_id
        ):
            if self.job_finished(job_id) is not None:
                removed += 1
        return removed

    def queue_length(self):
        return len(self._queue)

    def pump(self):
        placed = 0
        remaining = []
        for job in self._queue:
            if not self._is_dispatchable(job.instance_id):
                remaining.append(job)
                continue
            candidates = self._candidates(job.placement)
            node = self.policy.select(candidates)
            if node is None:
                remaining.append(job)
                continue
            if not self._record_dispatch(job, node):
                self._queued_keys.discard(job.key)
                continue
            self.awareness.assign(node, job.job_id)
            self.in_flight[job.job_id] = (job, node)
            self._queued_keys.discard(job.key)
            self._submit(job, node)
            placed += 1
        self._queue = remaining
        return placed

    def job_finished(self, job_id):
        entry = self.in_flight.pop(job_id, None)
        if entry is not None:
            _job, node = entry
            self.awareness.release(node, job_id)
        return entry

    def jobs_on_node(self, node):
        return sorted(
            job_id for job_id, (_j, n) in self.in_flight.items() if n == node
        )


class _Side:
    """One dispatcher (seed or indexed) plus its private cluster view."""

    def __init__(self, policy_name, policy_seed, specs, kind):
        self.awareness = AwarenessModel()
        for name, cpus, speed, tags in specs:
            self.awareness.register(name, cpus, speed, tags)
        policy = make_policy(policy_name, seed=policy_seed)
        if kind == "seed":
            self.dispatcher = SeedDispatcher(self.awareness, policy)
        else:
            self.dispatcher = Dispatcher(self.awareness, policy)
        self.suspended = set()
        self.vetoed = set()
        self.log = []
        self.dispatcher.wire(
            submit=lambda job, node: self.log.append(
                ("submit", job.job_id, node)
            ),
            record_dispatch=lambda job, node: job.task_path
            not in self.vetoed,
            is_dispatchable=lambda iid: iid not in self.suspended,
        )

    def apply(self, op):
        kind = op[0]
        if kind == "enqueue":
            _, instance, task, attempt, placement = op
            accepted = self.dispatcher.enqueue(JobRequest(
                instance_id=instance, task_path=task, program="p",
                inputs={}, attempt=attempt, placement=placement,
            ))
            self.log.append(("enqueue", instance, task, accepted))
        elif kind == "pump":
            self.log.append(("pump", self.dispatcher.pump()))
        elif kind == "finish":
            live = sorted(self.dispatcher.in_flight)
            if live:
                job_id = live[op[1] % len(live)]
                self.dispatcher.job_finished(job_id)
                self.log.append(("finish", job_id))
        elif kind == "node_down":
            if self.awareness.node(op[1]).up:
                for orphan in self.awareness.node_down(op[1]):
                    self.dispatcher.job_finished(orphan)
                self.log.append(("down", op[1]))
        elif kind == "node_up":
            self.awareness.node_up(op[1])
        elif kind == "load":
            self.awareness.load_report(op[1], op[2])
        elif kind == "reconfigure":
            self.awareness.reconfigure(op[1], cpus=op[2])
        elif kind == "suspend":
            self.suspended.add(op[1])
        elif kind == "resume":
            self.suspended.discard(op[1])
        elif kind == "veto":
            self.vetoed.add(op[1])
        elif kind == "abort":
            self.log.append(
                ("abort", op[1], self.dispatcher.drop_instance(op[1]))
            )

    def snapshot(self):
        return {
            "queue_length": self.dispatcher.queue_length(),
            "in_flight": {
                job_id: node
                for job_id, (_j, node) in self.dispatcher.in_flight.items()
            },
        }


def _script(seed, n_ops=400):
    """Generate one randomized operation script."""
    rng = random.Random(f"dispatch-equivalence/{seed}")
    specs = []
    for i in range(12):
        tags = ()
        if i % 4 == 0:
            tags = ("gpu",)
        elif i % 5 == 0:
            tags = ("refine", "gpu")
        specs.append((f"n{i:02d}", rng.randint(1, 4),
                      rng.choice([0.5, 1.0, 2.0]), tags))
    instances = [f"pi-{k}" for k in range(6)]
    tasks = [f"T{k}" for k in range(8)]
    attempts = {}
    ops = []
    for _ in range(n_ops):
        roll = rng.random()
        if roll < 0.40:
            instance = rng.choice(instances)
            task = rng.choice(tasks)
            key = (instance, task)
            attempts[key] = attempts.get(key, 0) + 1
            placement = rng.choice(["", "", "", "gpu", "refine"])
            ops.append(("enqueue", instance, task, attempts[key], placement))
        elif roll < 0.60:
            ops.append(("pump",))
        elif roll < 0.75:
            ops.append(("finish", rng.randrange(1000)))
        elif roll < 0.80:
            ops.append(("node_down", f"n{rng.randrange(12):02d}"))
        elif roll < 0.85:
            ops.append(("node_up", f"n{rng.randrange(12):02d}"))
        elif roll < 0.90:
            ops.append(("load", f"n{rng.randrange(12):02d}",
                        round(rng.uniform(0.0, 4.0), 2)))
        elif roll < 0.93:
            ops.append(("reconfigure", f"n{rng.randrange(12):02d}",
                        rng.randint(1, 6)))
        elif roll < 0.96:
            ops.append(rng.choice([("suspend",), ("resume",)])
                       + (rng.choice(instances),))
        elif roll < 0.98:
            ops.append(("veto", rng.choice(tasks)))
        else:
            ops.append(("abort", rng.choice(instances)))
    ops.append(("pump",))
    return specs, ops


POLICIES = ["capacity-aware", "least-loaded", "round-robin", "random"]


@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("script_seed", [0, 1, 2])
def test_indexed_dispatcher_matches_seed(policy_name, script_seed):
    specs, ops = _script(script_seed)
    seed_side = _Side(policy_name, 7, specs, "seed")
    new_side = _Side(policy_name, 7, specs, "indexed")
    for op in ops:
        seed_side.apply(op)
        new_side.apply(op)
    assert new_side.log == seed_side.log
    assert new_side.snapshot() == seed_side.snapshot()


@pytest.mark.parametrize("policy_name", POLICIES)
def test_heavy_queue_with_scarce_capacity(policy_name):
    """Deep queue, one slot: placements must trickle out identically."""
    specs = [("a", 1, 1.0, ()), ("b", 1, 2.0, ("gpu",))]
    seed_side = _Side(policy_name, 3, specs, "seed")
    new_side = _Side(policy_name, 3, specs, "indexed")
    ops = []
    for k in range(40):
        ops.append(("enqueue", f"pi-{k % 5}", f"T{k}", 1,
                    "gpu" if k % 3 == 0 else ""))
    for _ in range(60):
        ops.append(("pump",))
        ops.append(("finish", 0))
    ops.append(("pump",))
    for op in ops:
        seed_side.apply(op)
        new_side.apply(op)
    assert new_side.log == seed_side.log
    assert new_side.snapshot() == seed_side.snapshot()
