"""DOT export and the repro.tools command line."""

import pytest

from repro.core.model.dot import instance_to_dot, template_to_dot
from repro.processes import build_all_vs_all_template
from repro.tools import main as tools_main

from ..conftest import constant_program, run_process


class TestDot:
    def test_template_dot_structure(self):
        template = build_all_vs_all_template()
        dot = template_to_dot(template)
        assert dot.startswith('digraph "all_vs_all"')
        assert dot.rstrip().endswith("}")
        # every top-level task appears
        for name in template.graph.tasks:
            assert f'"{name}"' in dot
        # conditional edges carry their condition text
        assert "NOT DEFINED(wb.queue_file)" in dot
        # the parallel body is rendered
        assert "Alignment/Chunk" in dot
        # data flow appears dashed
        assert "style=dashed" in dot

    def test_instance_dot_reflects_status(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT flag OPTIONAL
              ACTIVITY A
                PROGRAM t.ok
              END
              ACTIVITY B
                PROGRAM t.ok
              END
              CONNECT A -> B WHEN [DEFINED(wb.flag)]
            END
            """,
            {"t.ok": constant_program({})},
        )
        dot = instance_to_dot(server.instance(iid))
        assert "palegreen" in dot   # completed A
        assert "lightgray" in dot   # skipped B
        assert "completed" in dot   # instance status in label

    def test_quotes_escaped(self):
        from repro.core.model import Activity, ProcessTemplate, TaskGraph

        template = ProcessTemplate(
            "Q",
            graph=TaskGraph(tasks=[
                Activity("A", program="p", description='say "hi"'),
            ]),
        )
        dot = template_to_dot(template)
        assert 'digraph "Q"' in dot


class TestToolsCli:
    @pytest.fixture()
    def ocr_file(self, tmp_path):
        path = tmp_path / "proc.ocr"
        path.write_text("""
PROCESS Demo
  INPUT x
  OUTPUT y = A.out
  ACTIVITY A
    PROGRAM ns.run
    IN x = wb.x
  END
END
""")
        return str(path)

    def test_check_valid(self, ocr_file, capsys):
        assert tools_main(["check", ocr_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "Demo" in out

    def test_check_syntax_error(self, tmp_path, capsys):
        path = tmp_path / "bad.ocr"
        path.write_text("PROCESS Broken ACTIVITY END")
        assert tools_main(["check", str(path)]) == 1
        assert "syntax error" in capsys.readouterr().err

    def test_check_validation_error(self, tmp_path, capsys):
        path = tmp_path / "invalid.ocr"
        path.write_text("""
PROCESS Bad
  ACTIVITY A
    PROGRAM p
    IN x = Ghost.out
  END
END
""")
        assert tools_main(["check", str(path)]) == 2
        assert "Ghost" in capsys.readouterr().err

    def test_format_is_canonical(self, ocr_file, capsys):
        assert tools_main(["format", ocr_file]) == 0
        formatted = capsys.readouterr().out
        from repro.core.ocr import parse_ocr, print_ocr

        assert print_ocr(parse_ocr(formatted)) == formatted

    def test_dot_output(self, ocr_file, capsys):
        assert tools_main(["dot", ocr_file]) == 0
        assert capsys.readouterr().out.startswith('digraph "Demo"')

    def test_inspect_inventory(self, ocr_file, capsys):
        assert tools_main(["inspect", ocr_file]) == 0
        out = capsys.readouterr().out
        assert "input  x" in out
        assert "output y = A.out" in out
        assert "ns.run" in out

    def test_missing_file(self, capsys):
        assert tools_main(["check", "/does/not/exist.ocr"]) == 1
        assert "error" in capsys.readouterr().err
