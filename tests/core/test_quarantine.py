"""Node quarantine: repeatedly failing nodes are benched until probed.

A node that keeps failing jobs for node-attributed reasons (I/O errors,
program crashes) poisons every retry the dispatcher feeds it. With
quarantine enabled the server blacklists such a node after ``threshold``
strikes inside a sliding ``window``, keeps it out of placement, and
re-admits it only when a probe scheduled ``probe_after`` seconds later
reports it healthy. Shared-cause failures (disk-full, network-outage)
never count — benching nodes for the SAN's sins shrinks the cluster for
nothing.
"""

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import (
    BioOperaServer, ProgramRegistry, ProgramResult, events as ev,
)
from repro.errors import ActivityFailure

OCR = "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND"


def _cluster(seed=51, nodes=2, threshold=2, window=100.0, probe_after=40.0,
             program=None):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(nodes, cpus=1))
    registry = ProgramRegistry()
    registry.register(
        "w.u", program or (lambda inputs, ctx: ProgramResult({}, 5.0)))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.enable_quarantine(threshold, window, probe_after)
    server.define_template_ocr(OCR)
    return kernel, cluster, server


class TestStrikeAccounting:
    def test_strikes_within_window_quarantine_the_node(self):
        kernel, cluster, server = _cluster(threshold=2, window=100.0)
        server._note_node_failure("node001", 10.0)
        assert not server.awareness.node("node001").quarantined
        server._note_node_failure("node001", 20.0)
        assert server.awareness.node("node001").quarantined
        assert server.metrics["nodes_quarantined"] == 1
        names = [v.name for v in server.awareness.candidates()]
        assert "node001" not in names and "node002" in names

    def test_strikes_outside_window_do_not_accumulate(self):
        kernel, cluster, server = _cluster(threshold=2, window=100.0)
        server._note_node_failure("node001", 10.0)
        server._note_node_failure("node001", 200.0)  # first strike expired
        assert not server.awareness.node("node001").quarantined

    def test_shared_cause_reasons_are_not_node_attributed(self):
        assert "io-error" in ev.NODE_ATTRIBUTED_REASONS
        assert "program-error" in ev.NODE_ATTRIBUTED_REASONS
        assert "injected-fault" in ev.NODE_ATTRIBUTED_REASONS
        assert "disk-full" not in ev.NODE_ATTRIBUTED_REASONS
        assert "network-outage" not in ev.NODE_ATTRIBUTED_REASONS
        assert "node-down" not in ev.NODE_ATTRIBUTED_REASONS

    def test_environment_without_probe_support_never_quarantines(self):
        kernel, cluster, server = _cluster(threshold=1)
        server.environment = object()  # no schedule_probe: no way back
        server._note_node_failure("node001", 10.0)
        assert not server.awareness.node("node001").quarantined


class TestProbeReadmission:
    def test_probe_success_readmits_the_node(self):
        kernel, cluster, server = _cluster(threshold=1, probe_after=40.0)
        server._note_node_failure("node001", kernel.now)
        assert server.awareness.node("node001").quarantined
        kernel.run(until=kernel.now + 45.0)  # the scheduled probe fires
        assert not server.awareness.node("node001").quarantined

    def test_failed_probe_keeps_the_node_benched(self):
        kernel, cluster, server = _cluster(threshold=1)
        server._note_node_failure("node001", 5.0)
        server.on_probe_result("node001", ok=False)
        assert server.awareness.node("node001").quarantined
        server.on_probe_result("node001", ok=True)
        assert not server.awareness.node("node001").quarantined

    def test_node_restart_clears_quarantine_and_history(self):
        kernel, cluster, server = _cluster(threshold=2)
        server._note_node_failure("node001", 10.0)
        server._note_node_failure("node001", 11.0)
        assert server.awareness.node("node001").quarantined
        cluster.crash_node("node001")
        cluster.restore_node("node001")
        kernel.run(until=kernel.now + 10.0)  # deliver the node-up report
        assert not server.awareness.node("node001").quarantined
        # history was wiped too: one fresh strike must not re-quarantine
        server._note_node_failure("node001", 12.0)
        assert not server.awareness.node("node001").quarantined

    def test_disable_quarantine_releases_benched_nodes(self):
        kernel, cluster, server = _cluster(threshold=1)
        server._note_node_failure("node001", 5.0)
        assert server.awareness.node("node001").quarantined
        server.disable_quarantine()
        assert not server.awareness.node("node001").quarantined
        assert server.quarantine is None


class TestEndToEnd:
    def test_flaky_node_is_benched_probed_and_work_completes(self):
        """A single-node cluster whose program fails three times running:
        the node is quarantined on the third strike, the retry waits for
        the probe, and the instance still completes after re-admission."""
        calls = {"n": 0}

        def flaky(inputs, ctx):
            calls["n"] += 1
            if calls["n"] <= 3:
                raise ActivityFailure("io-error", detail="flaky scratch disk")
            return ProgramResult({}, 5.0)

        kernel, cluster, server = _cluster(
            seed=52, nodes=1, threshold=3, window=1000.0, probe_after=40.0,
            program=flaky,
        )
        instance_id = server.launch("P")
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert server.metrics["nodes_quarantined"] == 1
        assert server.metrics["jobs_failed"] == 3
        assert not server.awareness.node("node001").quarantined

    def test_recover_server_carries_quarantine_config(self):
        kernel, cluster, server = _cluster(threshold=4, window=77.0,
                                           probe_after=33.0)
        instance_id = server.launch("P")
        kernel.run(until=2.0)
        cluster.crash_server()
        cluster.recover_server()
        assert cluster.server is not server
        assert cluster.server.quarantine == (4, 77.0, 33.0)
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
