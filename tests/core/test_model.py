"""Process model: bindings, tasks, graphs, templates, validation."""

import pytest

from repro.core.model import (
    Activity,
    Binding,
    Block,
    ControlConnector,
    FailureHandler,
    ParallelTask,
    ProcessTemplate,
    Sphere,
    SubprocessTask,
    Task,
    TaskGraph,
)
from repro.core.model.data import ProcessParameter, Whiteboard, UNDEFINED
from repro.errors import BindingError, ModelError, ValidationError


class TestBinding:
    def test_text_round_trip(self):
        for binding in (
            Binding.whiteboard("queue"),
            Binding.task_output("Align", "matches"),
            Binding.constant(42),
            Binding.constant("text"),
            Binding.constant(None),
            Binding.constant([1, 2]),
        ):
            assert Binding.from_text(binding.to_text()) == binding

    def test_dict_round_trip(self):
        for binding in (
            Binding.whiteboard("x"),
            Binding.task_output("T", "f"),
            Binding.constant({"a": 1}),
        ):
            assert Binding.from_dict(binding.to_dict()) == binding

    def test_bad_text_rejected(self):
        with pytest.raises(BindingError):
            Binding.from_text("")
        with pytest.raises(BindingError):
            Binding.from_text("a.b.c")
        with pytest.raises(BindingError):
            Binding.from_text("wb.")

    def test_bad_dict_kind(self):
        with pytest.raises(BindingError):
            Binding.from_dict({"kind": "galactic"})


class TestWhiteboard:
    def test_undefined_semantics(self):
        board = Whiteboard()
        assert board.get("x") is UNDEFINED
        assert not board.defined("x")
        board.set("x", None)
        assert board.defined("x")
        assert board.get("x") is None

    def test_delete(self):
        board = Whiteboard({"x": 1})
        board.delete("x")
        assert "x" not in board
        board.delete("x")  # idempotent

    def test_as_dict_is_copy(self):
        board = Whiteboard({"x": 1})
        snapshot = board.as_dict()
        snapshot["x"] = 99
        assert board.get("x") == 1


class TestTasks:
    def test_activity_requires_program(self):
        with pytest.raises(ModelError):
            Activity("A", program="")

    def test_bad_task_name_rejected(self):
        with pytest.raises(ModelError):
            Activity("has space", program="p")

    def test_bad_join_rejected(self):
        with pytest.raises(ModelError):
            Activity("A", program="p", join="xor")

    def test_parallel_body_must_be_simple(self):
        block = Block("B", graph=TaskGraph(tasks=[Activity("X", program="p")]))
        with pytest.raises(ModelError):
            ParallelTask("P", list_input=Binding.whiteboard("items"),
                         body=block)

    def test_subprocess_requires_template(self):
        with pytest.raises(ModelError):
            SubprocessTask("S", template_name="")

    def test_task_dict_round_trip(self):
        tasks = [
            Activity("A", program="p.q",
                     inputs={"x": Binding.whiteboard("x")},
                     output_mappings=[("out", "wb_out")],
                     failure=FailureHandler(max_retries=2),
                     parameters={"k": 1}, join="and",
                     description="d"),
            ParallelTask("P", list_input=Binding.whiteboard("items"),
                         body=Activity("B", program="p"),
                         element_param="item"),
            SubprocessTask("S", template_name="sub", version=3),
            Block("K", graph=TaskGraph(tasks=[Activity("In", program="p")])),
        ]
        for task in tasks:
            restored = Task.from_dict(task.to_dict())
            assert restored.to_dict() == task.to_dict()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ModelError):
            Task.from_dict({"kind": "magic", "name": "x"})


class TestFailureHandler:
    def test_defaults(self):
        handler = FailureHandler()
        assert handler.strategy == "retry"
        assert handler.max_retries == 3

    def test_alternative_requires_program(self):
        with pytest.raises(ModelError):
            FailureHandler(strategy="alternative")
        with pytest.raises(ModelError):
            FailureHandler(strategy="retry", then="alternative")

    def test_bad_strategy(self):
        with pytest.raises(ModelError):
            FailureHandler(strategy="explode")

    def test_round_trip(self):
        handler = FailureHandler(strategy="retry", max_retries=5,
                                 then="alternative",
                                 alternative_program="alt.prog")
        assert FailureHandler.from_dict(handler.to_dict()) == handler


class TestSphere:
    def test_empty_sphere_rejected(self):
        with pytest.raises(ModelError):
            Sphere("s", tasks=())

    def test_compensation_of_nonmember_rejected(self):
        with pytest.raises(ModelError):
            Sphere("s", tasks=("a",), compensation=(("b", "undo"),))

    def test_round_trip(self):
        sphere = Sphere("s", tasks=("a", "b"),
                        compensation=(("a", "undo.a"),),
                        on_abort="continue")
        assert Sphere.from_dict(sphere.to_dict()) == sphere

    def test_compensation_program_lookup(self):
        sphere = Sphere("s", tasks=("a", "b"), compensation=(("a", "u"),))
        assert sphere.compensation_program("a") == "u"
        assert sphere.compensation_program("b") is None


class TestTaskGraph:
    def make_chain(self):
        graph = TaskGraph()
        graph.add_task(Activity("A", program="p"))
        graph.add_task(Activity("B", program="p"))
        graph.add_task(Activity("C", program="p"))
        graph.connect("A", "B")
        graph.connect("B", "C")
        return graph

    def test_duplicate_task_rejected(self):
        graph = TaskGraph()
        graph.add_task(Activity("A", program="p"))
        with pytest.raises(ModelError):
            graph.add_task(Activity("A", program="q"))

    def test_self_loop_rejected(self):
        with pytest.raises(ModelError):
            ControlConnector("A", "A")

    def test_start_tasks(self):
        graph = self.make_chain()
        assert graph.start_tasks() == ["A"]

    def test_topological_order(self):
        graph = self.make_chain()
        assert graph.topological_order() == ["A", "B", "C"]

    def test_cycle_detected(self):
        graph = self.make_chain()
        graph.connect("C", "A")
        with pytest.raises(ModelError):
            graph.topological_order()

    def test_incoming_outgoing(self):
        graph = self.make_chain()
        assert [c.source for c in graph.incoming("B")] == ["A"]
        assert [c.target for c in graph.outgoing("B")] == ["C"]

    def test_data_connectors_derived(self):
        graph = TaskGraph()
        graph.add_task(Activity("A", program="p"))
        graph.add_task(Activity("B", program="p", inputs={
            "x": Binding.task_output("A", "out"),
            "y": Binding.whiteboard("item"),
            "z": Binding.constant(1),
        }))
        edges = graph.data_connectors()
        kinds = {(e.source_kind, e.source_name, e.target_param)
                 for e in edges}
        assert ("task", "A", "x") in kinds
        assert ("whiteboard", "item", "y") in kinds
        assert len(edges) == 2  # constants are not edges

    def test_walk_tasks_recurses(self):
        inner = TaskGraph(tasks=[Activity("In", program="p")])
        graph = TaskGraph(tasks=[
            Block("Blk", graph=inner),
            ParallelTask("Par", list_input=Binding.whiteboard("xs"),
                         body=Activity("Body", program="p")),
        ])
        paths = {path for path, _task in graph.walk_tasks()}
        assert paths == {"Blk", "Blk/In", "Par", "Par/Body"}


class TestTemplateValidation:
    def valid_template(self):
        graph = TaskGraph()
        graph.add_task(Activity("A", program="p",
                                output_mappings=[("v", "value")]))
        graph.add_task(Activity("B", program="p",
                                inputs={"x": Binding.task_output("A", "v")}))
        graph.connect("A", "B", "wb.value > 1")
        return ProcessTemplate(
            "P", graph=graph,
            parameters=[ProcessParameter("inp")],
            outputs={"out": Binding.task_output("B", "r")},
        )

    def test_valid_template_passes(self):
        assert self.valid_template().validate() == []

    def test_empty_graph_invalid(self):
        template = ProcessTemplate("P")
        assert any("no tasks" in p for p in template.validate())

    def test_connector_to_unknown_task(self):
        template = self.valid_template()
        template.graph.add_connector(ControlConnector("A", "Ghost"))
        assert any("Ghost" in p for p in template.validate())

    def test_binding_to_unknown_task(self):
        template = self.valid_template()
        template.graph.tasks["B"].inputs["bad"] = Binding.task_output(
            "Nope", "f")
        assert any("Nope" in p for p in template.validate())

    def test_binding_to_unknown_whiteboard_item(self):
        template = self.valid_template()
        template.graph.tasks["B"].inputs["bad"] = Binding.whiteboard(
            "never_written")
        assert any("never_written" in p for p in template.validate())

    def test_whiteboard_item_from_mapping_is_known(self):
        template = self.valid_template()
        template.graph.tasks["B"].inputs["ok"] = Binding.whiteboard("value")
        assert template.validate() == []

    def test_cycle_reported(self):
        template = self.valid_template()
        template.graph.connect("B", "A")
        assert any("cycle" in p for p in template.validate())

    def test_sphere_unknown_member(self):
        template = self.valid_template()
        template.spheres.append(Sphere("s", tasks=("Ghost",)))
        assert any("Ghost" in p for p in template.validate())

    def test_duplicate_parameters(self):
        template = self.valid_template()
        template.parameters.append(ProcessParameter("inp"))
        assert any("duplicate" in p for p in template.validate())

    def test_ensure_valid_raises(self):
        template = ProcessTemplate("P")
        with pytest.raises(ValidationError):
            template.ensure_valid()

    def test_dict_round_trip(self):
        template = self.valid_template()
        template.spheres.append(
            Sphere("s", tasks=("A",), compensation=(("A", "undo"),)))
        restored = ProcessTemplate.from_dict(template.to_dict())
        assert restored.to_dict() == template.to_dict()

    def test_activity_programs_collected(self):
        template = self.valid_template()
        assert template.activity_programs() == {"p"}

    def test_required_parameters(self):
        template = self.valid_template()
        template.parameters.append(ProcessParameter("opt", optional=True))
        assert template.required_parameters() == ["inp"]
