"""Adaptive load monitoring: the two-cut-off algorithm and its evaluation."""

import pytest

from repro.core.monitor.adaptive import (
    AdaptiveMonitor,
    MonitorConfig,
    simulate_monitoring,
    synthetic_load_trace,
)


class TestAdaptiveMonitor:
    def test_first_observation_always_reports(self):
        monitor = AdaptiveMonitor()
        _interval, report = monitor.observe(0.5)
        assert report == 0.5

    def test_small_change_grows_interval(self):
        config = MonitorConfig(base_interval=60.0)
        monitor = AdaptiveMonitor(config)
        monitor.observe(0.5)
        interval, report = monitor.observe(0.5 + 0.001)
        assert interval > 60.0
        assert report is None  # below reporting cutoff

    def test_large_change_shrinks_interval(self):
        config = MonitorConfig(base_interval=60.0)
        monitor = AdaptiveMonitor(config)
        monitor.observe(0.2)
        interval, report = monitor.observe(0.9)
        assert interval < 60.0
        assert report == 0.9

    def test_interval_bounded(self):
        config = MonitorConfig(min_interval=10, max_interval=100,
                               base_interval=50)
        monitor = AdaptiveMonitor(config)
        for _ in range(20):
            monitor.observe(0.5)  # constant load
        assert monitor.interval == 100
        monitor.observe(1.0)
        monitor.observe(0.0)
        assert monitor.interval == 10

    def test_report_cutoff_relative_to_last_report(self):
        config = MonitorConfig(report_cutoff=0.1)
        monitor = AdaptiveMonitor(config)
        monitor.observe(0.50)          # reported
        _, r1 = monitor.observe(0.56)  # +0.06 < cutoff: silent
        _, r2 = monitor.observe(0.62)  # +0.12 vs last report: reported
        assert r1 is None
        assert r2 == 0.62

    def test_discard_fraction(self):
        monitor = AdaptiveMonitor()
        monitor.observe(0.5)
        for _ in range(9):
            monitor.observe(0.5)
        assert monitor.samples_taken == 10
        assert monitor.reports_sent == 1
        assert monitor.discard_fraction == pytest.approx(0.9)


class TestTrace:
    def test_trace_in_unit_interval(self):
        trace = synthetic_load_trace(1000.0, seed=1)
        assert all(0.0 <= v <= 1.0 for _t, v in trace)

    def test_trace_deterministic(self):
        assert synthetic_load_trace(500, seed=4) == synthetic_load_trace(
            500, seed=4)

    def test_trace_has_variation(self):
        values = [v for _t, v in synthetic_load_trace(20000, seed=2)]
        assert max(values) - min(values) > 0.2


class TestSimulation:
    @pytest.fixture(scope="class")
    def trace(self):
        return synthetic_load_trace(7 * 86400.0, step=5.0, seed=3)

    def test_paper_claim_discard_90_error_3(self, trace):
        """Section 3.4: discarding ~90% of samples costs only a few percent
        of view accuracy."""
        run = simulate_monitoring(trace, strategy="adaptive")
        assert run.discard_fraction >= 0.80
        assert run.mean_error <= 0.06

    def test_adaptive_sends_far_fewer_messages_than_fixed(self, trace):
        adaptive = simulate_monitoring(trace, strategy="adaptive")
        fixed = simulate_monitoring(trace, strategy="fixed")
        assert adaptive.network_messages < fixed.network_messages / 5

    def test_adaptive_error_close_to_fixed(self, trace):
        adaptive = simulate_monitoring(trace, strategy="adaptive")
        fixed = simulate_monitoring(trace, strategy="fixed")
        assert adaptive.mean_error <= fixed.mean_error + 0.05

    def test_fixed_threshold_between_the_two(self, trace):
        fixed_threshold = simulate_monitoring(trace,
                                              strategy="fixed-threshold")
        fixed = simulate_monitoring(trace, strategy="fixed")
        assert fixed_threshold.network_messages < fixed.network_messages

    def test_adaptive_takes_fewer_samples(self, trace):
        adaptive = simulate_monitoring(trace, strategy="adaptive")
        fixed = simulate_monitoring(trace, strategy="fixed")
        assert adaptive.samples_taken < fixed.samples_taken

    def test_unknown_strategy_rejected(self, trace):
        with pytest.raises(ValueError):
            simulate_monitoring(trace, strategy="psychic")
