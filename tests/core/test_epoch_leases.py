"""Epoch fencing and dispatch leases: partition-safe engine semantics.

Every server (re)start durably bumps a ``server_epoch`` record in the
configuration space; every dispatch and every emitted event carries the
issuing epoch. These tests pin the three mechanisms that make a split
brain *safe* rather than impossible:

* a deposed server that consults the shared store fences itself instead of
  racing the new epoch's writes;
* stale-epoch reports and dispatches are rejected and counted on both
  sides (server and PEC);
* a dispatched job holds a lease whose expiry — not just a failure report
  — triggers safe re-dispatch, which is what recovers work stranded
  behind a half-open partition that no failure detector can see.
"""

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult
from repro.core.engine.recovery import verify_log


def _registry(cost=50.0):
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({}, cost))
    return registry


def _cluster_server(seed=31, nodes=1, cost=50.0, **cluster_kw):
    kernel = SimKernel(seed=seed)
    cluster_kw.setdefault("execution_noise", 0.0)
    cluster = SimulatedCluster(kernel, uniform(nodes, cpus=1), **cluster_kw)
    server = BioOperaServer(registry=_registry(cost))
    server.attach_environment(cluster)
    server.define_template_ocr(
        "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND")
    return kernel, cluster, server


class TestEpochs:
    def test_epoch_bumps_durably_on_every_restart(self):
        first = BioOperaServer(registry=_registry(), observability=False)
        assert first.epoch == 1
        assert first.store.configuration.setting("server_epoch") == 1
        second = BioOperaServer.recover(first.store, first.registry,
                                        observability=False)
        third = BioOperaServer.recover(first.store, first.registry,
                                       observability=False)
        assert (second.epoch, third.epoch) == (2, 3)
        assert first.store.configuration.setting("server_epoch") == 3

    def test_every_emitted_event_carries_the_epoch(self):
        kernel, cluster, server = _cluster_server()
        instance_id = server.launch("P")
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        events = list(server.store.instances.events(instance_id))
        assert events
        assert all(event.get("epoch") == server.epoch for event in events)

    def test_deposed_server_fences_itself_against_newer_epoch(self):
        kernel, cluster, old = _cluster_server()
        instance_id = old.launch("P")
        kernel.run(until=5.0)  # a dispatch is in flight
        assert old.dispatcher.in_flight
        job_id = next(iter(old.dispatcher.in_flight))
        # a promotion bumps the shared store's epoch behind old's back
        old.store.configuration.set_setting("server_epoch", old.epoch + 1)
        events_before = old.store.instances.event_count(instance_id)
        old.on_job_completed(job_id, {}, 1.0, "node001")
        assert old.up is False
        assert old.metrics["epoch_fenced"] == 1
        # the fenced write never reached the shared log
        assert old.store.instances.event_count(instance_id) == events_before

    def test_stale_epoch_report_rejected_and_counted(self):
        kernel, cluster, server = _cluster_server()
        instance_id = server.launch("P")
        kernel.run(until=5.0)
        job_id = next(iter(server.dispatcher.in_flight))
        server.on_job_completed(job_id, {}, 1.0, "node001",
                                epoch=server.epoch + 7)
        assert server.metrics["stale_epoch_reports"] == 1
        assert job_id in server.dispatcher.in_flight  # not applied
        # the job is still live; the run must finish normally
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"

    def test_pec_rejects_dispatch_from_deposed_epoch(self):
        kernel, cluster, server = _cluster_server()
        server.launch("P")
        kernel.run(until=10.0)  # dispatch delivered, job running
        pec = cluster.pecs["node001"]
        job, _node = next(iter(server.dispatcher.in_flight.values()))
        assert pec.highest_epoch_seen == server.epoch
        pec.highest_epoch_seen = job.epoch + 1
        pec.receive_job(job)
        assert pec.stale_dispatches_rejected == 1

    def test_pec_ignores_duplicate_delivery_of_running_job(self):
        kernel, cluster, server = _cluster_server()
        server.launch("P")
        kernel.run(until=10.0)
        pec = cluster.pecs["node001"]
        job, _node = next(iter(server.dispatcher.in_flight.values()))
        assert cluster.nodes["node001"].has_job(job.job_id)
        pec.receive_job(job)  # a duplicated delivery of the same dispatch
        assert pec.duplicate_dispatches_ignored == 1
        assert len(cluster.nodes["node001"].running_jobs()) == 1

    def test_verify_log_flags_fenced_epoch_regression(self):
        kernel, cluster, server = _cluster_server()
        instance_id = server.launch("P")
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert verify_log(server.store, instance_id, server._resolver) == []
        # fabricate a write from a fenced (older) epoch
        last = list(server.store.instances.events(instance_id))[-1]
        forged = dict(last)
        forged["epoch"] = server.epoch - 1 or 0
        server.store.instances.append_event(instance_id, forged)
        anomalies = verify_log(server.store, instance_id, server._resolver)
        assert any("fenced epoch" in anomaly for anomaly in anomalies)


class TestLeases:
    def test_lease_renews_while_job_is_running(self):
        kernel, cluster, server = _cluster_server(cost=300.0)
        server.enable_leases(60.0, 0.0)
        instance_id = server.launch("P")
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert server.metrics["leases_granted"] >= 1
        assert server.metrics["leases_renewed"] >= 1
        assert server.metrics["leases_expired"] == 0
        assert server.metrics["lease_double_grants"] == 0
        assert server._leases == {}

    def test_lease_released_on_completion(self):
        kernel, cluster, server = _cluster_server(cost=50.0)
        server.enable_leases(900.0, 4.0)
        instance_id = server.launch("P")
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert server.metrics["leases_granted"] == 1
        assert server.metrics["leases_expired"] == 0
        assert server._leases == {}

    def test_lease_expiry_redispatches_across_half_open_partition(self):
        """A 'to-server' cut eats the completion report but the failure
        detector never fires (dispatches and probes still flow). Only the
        lease notices: it expires, the attempt is failed as
        ``lease-expired``, and the re-dispatch completes the instance."""
        kernel, cluster, server = _cluster_server(cost=50.0)
        server.enable_leases(120.0, 0.0)
        instance_id = server.launch("P")
        kernel.run(until=5.0)  # dispatch delivered
        pid = cluster.start_partition(["node001"], direction="to-server")
        kernel.run(until=200.0)
        assert server.metrics["leases_expired"] == 1
        assert server.metrics["leases_granted"] >= 2  # re-dispatch leased
        cluster.heal_partition(pid)
        status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        state = server.instance(instance_id).find_state("A")
        assert state.attempts >= 2

    def test_recover_carries_lease_policy(self):
        server = BioOperaServer(registry=_registry(), observability=False)
        server.enable_leases(123.0, 5.0)
        recovered = BioOperaServer.recover(server.store, server.registry,
                                           observability=False,
                                           leases=server.leases)
        assert recovered.leases == (123.0, 5.0)
