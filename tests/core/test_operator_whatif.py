"""Operator console queries and what-if outage planning."""

import pytest

from repro.core.engine import ProgramResult
from repro.core.engine.operator_console import OperatorConsole
from repro.core.planning import drain_plan, outage_impact
from repro.errors import PlanningError

from ..conftest import make_inline_server

SOURCE = """
PROCESS P
  INPUT items
  OUTPUT total = Sum.total
  PARALLEL Fan
    FOREACH wb.items AS e
    ACTIVITY Body
      PROGRAM t.body
    END
  END
  ACTIVITY Sum
    PROGRAM t.sum
    IN results = Fan.results
  END
  CONNECT Fan -> Sum
END
"""


def programs():
    return {
        "t.body": lambda i, c: ProgramResult({"v": i["e"]}, 1.0),
        "t.sum": lambda i, c: ProgramResult(
            {"total": sum(r["v"] for r in i["results"])}, 0.1),
    }


class TestConsole:
    def make(self):
        server, env = make_inline_server(
            programs(), nodes={"n1": 2, "n2": 2})
        server.define_template_ocr(SOURCE)
        console = OperatorConsole(server)
        return server, env, console

    def test_list_instances(self):
        server, env, console = self.make()
        iid = console.start("P", {"items": [1, 2]})
        env.run_instance(iid)
        rows = console.list_instances()
        assert rows[0]["instance_id"] == iid
        assert rows[0]["template"] == "P"
        assert rows[0]["status"] == "completed"

    def test_running_tasks_shows_node_and_program(self):
        server, env, console = self.make()
        iid = console.start("P", {"items": [1, 2, 3]})
        rows = console.running_tasks(iid)
        assert rows, "bodies should be dispatched"
        assert all(row["program"] == "t.body" for row in rows)
        assert all(row["node"] in ("n1", "n2") for row in rows)

    def test_intermediate_results_while_running(self):
        server, env, console = self.make()
        iid = console.start("P", {"items": [1, 2, 3]})
        env.step()  # one body finishes
        partial = console.intermediate_results(iid, prefix="Fan/")
        assert len(partial) == 1
        assert list(partial.values())[0] == {"v": 1}

    def test_failed_tasks_listing(self):
        from repro.errors import ActivityFailure

        def bad(inputs, ctx):
            raise ActivityFailure("program-error", "nope")

        server, env = make_inline_server({"t.bad": bad})
        server.define_template_ocr("""
        PROCESS Q
          ACTIVITY A
            PROGRAM t.bad
            ON_FAILURE ABORT
          END
        END
        """)
        console = OperatorConsole(server)
        iid = console.start("Q")
        env.run_until_idle()
        # the instance aborted; the failure is still visible in the state
        failed = console.failed_tasks(iid)
        assert failed and failed[0]["reason"] == "program-error"

    def test_cluster_state(self):
        server, env, console = self.make()
        rows = console.cluster_state()
        assert {row["node"] for row in rows} == {"n1", "n2"}
        assert all(row["up"] for row in rows)

    def test_instance_detail_includes_whiteboard(self):
        server, env, console = self.make()
        iid = console.start("P", {"items": [4]})
        env.run_instance(iid)
        detail = console.instance_detail(iid)
        assert detail["whiteboard"]["items"] == [4]
        assert detail["outputs"] == {"total": 4}

    def test_stop_resume_counts_interventions(self):
        server, env, console = self.make()
        iid = console.start("P", {"items": [1, 2, 3, 4, 5, 6]})
        console.stop(iid)
        env.run_until_idle()
        console.resume(iid)
        env.run_instance(iid)
        assert server.metrics["manual_interventions"] == 2
        assert server.instance(iid).status == "completed"


class TestWhatIf:
    def make_running(self):
        server, env = make_inline_server(
            programs(), nodes={"n1": 2, "n2": 2, "n3": 2})
        server.define_template_ocr(SOURCE)
        iid = server.launch("P", {"items": [1, 2, 3, 4, 5, 6]})
        return server, env, iid

    def test_unknown_node_rejected(self):
        server, _env, _iid = self.make_running()
        with pytest.raises(PlanningError):
            outage_impact(server, ["ghost"])

    def test_displaced_tasks_identified(self):
        server, _env, iid = self.make_running()
        plan = outage_impact(server, ["n1"])
        assert plan.removed_cpus == 2
        assert plan.remaining_cpus == 4
        impact = {i.instance_id: i for i in plan.affected}
        assert iid in impact
        displaced = impact[iid].displaced_tasks
        instance = server.instance(iid)
        for path in displaced:
            assert instance.find_state(path).node == "n1"

    def test_instance_can_continue_with_survivors(self):
        server, _env, iid = self.make_running()
        plan = outage_impact(server, ["n1"])
        impact = {i.instance_id: i for i in plan.affected}
        assert impact[iid].can_continue
        assert not plan.stopped

    def test_total_outage_stops_instance(self):
        server, _env, iid = self.make_running()
        plan = outage_impact(server, ["n1", "n2", "n3"])
        assert plan.remaining_cpus == 0
        assert iid in plan.stopped

    def test_idle_instance_unaffected(self):
        server, env, iid = self.make_running()
        env.run_instance(iid)  # finished: nothing displaced
        plan = outage_impact(server, ["n1"])
        assert plan.affected == []

    def test_summary_mentions_nodes(self):
        server, _env, _iid = self.make_running()
        text = outage_impact(server, ["n1"]).summary()
        assert "n1" in text and "CPUs" in text

    def test_drain_plan_steps(self):
        server, _env, iid = self.make_running()
        steps = drain_plan(server, ["n1"])
        assert any("take n1 off-line" in step for step in steps)

    def test_drain_plan_suspends_stopped_instances(self):
        server, _env, iid = self.make_running()
        steps = drain_plan(server, ["n1", "n2", "n3"])
        assert any(step.startswith(f"suspend {iid}") for step in steps)
        assert any(step.startswith(f"resume {iid}") for step in steps)


class TestWhatIfPlacementTags:
    def test_tagged_work_stops_when_tagged_node_removed(self):
        """A job pinned to a tagged node (the paper's refine-on-ik-sun
        pattern) cannot relocate if no surviving node carries the tag."""
        from repro.core.engine import ProgramResult
        from ..conftest import make_inline_server

        server, env = make_inline_server(
            {"t.long": lambda i, c: ProgramResult({}, 100.0)},
        )
        # one general node, one tagged node; register via awareness
        server.register_node("general", 2)
        server.register_node("special", 2, tags=("gpu",))
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Pinned
            PROGRAM t.long
            PARAM placement = "gpu"
          END
        END
        """)
        iid = server.launch("P")
        # the job is dispatched (to 'special') but not yet executed
        state = server.instance(iid).find_state("Pinned")
        assert state.node == "special"
        plan = outage_impact(server, ["special"])
        assert iid in plan.stopped
        impact = {i.instance_id: i for i in plan.affected}[iid]
        assert not impact.can_continue
        assert impact.relocation == {}

    def test_tagged_work_relocates_to_other_tagged_node(self):
        from repro.core.engine import ProgramResult
        from ..conftest import make_inline_server

        server, env = make_inline_server(
            {"t.long": lambda i, c: ProgramResult({}, 100.0)},
        )
        server.register_node("gpu1", 2, tags=("gpu",))
        server.register_node("gpu2", 2, tags=("gpu",))
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY Pinned
            PROGRAM t.long
            PARAM placement = "gpu"
          END
        END
        """)
        iid = server.launch("P")
        used = server.instance(iid).find_state("Pinned").node
        other = "gpu2" if used == "gpu1" else "gpu1"
        plan = outage_impact(server, [used])
        impact = {i.instance_id: i for i in plan.affected}[iid]
        assert impact.can_continue
        assert impact.relocation == {"Pinned": other}
