"""Hot-standby server failover (the paper's future-work architecture)."""

import pytest

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import (
    BioOperaServer,
    ProgramRegistry,
    ProgramResult,
    StandbyMonitor,
    attach_standby,
)
from repro.errors import EngineError

FAN = """
PROCESS Fan
  INPUT items
  OUTPUT results = F.results
  PARALLEL F
    FOREACH wb.items AS e
    ACTIVITY Unit
      PROGRAM w.unit
    END
  END
END
"""


def build(seed=3, takeover_after=60.0, check_interval=15.0):
    registry = ProgramRegistry()
    registry.register("w.unit",
                      lambda i, c: ProgramResult({"v": i["e"]}, cost=200.0))
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(3, cpus=2))
    server = BioOperaServer(registry=registry, seed=seed)
    server.attach_environment(cluster)
    server.define_template_ocr(FAN)
    monitor = attach_standby(cluster, takeover_after=takeover_after,
                             check_interval=check_interval)
    return kernel, cluster, server, monitor


class TestFailover:
    def test_takeover_after_silence(self):
        kernel, cluster, server, monitor = build()
        iid = server.launch("Fan", {"items": [1, 2, 3, 4]})
        kernel.run(until=30.0)
        cluster.crash_server()
        # standby promotes within takeover_after + check_interval
        kernel.run(until=30.0 + 60.0 + 20.0)
        assert monitor.takeovers == 1
        assert cluster.server is not server
        assert cluster.server.up

    def test_run_completes_through_failover_without_operator(self):
        kernel, cluster, server, monitor = build()
        iid = server.launch("Fan", {"items": [1, 2, 3, 4, 5, 6, 7, 8]})
        kernel.run(until=50.0)
        cluster.crash_server()
        status = cluster.run_until_instance_done(iid)
        assert status == "completed"
        results = cluster.server.instance(iid).outputs["results"]
        assert [r["v"] for r in results] == [1, 2, 3, 4, 5, 6, 7, 8]
        # nobody called recover_server manually
        assert cluster.server.metrics["manual_interventions"] == 0
        assert cluster.server.metrics["standby_takeovers"] == 1

    def test_downtime_bounded_by_detection_window(self):
        kernel, cluster, server, monitor = build(takeover_after=45.0,
                                                 check_interval=10.0)
        iid = server.launch("Fan", {"items": [1]})
        kernel.run(until=20.0)
        crash_time = kernel.now
        cluster.crash_server()
        while cluster.server is server:
            kernel.step()
        downtime = kernel.now - crash_time
        assert downtime <= 45.0 + 10.0 + 1.0

    def test_healthy_primary_never_replaced(self):
        kernel, cluster, server, monitor = build()
        iid = server.launch("Fan", {"items": [1, 2]})
        cluster.run_until_instance_done(iid)
        assert monitor.takeovers == 0
        assert cluster.server is server

    def test_double_failover(self):
        kernel, cluster, server, monitor = build()
        iid = server.launch("Fan", {"items": [1, 2, 3, 4, 5, 6]})
        kernel.run(until=30.0)
        cluster.crash_server()
        kernel.run(until=150.0)
        assert monitor.takeovers == 1
        cluster.crash_server()  # the replacement dies too
        status = cluster.run_until_instance_done(iid)
        assert status == "completed"
        assert monitor.takeovers == 2
        assert cluster.server.metrics["standby_takeovers"] == 2

    def test_disabled_monitor_does_nothing(self):
        kernel, cluster, server, monitor = build()
        monitor.enabled = False
        iid = server.launch("Fan", {"items": [1, 2]})
        kernel.run(until=10.0)
        cluster.crash_server()
        kernel.run(until=500.0)
        assert monitor.takeovers == 0
        assert cluster.server is server  # still the dead primary


class TestMonitorUnit:
    def test_promote_without_primary_raises(self):
        monitor = StandbyMonitor(
            get_primary=lambda: None,
            set_primary=lambda s: None,
            clock=lambda: 0.0,
        )
        with pytest.raises(EngineError):
            monitor.promote()

    def test_check_respects_window(self):
        clock = {"t": 0.0}
        primary = BioOperaServer()
        holder = {"server": primary}
        monitor = StandbyMonitor(
            get_primary=lambda: holder["server"],
            set_primary=lambda s: holder.__setitem__("server", s),
            clock=lambda: clock["t"],
            takeover_after=30.0,
        )
        primary.crash()
        clock["t"] = 10.0
        assert monitor.check() is None      # still within the window
        clock["t"] = 31.0
        replacement = monitor.check()
        assert replacement is not None
        assert holder["server"] is replacement

    def test_heartbeat_resets_silence(self):
        clock = {"t": 0.0}
        primary = BioOperaServer()
        monitor = StandbyMonitor(
            get_primary=lambda: primary,
            set_primary=lambda s: None,
            clock=lambda: clock["t"],
            takeover_after=30.0,
        )
        clock["t"] = 25.0
        monitor.heartbeat()
        assert monitor.silence() == 0.0
