"""Engine basics: linear flows, conditional branching, data flow, joins."""

import pytest

from repro.core.engine import ProgramResult
from repro.errors import InvalidStateError, UnknownTemplateError

from ..conftest import constant_program, echo_program, make_inline_server, run_process


class TestLinearFlow:
    def test_two_step_chain(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT v = B.v
              ACTIVITY A
                PROGRAM t.a
              END
              ACTIVITY B
                PROGRAM t.b
                IN x = A.v
              END
              CONNECT A -> B
            END
            """,
            {"t.a": constant_program({"v": 1}),
             "t.b": lambda i, c: ProgramResult({"v": i["x"] + 1}, 1.0)},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.outputs == {"v": 2}

    def test_whiteboard_mapping_flows(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT out = B.echoed
              ACTIVITY A
                PROGRAM t.a
                MAP v -> value
              END
              ACTIVITY B
                PROGRAM t.echo
                IN echoed = wb.value
              END
              CONNECT A -> B
            END
            """,
            {"t.a": constant_program({"v": 42}),
             "t.echo": echo_program()},
        )
        assert server.instance(iid).outputs == {"out": 42}

    def test_static_parameters_reach_program(self):
        seen = {}

        def capture(inputs, ctx):
            seen.update(inputs)
            return ProgramResult({}, 0.1)

        run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.cap
                PARAM alpha = 5
                PARAM beta = "x"
              END
            END
            """,
            {"t.cap": capture},
        )
        assert seen == {"alpha": 5, "beta": "x"}

    def test_process_inputs_default_and_override(self):
        source = """
        PROCESS P
          INPUT n DEFAULT 3
          OUTPUT n = A.n
          ACTIVITY A
            PROGRAM t.echo
            IN n = wb.n
          END
        END
        """
        server, _env, iid = run_process(
            source, {"t.echo": echo_program()})
        assert server.instance(iid).outputs == {"n": 3}
        server2, env2, _ = run_process(
            source, {"t.echo": echo_program()}, inputs={"n": 9})
        iid2 = sorted(server2.instances)[-1]
        assert server2.instance(iid2).outputs == {"n": 9}

    def test_missing_required_input_rejected_at_launch(self):
        server, _env = make_inline_server({"t.a": constant_program({})})
        server.define_template_ocr("""
        PROCESS P
          INPUT must_have
          ACTIVITY A
            PROGRAM t.a
          END
        END
        """)
        with pytest.raises(InvalidStateError):
            server.launch("P", {})

    def test_launch_unknown_template(self):
        server, _env = make_inline_server()
        with pytest.raises(UnknownTemplateError):
            server.launch("Ghost")


class TestBranching:
    SOURCE = """
    PROCESS P
      INPUT flag OPTIONAL
      OUTPUT path = Join.path
      ACTIVITY Start
        PROGRAM t.start
      END
      ACTIVITY Left
        PROGRAM t.left
      END
      ACTIVITY Right
        PROGRAM t.right
      END
      ACTIVITY Join
        PROGRAM t.join
        IN l = Left.tag
        IN r = Right.tag
      END
      CONNECT Start -> Left WHEN [DEFINED(wb.flag)]
      CONNECT Start -> Right WHEN [NOT DEFINED(wb.flag)]
      CONNECT Left -> Join
      CONNECT Right -> Join
    END
    """

    def programs(self):
        return {
            "t.start": constant_program({}),
            "t.left": constant_program({"tag": "left"}),
            "t.right": constant_program({"tag": "right"}),
            "t.join": lambda i, c: ProgramResult(
                {"path": i.get("l", i.get("r"))}, 0.1),
        }

    def test_branch_taken_when_flag_defined(self):
        server, _env, iid = run_process(
            self.SOURCE, self.programs(), inputs={"flag": 1})
        instance = server.instance(iid)
        assert instance.outputs == {"path": "left"}
        assert instance.find_state("Right").status == "skipped"
        assert instance.find_state("Left").status == "completed"

    def test_other_branch_and_dead_path_elimination(self):
        server, _env, iid = run_process(self.SOURCE, self.programs())
        instance = server.instance(iid)
        assert instance.outputs == {"path": "right"}
        assert instance.find_state("Left").status == "skipped"

    def test_or_join_runs_once_with_single_fired_connector(self):
        calls = {"join": 0}

        def counting_join(inputs, ctx):
            calls["join"] += 1
            return ProgramResult({"path": "x"}, 0.1)

        programs = self.programs()
        programs["t.join"] = counting_join
        run_process(self.SOURCE, programs, inputs={"flag": 1})
        assert calls["join"] == 1


class TestAndJoin:
    def test_and_join_requires_all_connectors(self):
        """A task with JOIN and is skipped when any incoming path is dead."""
        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT flag OPTIONAL
              ACTIVITY S
                PROGRAM t.s
              END
              ACTIVITY A
                PROGRAM t.s
              END
              ACTIVITY Both
                PROGRAM t.s
                JOIN and
              END
              CONNECT S -> A WHEN [DEFINED(wb.flag)]
              CONNECT S -> Both
              CONNECT A -> Both
            END
            """,
            {"t.s": constant_program({})},
        )
        instance = server.instance(iid)
        assert instance.find_state("A").status == "skipped"
        assert instance.find_state("Both").status == "skipped"
        assert instance.status == "completed"

    def test_and_join_fires_when_all_complete(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY S
                PROGRAM t.s
              END
              ACTIVITY A
                PROGRAM t.s
              END
              ACTIVITY Both
                PROGRAM t.s
                JOIN and
              END
              CONNECT S -> A
              CONNECT S -> Both
              CONNECT A -> Both
            END
            """,
            {"t.s": constant_program({})},
        )
        assert server.instance(iid).find_state("Both").status == "completed"


class TestConditionOnTaskOutput:
    def test_condition_reads_source_output(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY Gen
                PROGRAM t.gen
              END
              ACTIVITY Big
                PROGRAM t.noop
              END
              ACTIVITY Small
                PROGRAM t.noop
              END
              CONNECT Gen -> Big WHEN [Gen.value > 10]
              CONNECT Gen -> Small WHEN [Gen.value <= 10]
            END
            """,
            {"t.gen": constant_program({"value": 3}),
             "t.noop": constant_program({})},
        )
        instance = server.instance(iid)
        assert instance.find_state("Big").status == "skipped"
        assert instance.find_state("Small").status == "completed"

    def test_condition_error_fails_task(self):
        """A condition over undefined data is a process bug: the target
        fails with condition-error (and default handler aborts)."""
        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT maybe OPTIONAL
              ACTIVITY A
                PROGRAM t.noop
              END
              ACTIVITY B
                PROGRAM t.noop
              END
              CONNECT A -> B WHEN [wb.maybe > 1]
            END
            """,
            {"t.noop": constant_program({})},
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert "condition-error" in instance.abort_reason


class TestStatistics:
    def test_accounting(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.a
              END
              ACTIVITY B
                PROGRAM t.b
              END
              CONNECT A -> B
            END
            """,
            {"t.a": constant_program({}, cost=2.0),
             "t.b": constant_program({}, cost=3.0)},
        )
        stats = server.statistics(iid)
        assert stats["activities_completed"] == 2
        assert stats["cpu_seconds"] == pytest.approx(5.0)
        assert stats["cpu_per_activity"] == pytest.approx(2.5)
