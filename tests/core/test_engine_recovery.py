"""Server crash recovery, replay, suspend/resume, operator restarts."""

import pytest

from repro.core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramRegistry,
    ProgramResult,
    recovery_report,
    replay_instance,
    verify_log,
    work_lost_to_failures,
)
from repro.errors import InvalidStateError

from ..conftest import make_inline_server

CHAIN = """
PROCESS Chain
  OUTPUT v = C.v
  ACTIVITY A
    PROGRAM t.a
  END
  ACTIVITY B
    PROGRAM t.b
    IN x = A.v
  END
  ACTIVITY C
    PROGRAM t.c
    IN x = B.v
  END
  CONNECT A -> B
  CONNECT B -> C
END
"""


def chain_programs(log=None):
    def step(name, value):
        def fn(inputs, ctx):
            if log is not None:
                log.append(name)
            return ProgramResult({"v": value}, 1.0)
        return fn

    return {"t.a": step("a", 1), "t.b": step("b", 2), "t.c": step("c", 3)}


class TestCrashRecovery:
    def crash_at(self, steps_before_crash, log=None):
        registry = ProgramRegistry()
        for name, fn in chain_programs(log).items():
            registry.register(name, fn)
        server = BioOperaServer(registry=registry)
        env = InlineEnvironment()
        server.attach_environment(env)
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        for _ in range(steps_before_crash):
            env.step()
        server.crash()
        env2 = InlineEnvironment()
        recovered = BioOperaServer.recover(server.store, registry,
                                           environment=env2)
        return recovered, env2, iid

    @pytest.mark.parametrize("steps", [0, 1, 2, 3])
    def test_crash_at_any_point_still_completes(self, steps):
        server, env, iid = self.crash_at(steps)
        env.run_instance(iid)
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.outputs == {"v": 3}

    def test_completed_work_is_not_redone(self):
        log = []
        server, env, iid = self.crash_at(2, log=log)  # a, b completed
        env.run_instance(iid)
        # a and b ran exactly once; only c (in flight at crash) repeats
        assert log.count("a") == 1
        assert log.count("b") == 1

    def test_inflight_task_marked_server_recovery(self):
        server, _env, iid = self.crash_at(1)
        events = list(server.store.instances.events(iid))
        recovery_failures = [
            e for e in events
            if e["type"] == "task_failed" and e["reason"] == "server-recovery"
        ]
        assert len(recovery_failures) == 1

    def test_completed_instance_untouched_by_recovery(self):
        registry = ProgramRegistry()
        for name, fn in chain_programs().items():
            registry.register(name, fn)
        server = BioOperaServer(registry=registry)
        env = InlineEnvironment()
        server.attach_environment(env)
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        events_before = server.store.instances.event_count(iid)
        recovered = BioOperaServer.recover(
            server.store, registry, environment=InlineEnvironment())
        assert recovered.instance(iid).status == "completed"
        assert recovered.store.instances.event_count(iid) == events_before

    def test_double_crash_recovery(self):
        server, env, iid = self.crash_at(1)
        env.step()
        server.crash()
        env3 = InlineEnvironment()
        final = BioOperaServer.recover(server.store, server.registry,
                                       environment=env3)
        env3.run_instance(iid)
        assert final.instance(iid).outputs == {"v": 3}

    def test_disk_backed_recovery(self, tmp_path):
        from repro.store import OperaStore

        registry = ProgramRegistry()
        for name, fn in chain_programs().items():
            registry.register(name, fn)
        store = OperaStore(str(tmp_path / "opera"))
        server = BioOperaServer(store=store, registry=registry)
        env = InlineEnvironment()
        server.attach_environment(env)
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.step()
        # hard stop: reopen the store from disk, as after a host reboot
        reopened = store.reopen()
        env2 = InlineEnvironment()
        recovered = BioOperaServer.recover(reopened, registry,
                                           environment=env2)
        env2.run_instance(iid)
        assert recovered.instance(iid).outputs == {"v": 3}
        reopened.close()

    def test_recovery_report_shows_bounded_cost(self, tmp_path):
        from repro.store import OperaStore

        registry = ProgramRegistry()
        for name, fn in chain_programs().items():
            registry.register(name, fn)
        store = OperaStore(str(tmp_path / "opera"))
        server = BioOperaServer(store=store, registry=registry)
        env = InlineEnvironment()
        server.attach_environment(env)
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        store.checkpoint()
        reopened = store.reopen()
        report = recovery_report(reopened)
        # checkpointed just before the reopen: nothing to replay, however
        # long the run was
        assert report["records_replayed"] == 0
        assert report["checkpoint_position"] > 0
        assert report["repairs"] == []
        assert report["instances"] == 1
        assert report["events_by_instance"][iid] \
            == reopened.instances.event_count(iid)
        reopened.close()


class TestReplay:
    def test_replay_matches_live_state(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        live = server.instance(iid)
        replayed = replay_instance(server.store, iid, server._resolver)
        assert replayed.status == live.status
        assert replayed.outputs == live.outputs
        assert replayed.progress() == live.progress()
        for state in live.iter_states():
            twin = replayed.find_state(state.path)
            assert twin.status == state.status
            assert twin.outputs == state.outputs
            assert twin.cost == state.cost

    def test_verify_log_clean(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        assert verify_log(server.store, iid, server._resolver) == []

    def test_verify_log_detects_missing_creation(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        server.store.instances.create("bogus", {})
        server.store.instances.append_event("bogus", {
            "type": "task_completed", "time": 0.0, "path": "X",
            "outputs": {}, "cost": 0.0, "node": "",
        })
        anomalies = verify_log(server.store, "bogus", server._resolver)
        assert anomalies


class TestSuspendResume:
    def test_suspend_stops_new_dispatch(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.step()  # A completes, B queued/dispatched... B executes next
        server.suspend(iid, "operator")
        # drain whatever was already submitted
        env.run_until_idle()
        instance = server.instance(iid)
        assert instance.status == "suspended"
        assert instance.find_state("C").status == "inactive"
        server.resume(iid)
        env.run_instance(iid)
        assert server.instance(iid).status == "completed"

    def test_suspend_terminal_instance_rejected(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        with pytest.raises(InvalidStateError):
            server.suspend(iid)

    def test_resume_running_instance_rejected(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        with pytest.raises(InvalidStateError):
            server.resume(iid)

    def test_suspension_survives_recovery(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.step()
        server.suspend(iid)
        env.run_until_idle()
        server.crash()
        env2 = InlineEnvironment()
        recovered = BioOperaServer.recover(server.store, server.registry,
                                           environment=env2)
        assert recovered.instance(iid).status == "suspended"
        env2.run_until_idle()
        assert recovered.instance(iid).status == "suspended"
        recovered.resume(iid)
        env2.run_instance(iid)
        assert recovered.instance(iid).status == "completed"


class TestOperatorRestart:
    def test_restart_completed_task_reruns_downstream_consistently(self):
        log = []
        server, env = make_inline_server(chain_programs(log))
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        env.run_instance(iid)
        assert log == ["a", "b", "c"]
        # operator decides B's output was wrong and re-runs it
        server.restart_task(iid, "B")
        env.run_until_idle()
        instance = server.instance(iid)
        assert instance.find_state("B").status == "completed"
        assert log.count("b") == 2

    def test_abort_cancels_queued_work(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        server.abort(iid, "not needed")
        env.run_until_idle()
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert instance.find_state("C").status == "inactive"

    def test_change_parameter_recorded(self):
        server, env = make_inline_server(chain_programs())
        server.define_template_ocr(CHAIN)
        iid = server.launch("Chain")
        server.change_parameter(iid, "tuning", 42)
        env.run_instance(iid)
        instance = server.instance(iid)
        assert instance.whiteboards[""].get("tuning") == 42
        events = [e["type"] for e in server.store.instances.events(iid)]
        assert "whiteboard_set" in events


class TestWorkLossAccounting:
    def test_lost_work_measured_by_reason(self):
        from repro.errors import ActivityFailure

        calls = {"n": 0}

        def flaky(inputs, ctx):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ActivityFailure("io-error", "first try lost")
            return ProgramResult({}, 1.0)

        server, env = make_inline_server({"t.f": flaky})
        server.define_template_ocr("""
        PROCESS P
          ACTIVITY A
            PROGRAM t.f
          END
        END
        """)
        iid = server.launch("P")
        env.run_instance(iid)
        lost = work_lost_to_failures(server.store, iid)
        assert set(lost) == {"io-error"}
        assert lost["io-error"] >= 0.0
