"""Split brain: a partitioned-but-healthy primary vs. a promoted standby.

The standby monitor promotes on silence alone, so a partition between the
primary and the standby *will* produce two live servers sharing one
durable store. The epoch fencing must make that state safe:

* promotion durably bumps the server epoch before the replacement
  dispatches anything;
* the deposed primary's late writes are fenced (it stands down the moment
  it consults the store) — nothing from the old epoch lands in the log;
* after the partition heals, the run completes with outputs byte-identical
  to a fault-free run, and the full recovery-invariant catalog holds.
"""

from repro.cluster.network import SERVER, STANDBY
from repro.core.engine.standby import attach_standby
from repro.faults import chaos, invariants
from repro.store import codec


def test_split_brain_promotion_is_safe():
    darwin = chaos.default_darwin()
    baseline = chaos.fault_free_baseline(darwin)
    kernel, cluster, _server, instance_id = chaos._build(
        darwin, kernel_seed=101,
        config=chaos.CampaignConfig(nodes=4, cpus=2, granularity=8),
    )
    # fast monitor so promotion lands while the run is still in flight
    monitor = attach_standby(cluster, takeover_after=20.0,
                             check_interval=5.0)

    # partition primary <-> standby mid-run: heartbeats stop arriving even
    # though the primary is healthy and still driving the cluster
    kernel.run(until=baseline["wall"] * 0.25)
    old = cluster.server
    assert not old.instances[instance_id].terminal, "cut must land mid-run"
    assert old.dispatcher.in_flight, "work must be in flight at the cut"
    pid = cluster.network.partition({SERVER}, {STANDBY})

    guard = kernel.now + 600.0
    while monitor.takeovers == 0 and kernel.now < guard:
        kernel.step()
    assert monitor.takeovers == 1, "silence alone must trigger promotion"
    promoted = cluster.server
    assert promoted is not old
    assert promoted.epoch == old.epoch + 1
    assert promoted.metrics["standby_takeovers"] == 1
    cluster.network.heal(pid)

    # the deposed primary still holds in-flight work from its epoch; its
    # attempt to apply a completion must fence it, not reach the log
    job_id = next(iter(old.dispatcher.in_flight))
    events_before = old.store.instances.event_count(instance_id)
    old.on_job_completed(job_id, {}, 1.0, "node001")
    assert old.up is False
    assert old.metrics["epoch_fenced"] >= 1
    assert old.store.instances.event_count(instance_id) == events_before

    status = cluster.run_until_instance_done(instance_id)
    assert status == "completed"
    final = promoted.instance(instance_id).outputs
    assert codec.encode(final) == codec.encode(
        baseline["outputs"][instance_id]
    ), "post-failover outputs must be byte-identical to the fault-free run"
    assert invariants.check_server(
        promoted, baseline_outputs=baseline["outputs"], final=True,
    ) == []
