"""Recovery re-derives construction-time state from the durable store.

A shard-local failover (and a standby promotion on another host) gets
nothing from the dead process but the store. Lease policy, quarantine
policy, shard identity, and a safely-seeded clock must all come back
from durable settings — not from arguments copied off the in-memory
corpse of the old server.
"""

import pytest

from repro.core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramRegistry,
    ProgramResult,
)
from repro.errors import EngineError

from ..conftest import make_inline_server

ONE = """
PROCESS One
  OUTPUT v = A.v
  ACTIVITY A
    PROGRAM t.a
  END
END
"""


def one_programs():
    return {"t.a": lambda inputs, ctx: ProgramResult({"v": 1}, 1.0)}


def make_registry():
    registry = ProgramRegistry()
    for name, fn in one_programs().items():
        registry.register(name, fn)
    return registry


class TestDurableRederivation:
    def crashed_server(self, configure):
        server, env = make_inline_server(one_programs())
        server.define_template_ocr(ONE)
        configure(server)
        server.launch("One")
        env.step()
        server.crash()
        return server

    def test_lease_config_rederived_from_store(self):
        old = self.crashed_server(
            lambda server: server.enable_leases(120.0, 2.0))
        recovered = BioOperaServer.recover(
            old.store, make_registry(), environment=InlineEnvironment())
        assert recovered.leases == (120.0, 2.0)

    def test_disabled_leases_stay_disabled_after_recovery(self):
        def configure(server):
            server.enable_leases(120.0, 2.0)
            server.disable_leases()

        old = self.crashed_server(configure)
        recovered = BioOperaServer.recover(
            old.store, make_registry(), environment=InlineEnvironment())
        assert recovered.leases is None

    def test_quarantine_config_rederived_from_store(self):
        old = self.crashed_server(
            lambda server: server.enable_quarantine(2, 50.0, 10.0))
        recovered = BioOperaServer.recover(
            old.store, make_registry(), environment=InlineEnvironment())
        assert recovered.quarantine == (2, 50.0, 10.0)

    def test_storeonly_recovery_clock_resumes_past_newest_event(self):
        """With no environment and no explicit clock, recovery seeds a
        StepClock past the newest durable timestamp, so the recovery
        emissions never time-travel behind the existing log."""
        old = self.crashed_server(lambda server: None)
        recovered = BioOperaServer.recover(old.store, make_registry())
        newest = max(
            float(event["time"])
            for instance_id in old.store.instances.instance_ids()
            for event in old.store.instances.events(instance_id)
            if isinstance(event.get("time"), (int, float))
        )
        assert recovered.clock() >= newest
        for instance_id in recovered.store.instances.instance_ids():
            times = [event["time"] for event
                     in recovered.store.instances.events(instance_id)
                     if isinstance(event.get("time"), (int, float))]
            assert times == sorted(times)


class TestShardIdentity:
    def test_shard_index_persisted_and_prefixes_ids(self):
        registry = make_registry()
        server = BioOperaServer(registry=registry, shard_index=3)
        server.attach_environment(InlineEnvironment())
        server.define_template_ocr(ONE)
        instance_id = server.launch("One")
        assert instance_id.startswith("s03-pi-")

    def test_conflicting_shard_index_rejected(self):
        registry = make_registry()
        server = BioOperaServer(registry=registry, shard_index=3)
        with pytest.raises(EngineError):
            BioOperaServer(store=server.store, registry=registry,
                           shard_index=4)

    def test_recovery_rederives_shard_identity(self):
        registry = make_registry()
        server = BioOperaServer(registry=registry, shard_index=3)
        env = InlineEnvironment()
        server.attach_environment(env)
        server.define_template_ocr(ONE)
        first = server.launch("One")
        env.step()
        server.crash()
        recovered = BioOperaServer.recover(
            server.store, make_registry(),
            environment=InlineEnvironment())
        second = recovered.launch("One")
        assert second.startswith("s03-pi-")
        assert second != first


class TestRequestKeyedLaunch:
    def test_same_request_key_launches_once(self):
        server, env = make_inline_server(one_programs())
        server.define_template_ocr(ONE)
        first = server.launch("One", request_key="tenant0/r1")
        second = server.launch("One", request_key="tenant0/r1")
        assert first == second
        assert len(server.instances) == 1

    def test_request_key_survives_recovery(self):
        """A redelivered launch after failover must dedup against the
        durable request marker, not in-memory state."""
        server, env = make_inline_server(one_programs())
        server.define_template_ocr(ONE)
        first = server.launch("One", request_key="tenant0/r1")
        server.crash()
        recovered = BioOperaServer.recover(
            server.store, make_registry(),
            environment=InlineEnvironment())
        assert recovered.launch("One", request_key="tenant0/r1") == first
        assert len(recovered.instances) == 1
