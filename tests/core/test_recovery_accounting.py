"""Recovery accounting: work lost to failures and the failure timeline.

``work_lost_to_failures`` backs the checkpoint-granularity ablation ("the
work lost was limited to those activities that were executing"): only the
duration of the attempt that actually failed counts, per failure reason —
a re-dispatched task that then completes adds nothing. ``failure_timeline``
feeds lifecycle reporting (the numbered markers of Figures 5 and 6).
"""

from repro.core.engine import events as ev
from repro.core.engine.recovery import failure_timeline, work_lost_to_failures
from repro.store import OperaStore


def _store_with_events(events, instance_id="pi-1"):
    store = OperaStore()
    store.instances.create(instance_id, {"template": "P", "version": 1})
    for event in events:
        store.instances.append_event(instance_id, event)
    return store, instance_id


class TestWorkLostToFailures:
    def test_counts_only_the_failed_attempts_duration(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 10.0),
            ev.task_failed("P/A", "node-down", "node001", 1, 25.0),
        ])
        assert work_lost_to_failures(store, instance_id) == {
            "node-down": 15.0,
        }

    def test_redispatched_then_completed_adds_nothing(self):
        """The re-dispatched attempt completes: only the failed attempt's
        15 seconds are lost, not the successful retry's 20."""
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 10.0),
            ev.task_failed("P/A", "node-down", "node001", 1, 25.0),
            ev.task_dispatched("P/A", "node002", "w.u", 2, 30.0),
            ev.task_completed("P/A", {}, 20.0, "node002", 50.0),
        ])
        assert work_lost_to_failures(store, instance_id) == {
            "node-down": 15.0,
        }

    def test_aggregates_by_reason_across_tasks(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 10.0),
            ev.task_failed("P/A", "io-error", "node001", 1, 16.0),
            ev.task_dispatched("P/B", "node002", "w.u", 1, 5.0),
            ev.task_failed("P/B", "io-error", "node002", 1, 13.0),
            ev.task_dispatched("P/A", "node002", "w.u", 2, 20.0),
            ev.task_failed("P/A", "node-down", "node002", 2, 24.0),
        ])
        assert work_lost_to_failures(store, instance_id) == {
            "io-error": 6.0 + 8.0,
            "node-down": 4.0,
        }

    def test_failure_without_matching_dispatch_costs_nothing(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_failed("P/A", "io-error", "node001", 1, 16.0),
        ])
        assert work_lost_to_failures(store, instance_id) == {}

    def test_clean_run_loses_nothing(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 10.0),
            ev.task_completed("P/A", {}, 5.0, "node001", 15.0),
        ])
        assert work_lost_to_failures(store, instance_id) == {}


class TestFailureTimeline:
    def test_orders_failures_with_node_and_reason(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 10.0),
            ev.task_failed("P/A", "node-down", "node001", 1, 25.0),
            ev.task_dispatched("P/A", "node002", "w.u", 2, 30.0),
            ev.task_failed("P/A", "io-error", "node002", 2, 40.0,
                           detail="scratch disk"),
        ])
        assert failure_timeline(store, instance_id) == [
            {"time": 25.0, "path": "P/A", "reason": "node-down",
             "node": "node001"},
            {"time": 40.0, "path": "P/A", "reason": "io-error",
             "node": "node002"},
        ]

    def test_includes_lifecycle_interventions(self):
        store, instance_id = _store_with_events([
            ev.instance_created("P", 1, {}, 0.0),
            ev.instance_suspended("operator", 12.0),
            ev.instance_resumed(20.0),
            ev.task_dispatched("P/A", "node001", "w.u", 1, 21.0),
            ev.task_failed("P/A", "disk-full", "node001", 1, 30.0),
            ev.instance_aborted("operator", 31.0),
        ])
        timeline = failure_timeline(store, instance_id)
        assert [entry["reason"] for entry in timeline] == [
            ev.INSTANCE_SUSPENDED, ev.INSTANCE_RESUMED,
            "disk-full", ev.INSTANCE_ABORTED,
        ]
        assert timeline[2]["node"] == "node001"
