"""Server odds and ends: registry, templates, ids, stale results."""

import pytest

from repro.core.engine import (
    BioOperaServer, InlineEnvironment, ProgramContext, ProgramRegistry,
)
from repro.errors import EngineError, UnknownInstanceError, ValidationError

from ..conftest import constant_program, make_inline_server

SIMPLE = """
PROCESS P
  ACTIVITY A
    PROGRAM t.ok
  END
END
"""


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = ProgramRegistry()
        registry.register("x", constant_program({}))
        with pytest.raises(EngineError):
            registry.register("x", constant_program({}))

    def test_replace_swaps_implementation(self):
        registry = ProgramRegistry()
        registry.register("x", constant_program({"v": 1}))
        registry.replace("x", constant_program({"v": 2}))
        ctx = ProgramContext("i", "t", 1, "n")
        assert registry.run("x", {}, ctx).outputs == {"v": 2}

    def test_unknown_program_raises(self):
        with pytest.raises(EngineError):
            ProgramRegistry().program("ghost")

    def test_bad_return_type_rejected(self):
        registry = ProgramRegistry()
        registry.register("bad", lambda i, c: {"not": "a ProgramResult"})
        with pytest.raises(EngineError):
            registry.run("bad", {}, ProgramContext("i", "t", 1, "n"))

    def test_missing_programs_for_template(self):
        from repro.core.ocr import parse_ocr

        registry = ProgramRegistry()
        registry.register("t.ok", constant_program({}))
        template = parse_ocr(SIMPLE)
        assert registry.missing_programs(template) == []
        template2 = parse_ocr(SIMPLE.replace("t.ok", "t.absent"))
        assert registry.missing_programs(template2) == ["t.absent"]

    def test_context_rng_deterministic(self):
        a = ProgramContext("i", "t", 1, "n", seed=5).rng().random()
        b = ProgramContext("i", "t", 1, "n", seed=5).rng().random()
        c = ProgramContext("i", "t", 2, "n", seed=5).rng().random()
        assert a == b
        assert a != c

    def test_describe(self):
        registry = ProgramRegistry()
        registry.register("x", constant_program({}), "does x")
        assert registry.describe("x") == "does x"
        assert registry.names() == ["x"]


class TestTemplates:
    def test_invalid_template_rejected_at_define(self):
        server, _env = make_inline_server()
        with pytest.raises(ValidationError):
            server.define_template_ocr("""
            PROCESS Bad
              ACTIVITY A
                PROGRAM p
                IN x = Ghost.out
              END
            END
            """)

    def test_versions_accumulate(self):
        server, _env = make_inline_server({"t.ok": constant_program({})})
        assert server.define_template_ocr(SIMPLE) == 1
        assert server.define_template_ocr(SIMPLE) == 2
        _template, version = server.resolve_template("P")
        assert version == 2
        _t1, v1 = server.resolve_template("P", 1)
        assert v1 == 1


class TestInstanceIds:
    def test_sequence(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr(SIMPLE)
        first = server.launch("P")
        second = server.launch("P")
        assert first == "pi-000001"
        assert second == "pi-000002"

    def test_explicit_id(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr(SIMPLE)
        assert server.launch("P", instance_id="my-run") == "my-run"

    def test_sequence_continues_after_recovery(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr(SIMPLE)
        server.launch("P")
        server.crash()
        recovered = BioOperaServer.recover(server.store, server.registry,
                                           environment=InlineEnvironment())
        assert recovered.launch("P") == "pi-000002"

    def test_unknown_instance(self):
        server, _env = make_inline_server()
        with pytest.raises(UnknownInstanceError):
            server.instance("ghost")


class TestStaleResults:
    def test_late_result_after_retry_is_ignored(self):
        """A result arriving for a superseded attempt must not corrupt
        state (the duplicate-result guard)."""
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr(SIMPLE)
        iid = server.launch("P")
        # fabricate a stale delivery for a job the dispatcher forgot
        server.on_job_completed(f"{iid}:A:99", {"v": "stale"}, 1.0, "nX")
        assert server.metrics["stale_results_ignored"] == 1
        env.run_instance(iid)
        state = server.instance(iid).find_state("A")
        assert state.outputs == {}

    def test_result_for_terminal_instance_ignored(self):
        server, env = make_inline_server({"t.ok": constant_program({})})
        server.define_template_ocr(SIMPLE)
        iid = server.launch("P")
        env.run_instance(iid)
        events_before = server.store.instances.event_count(iid)
        server.on_job_failed(f"{iid}:A:1", "node-crash", "n1")
        assert server.store.instances.event_count(iid) == events_before


class TestInlineEnvironment:
    def test_cancel_before_step(self):
        server, env = make_inline_server(
            {"t.ok": constant_program({"v": 1})})
        server.define_template_ocr(SIMPLE)
        iid = server.launch("P")
        job_id = f"{iid}:A:1"
        env.cancel(job_id)
        env.run_until_idle()
        assert server.instance(iid).find_state("A").status == "dispatched"

    def test_run_until_idle_guard(self):
        env = InlineEnvironment()
        assert env.run_until_idle() == 0

    def test_registers_declared_nodes(self):
        server, env = make_inline_server(
            {"t.ok": constant_program({})}, nodes={"big": 16, "small": 1})
        assert server.awareness.node("big").cpus == 16
        assert server.awareness.node("small").cpus == 1
