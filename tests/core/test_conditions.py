"""Activation-condition language: parsing, evaluation, round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.core.model.conditions import TRUE, parse_condition
from repro.core.model.data import Binding, UNDEFINED
from repro.errors import ConditionError


class DictScope:
    """Test scope: whiteboard items + task outputs from plain dicts."""

    def __init__(self, wb=None, tasks=None):
        self.wb = wb or {}
        self.tasks = tasks or {}

    def resolve(self, binding: Binding):
        if binding.kind == "const":
            return binding.value
        if binding.kind == "whiteboard":
            return self.wb.get(binding.name, UNDEFINED)
        return self.tasks.get(binding.name, {}).get(binding.field, UNDEFINED)


def evaluate(text, wb=None, tasks=None):
    return parse_condition(text).evaluate(DictScope(wb, tasks))


class TestParsing:
    def test_empty_is_true(self):
        assert parse_condition("") is TRUE
        assert parse_condition("   ") is TRUE

    def test_literals(self):
        assert evaluate("TRUE") is True
        assert evaluate("FALSE") is False
        assert parse_condition("NULL").evaluate(DictScope()) is None
        assert parse_condition("42").evaluate(DictScope()) == 42
        assert parse_condition("-3.5").evaluate(DictScope()) == -3.5
        assert parse_condition('"hi"').evaluate(DictScope()) == "hi"

    def test_keywords_case_insensitive(self):
        assert evaluate("true AND not false")

    def test_precedence_not_over_and_over_or(self):
        # NOT binds tightest; AND over OR
        assert evaluate("TRUE OR FALSE AND FALSE") is True
        assert evaluate("NOT FALSE AND TRUE") is True

    def test_parentheses(self):
        assert evaluate("(TRUE OR FALSE) AND FALSE") is False

    def test_garbage_rejected(self):
        with pytest.raises(ConditionError):
            parse_condition("AND AND")
        with pytest.raises(ConditionError):
            parse_condition("wb.x >")
        with pytest.raises(ConditionError):
            parse_condition("1 == 2 extra")
        with pytest.raises(ConditionError):
            parse_condition("(TRUE")

    def test_bare_identifier_rejected(self):
        with pytest.raises(ConditionError) as excinfo:
            parse_condition("queue_file")
        assert "wb.queue_file" in str(excinfo.value)

    def test_string_escapes(self):
        assert parse_condition('"a\\"b"').evaluate(DictScope()) == 'a"b'


class TestReferences:
    def test_whiteboard_ref(self):
        assert evaluate("wb.x == 5", wb={"x": 5})

    def test_task_output_ref(self):
        assert evaluate("Produce.value > 3", tasks={"Produce": {"value": 10}})

    def test_undefined_ref_raises(self):
        with pytest.raises(ConditionError):
            evaluate("wb.missing == 1")

    def test_defined_guard(self):
        assert evaluate("DEFINED(wb.x)", wb={"x": 1}) is True
        assert evaluate("DEFINED(wb.x)") is False
        assert evaluate("NOT DEFINED(wb.queue_file)") is True

    def test_defined_does_not_shortcircuit_and_bug(self):
        # guard + use pattern works when defined
        assert evaluate("DEFINED(wb.x) AND wb.x > 1", wb={"x": 5})

    def test_references_collected(self):
        expr = parse_condition("wb.a > 1 AND DEFINED(T.out) OR NOT wb.b")
        refs = {b.to_text() for b in expr.references()}
        assert refs == {"wb.a", "T.out", "wb.b"}


class TestComparisons:
    @pytest.mark.parametrize("text,expected", [
        ("1 < 2", True), ("2 <= 2", True), ("3 > 4", False),
        ("4 >= 5", False), ("1 == 1", True), ("1 != 1", False),
        ('"a" < "b"', True), ('"x" == "x"', True),
    ])
    def test_operators(self, text, expected):
        assert evaluate(text) is expected

    def test_mixed_type_comparison_raises(self):
        with pytest.raises(ConditionError):
            evaluate('1 < "two"')

    def test_equality_across_types_is_false(self):
        assert evaluate('1 == "1"') is False


class TestRoundTrip:
    conditions = st.sampled_from([
        "TRUE",
        "NOT DEFINED(wb.queue_file)",
        "wb.x > 5 AND Task.out == \"done\"",
        "(wb.a == 1 OR wb.b == 2) AND NOT wb.c",
        "DEFINED(T.field) AND T.field >= 2.5",
        "wb.s != \"a b c\"",
        "NOT (TRUE AND FALSE)",
    ])

    @given(conditions)
    def test_to_text_parses_back_equal(self, text):
        expr = parse_condition(text)
        assert parse_condition(expr.to_text()) == expr

    def test_equality_semantics(self):
        assert parse_condition("wb.a > 1") == parse_condition("wb.a > 1")
        assert parse_condition("wb.a > 1") != parse_condition("wb.a > 2")
