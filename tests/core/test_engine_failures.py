"""Failure handlers, spheres of atomicity, compensation."""


from repro.core.engine import ProgramResult
from repro.errors import ActivityFailure

from ..conftest import constant_program, run_process


def flaky_program(fail_times, reason="program-error"):
    """Fails the first ``fail_times`` calls, then succeeds."""
    calls = {"n": 0}

    def fn(inputs, ctx):
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise ActivityFailure(reason, f"attempt {calls['n']}")
        return ProgramResult({"ok": True, "attempts": calls["n"]}, 1.0)

    fn.calls = calls
    return fn


def always_fail(inputs, ctx):
    raise ActivityFailure("program-error", "hopeless")


class TestRetry:
    def test_retry_until_success(self):
        flaky = flaky_program(2)
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT ok = A.ok
              ACTIVITY A
                PROGRAM t.flaky
                ON_FAILURE RETRY 3 THEN ABORT
              END
            END
            """,
            {"t.flaky": flaky},
        )
        assert server.instance(iid).status == "completed"
        assert flaky.calls["n"] == 3

    def test_retries_exhausted_aborts(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE RETRY 2 THEN ABORT
              END
            END
            """,
            {"t.bad": always_fail},
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        # 1 initial + 2 retries
        assert instance.find_state("A").attempts == 3

    def test_python_exception_is_program_error(self):
        def broken(inputs, ctx):
            raise ValueError("unexpected bug")

        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.broken
                ON_FAILURE RETRY 1 THEN ABORT
              END
            END
            """,
            {"t.broken": broken},
        )
        assert server.instance(iid).status == "aborted"

    def test_failed_attempt_costs_not_counted_but_attempts_are(self):
        flaky = flaky_program(1)
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.flaky
              END
            END
            """,
            {"t.flaky": flaky},
        )
        state = server.instance(iid).find_state("A")
        assert state.attempts == 2
        assert state.program_failures == 1


class TestIgnore:
    def test_ignore_marks_completed(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE IGNORE
              END
              ACTIVITY B
                PROGRAM t.ok
              END
              CONNECT A -> B
            END
            """,
            {"t.bad": always_fail, "t.ok": constant_program({"v": 1})},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.find_state("A").outputs["ignored"] is True
        assert instance.find_state("B").status == "completed"

    def test_retry_then_ignore(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE RETRY 2 THEN IGNORE
              END
            END
            """,
            {"t.bad": always_fail},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.find_state("A").attempts == 3


class TestAlternative:
    def test_alternative_program_runs(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT v = A.v
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE ALTERNATIVE t.fallback
              END
            END
            """,
            {"t.bad": always_fail,
             "t.fallback": constant_program({"v": "plan-b"})},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.outputs == {"v": "plan-b"}
        assert instance.find_state("A").program == "t.fallback"

    def test_retry_then_alternative(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              OUTPUT v = A.v
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE RETRY 1 THEN ALTERNATIVE t.fallback
              END
            END
            """,
            {"t.bad": always_fail,
             "t.fallback": constant_program({"v": "plan-b"})},
        )
        instance = server.instance(iid)
        assert instance.outputs == {"v": "plan-b"}
        assert instance.find_state("A").attempts == 3  # 1 + 1 retry + alt

    def test_failing_alternative_aborts(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE ALTERNATIVE t.also_bad
              END
            END
            """,
            {"t.bad": always_fail, "t.also_bad": always_fail},
        )
        assert server.instance(iid).status == "aborted"


class TestAbort:
    def test_abort_handler_aborts_first_failure(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.bad
                ON_FAILURE ABORT
              END
            END
            """,
            {"t.bad": always_fail},
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert instance.find_state("A").attempts == 1

    def test_subprocess_failure_propagates(self):
        child = """
        PROCESS child
          ACTIVITY Inner
            PROGRAM t.bad
            ON_FAILURE ABORT
          END
        END
        """
        server, _env, iid = run_process(
            """
            PROCESS parent
              SUBPROCESS Sub
                TEMPLATE child
                ON_FAILURE ABORT
              END
            END
            """,
            {"t.bad": always_fail},
            extra_templates=(child,),
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert "Sub" in instance.abort_reason

    def test_subprocess_failure_ignored_at_parent(self):
        child = """
        PROCESS child
          ACTIVITY Inner
            PROGRAM t.bad
            ON_FAILURE ABORT
          END
        END
        """
        server, _env, iid = run_process(
            """
            PROCESS parent
              SUBPROCESS Sub
                TEMPLATE child
                ON_FAILURE IGNORE
              END
              ACTIVITY After
                PROGRAM t.ok
              END
              CONNECT Sub -> After
            END
            """,
            {"t.bad": always_fail, "t.ok": constant_program({})},
            extra_templates=(child,),
        )
        assert server.instance(iid).status == "completed"

    def test_parallel_body_failure_fails_parallel(self):
        def fail_on_three(inputs, ctx):
            if inputs["e"] == 3:
                raise ActivityFailure("program-error", "bad element")
            return ProgramResult({"v": inputs["e"]}, 0.1)

        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT items
              PARALLEL Fan
                FOREACH wb.items AS e
                ACTIVITY Body
                  PROGRAM t.maybe
                  ON_FAILURE RETRY 1 THEN ABORT
                END
              END
            END
            """,
            {"t.maybe": fail_on_three},
            inputs={"items": [1, 2, 3]},
        )
        assert server.instance(iid).status == "aborted"

    def test_parallel_body_failure_ignored_keeps_going(self):
        def fail_on_three(inputs, ctx):
            if inputs["e"] == 3:
                raise ActivityFailure("program-error", "bad element")
            return ProgramResult({"v": inputs["e"]}, 0.1)

        server, _env, iid = run_process(
            """
            PROCESS P
              INPUT items
              OUTPUT results = Fan.results
              PARALLEL Fan
                FOREACH wb.items AS e
                ACTIVITY Body
                  PROGRAM t.maybe
                  ON_FAILURE IGNORE
                END
              END
            END
            """,
            {"t.maybe": fail_on_three},
            inputs={"items": [1, 2, 3]},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        results = instance.outputs["results"]
        assert results[0] == {"v": 1}
        assert results[2].get("ignored") is True


class TestSpheres:
    SOURCE = """
    PROCESS P
      ACTIVITY Setup
        PROGRAM t.setup
      END
      ACTIVITY Work
        PROGRAM t.work
        ON_FAILURE RETRY 1 THEN ABORT
      END
      CONNECT Setup -> Work
      SPHERE S
        TASKS Setup Work
        COMPENSATE Setup WITH t.undo
        %ON_ABORT%
      END
    END
    """

    def test_compensation_runs_on_abort(self):
        undone = []

        def undo(inputs, ctx):
            undone.append(inputs["task"])
            return ProgramResult({"removed": True}, 0.1)

        server, _env, iid = run_process(
            self.SOURCE.replace("%ON_ABORT%", ""),
            {"t.setup": constant_program({"artifact": "tmpdir"}),
             "t.work": always_fail,
             "t.undo": undo},
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert "sphere S" in instance.abort_reason
        assert undone == ["Setup"]
        comp = instance.compensations
        assert [c["status"] for c in comp] == ["done"]

    def test_compensation_receives_task_outputs(self):
        captured = {}

        def undo(inputs, ctx):
            captured.update(inputs)
            return ProgramResult({}, 0.1)

        run_process(
            self.SOURCE.replace("%ON_ABORT%", ""),
            {"t.setup": constant_program({"artifact": "tmpdir"}),
             "t.work": always_fail,
             "t.undo": undo},
        )
        assert captured["outputs"] == {"artifact": "tmpdir"}

    def test_continue_policy_skips_failed_task(self):
        server, _env, iid = run_process(
            self.SOURCE.replace("%ON_ABORT%", "ON_ABORT continue"),
            {"t.setup": constant_program({}),
             "t.work": always_fail,
             "t.undo": constant_program({})},
        )
        instance = server.instance(iid)
        assert instance.status == "completed"
        assert instance.find_state("Work").status == "skipped"

    def test_failure_outside_sphere_skips_compensation(self):
        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY Free
                PROGRAM t.bad
                ON_FAILURE ABORT
              END
              ACTIVITY Member
                PROGRAM t.ok
              END
              SPHERE S
                TASKS Member
                COMPENSATE Member WITH t.undo
              END
            END
            """,
            {"t.bad": always_fail, "t.ok": constant_program({}),
             "t.undo": constant_program({})},
        )
        instance = server.instance(iid)
        assert instance.status == "aborted"
        assert instance.compensations == []

    def test_multiple_compensations_reverse_order(self):
        undone = []

        def undo(inputs, ctx):
            undone.append(inputs["task"])
            return ProgramResult({}, 0.1)

        server, _env, iid = run_process(
            """
            PROCESS P
              ACTIVITY A
                PROGRAM t.ok
              END
              ACTIVITY B
                PROGRAM t.ok
              END
              ACTIVITY Bad
                PROGRAM t.bad
                ON_FAILURE ABORT
              END
              CONNECT A -> B
              CONNECT B -> Bad
              SPHERE S
                TASKS A B Bad
                COMPENSATE A WITH t.undo
                COMPENSATE B WITH t.undo
              END
            END
            """,
            {"t.ok": constant_program({}), "t.bad": always_fail,
             "t.undo": undo},
        )
        assert server.instance(iid).status == "aborted"
        assert undone == ["B", "A"]  # reverse completion order
