"""Differential contract: every view answers byte-identically to a full
rescan of the durable log — on clean runs, across chaos campaigns, and
immediately after crash recovery (satellite S5).

The invariant catalog (``repro.faults.invariants``) compares view against
rescan after every recovery and at campaign end, so ``result.ok`` below
carries the equivalence check; the direct comparisons pin it explicitly.
"""

import pytest

from repro.core.engine import BioOperaServer
from repro.core.monitor import queries
from repro.faults import chaos
from repro.faults.plan import FaultAction, FaultPlan, ScheduledFault
from repro.obs import ObservabilityHub
from repro.store import codec


@pytest.fixture(scope="module")
def darwin():
    return chaos.default_darwin()


@pytest.fixture(scope="module")
def baseline(darwin):
    result = chaos.fault_free_baseline(darwin)
    assert result["status"] == "completed"
    return result


def _assert_views_match_rescan(store, instance_id):
    pairs = [
        ([u.__dict__ for u in queries.node_usage(store, instance_id)],
         [u.__dict__ for u in queries.node_usage_rescan(store, instance_id)]),
        (queries.event_histogram(store, instance_id),
         queries.event_histogram_rescan(store, instance_id)),
        (queries.completions_over_time(store, instance_id, 25.0),
         queries.completions_over_time_rescan(store, instance_id, 25.0)),
        (queries.slowest_activities(store, instance_id, 20),
         queries.slowest_activities_rescan(store, instance_id, 20)),
        (queries.retry_hotspots(store, instance_id, 1),
         queries.retry_hotspots_rescan(store, instance_id, 1)),
        (queries.wall_time_breakdown(store, instance_id),
         queries.wall_time_breakdown_rescan(store, instance_id)),
    ]
    for viewed, rescanned in pairs:
        assert codec.encode(viewed) == codec.encode(rescanned)


def _instance_ids(server):
    return server.store.instances.instance_ids()


class TestCleanRunDifferential:
    def test_fault_free_run_views_equal_rescan(self, darwin):
        kernel, cluster, server, instance_id = chaos._build(
            darwin, kernel_seed=7, nodes=3, cpus=2, granularity=6)
        assert cluster.run_until_instance_done(instance_id) == "completed"
        assert server.obs.views.in_sync(server.store, instance_id)
        _assert_views_match_rescan(server.store, instance_id)


class TestChaosDifferential:
    def test_crash_heavy_campaign_keeps_views_equivalent(self, darwin,
                                                         baseline):
        """A plan that crashes the server AND tears a view checkpoint:
        recovery must leave every view byte-identical to a rescan (the
        invariant catalog checks after each recovery and at the end)."""
        horizon = baseline["wall"] * 1.2
        plan = FaultPlan(seed=4242, scheduled=[
            ScheduledFault("server-crash", round(horizon * 0.3, 3),
                           {"recovery_after": round(horizon * 0.2, 3)}),
        ], actions=[
            FaultAction("obs.view.checkpoint", "crash", at_hit=4),
        ])
        result = chaos.run_campaign(4242, darwin, baseline=baseline,
                                    plan=plan)
        assert result.crashes >= 1 and result.recoveries >= 1
        assert result.ok, result.violations[:4]

    def test_generated_seeds_with_checkpoint_faults_stay_ok(self, darwin,
                                                            baseline):
        """Campaign seeds whose generated plan arms the checkpoint crash
        window; each run re-checks view==rescan after every recovery."""
        nodes = ["node001", "node002", "node003", "node004"]
        seeds = [
            seed for seed in range(60)
            if "point:obs.view.checkpoint"
            in FaultPlan.generate(seed, nodes).categories()
        ][:2]
        assert seeds, "no generated plan arms obs.view.checkpoint"
        for seed in seeds:
            result = chaos.run_campaign(seed, darwin, baseline=baseline)
            assert result.ok, (seed, result.violations[:4])


class TestRecoveryDifferential:
    def test_views_equal_rescan_immediately_after_recovery(self, darwin):
        kernel, cluster, server, instance_id = chaos._build(
            darwin, kernel_seed=11, nodes=3, cpus=2, granularity=6)
        assert cluster.run_until_instance_done(instance_id) == "completed"
        server.obs.checkpoint()
        server.up = False
        survivor = server.store.simulate_crash()
        recovered = BioOperaServer.recover(
            survivor, server.registry, environment=cluster,
            observability=ObservabilityHub(checkpoint_interval=120),
        )
        for iid in _instance_ids(recovered):
            assert recovered.obs.views.in_sync(recovered.store, iid)
            _assert_views_match_rescan(recovered.store, iid)
