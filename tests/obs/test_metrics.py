"""MetricsRegistry and BoundedHistogram unit behavior."""

import pytest

from repro.obs import BoundedHistogram, MetricsRegistry


class TestBoundedHistogram:
    def test_buckets_are_inclusive_upper_edges(self):
        h = BoundedHistogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 10.0, 99.0):
            h.observe(value)
        assert h.buckets == [2, 2, 1]  # <=1, <=10, overflow
        assert h.count == 5
        assert h.total == pytest.approx(115.5)
        assert h.min == 0.5 and h.max == 99.0

    def test_memory_is_bounded(self):
        h = BoundedHistogram(bounds=(1.0,))
        for i in range(10000):
            h.observe(float(i))
        assert len(h.buckets) == 2
        assert h.count == 10000

    def test_quantiles_read_bucket_edges(self):
        h = BoundedHistogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5,) * 50 + (1.5,) * 45 + (3.0,) * 5:
            h.observe(value)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.95) == 2.0
        assert h.quantile(1.0) == 4.0

    def test_empty_summary(self):
        s = BoundedHistogram().summary()
        assert s["count"] == 0
        assert s["mean"] == 0.0
        assert s["p95"] == 0.0

    def test_summary_shape(self):
        h = BoundedHistogram(bounds=(1.0,))
        h.observe(0.5)
        h.observe(3.0)
        s = h.summary()
        assert s["buckets"] == [[1.0, 1], ["+inf", 1]]
        assert s["mean"] == pytest.approx(1.75)


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 4)
        m.set_gauge("depth", 7.0)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0
        assert m.gauge("depth") == 7.0
        assert m.gauge("missing", -1.0) == -1.0

    def test_observe_autocreates_histogram(self):
        m = MetricsRegistry()
        assert m.histogram("lat") is None
        m.observe("lat", 0.2)
        m.observe("lat", 99.0)
        assert m.histogram("lat").count == 2

    def test_snapshot_does_not_alias_live_state(self):
        m = MetricsRegistry()
        m.inc("a")
        m.observe("lat", 1.0)
        snap = m.snapshot()
        m.inc("a")
        m.observe("lat", 2.0)
        assert snap["counters"]["a"] == 1
        assert snap["histograms"]["lat"]["count"] == 1
