"""Task-span tracing: lifecycle, lineage join, Chrome-trace export."""

import json

import pytest

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult
from repro.core.engine import events as ev
from repro.core.engine.operator_console import OperatorConsole
from repro.obs import TraceCollector

OCR = """
PROCESS P
  ACTIVITY A
    PROGRAM w.u
  END
  ACTIVITY B
    PROGRAM w.u
  END
  CONNECT A -> B
END
"""


@pytest.fixture()
def traced_run():
    kernel = SimKernel(seed=41)
    cluster = SimulatedCluster(kernel, uniform(2, cpus=1),
                               execution_noise=0.1)
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({}, 10.0))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(OCR)
    instance_id = server.launch("P")
    status = cluster.run_until_instance_done(instance_id)
    assert status == "completed"
    return server, instance_id


class TestSpanLifecycle:
    def test_every_attempt_becomes_a_closed_span(self, traced_run):
        server, instance_id = traced_run
        spans = server.obs.tracing.spans_for(instance_id)
        assert {s.path for s in spans} == {"A", "B"}
        for span in spans:
            assert span.status == "completed"
            assert span.node.startswith("node")
            assert span.program == "w.u"
            assert span.span_id == \
                f"{instance_id}:{span.path}:{span.attempt}"

    def test_span_timings_are_populated(self, traced_run):
        server, instance_id = traced_run
        for span in server.obs.tracing.spans_for(instance_id):
            assert span.queue_wait is not None and span.queue_wait >= 0.0
            assert span.run_time is not None and span.run_time > 0.0
            # the environment reports node-local finish times, so the
            # report leg (finish -> event in the log) is measurable
            assert span.finished_at is not None
            assert span.report_delay is not None
            assert span.report_delay >= 0.0
            assert span.closed_at >= span.dispatched_at

    def test_summary_aggregates(self, traced_run):
        server, instance_id = traced_run
        summary = server.obs.tracing.summary(instance_id)
        assert summary["spans"] == 2
        assert summary["open"] == 0
        assert summary["completed"] == 2
        assert summary["failed"] == 0
        assert summary["run_time"]["count"] == 2
        assert summary["run_time"]["max"] >= summary["run_time"]["mean"] > 0

    def test_spans_join_lineage_records(self, traced_run):
        server, instance_id = traced_run
        records = server.store.data.lineage_records()
        assert records
        span_ids = {s.span_id for s in server.obs.tracing.spans_for()}
        for record in records:
            assert record["span"] in span_ids
            span = server.obs.tracing.find(record["span"])
            assert span.path == record["task"]


class TestCollectorStandalone:
    def test_failed_event_closes_span_with_reason(self):
        collector = TraceCollector()
        collector.open_span("i", "P/A", "node001", "w.u", 1, 5.0, 8.0)
        collector.on_event("i", ev.task_failed("P/A", "node-crash",
                                               "node001", 1, 12.0))
        (span,) = collector.spans_for("i")
        assert span.status == "failed"
        assert span.reason == "node-crash"
        assert span.queue_wait == pytest.approx(3.0)
        assert span.run_time == pytest.approx(4.0)

    def test_foreign_dispatch_event_synthesizes_a_span(self):
        # replaying a log this process never dispatched still traces
        collector = TraceCollector()
        collector.on_event("i", ev.task_dispatched("P/A", "node001",
                                                   "w.u", 2, 8.0))
        collector.on_event("i", ev.task_completed("P/A", {}, 3.0,
                                                  "node001", 12.0))
        (span,) = collector.spans_for("i")
        assert span.status == "completed"
        assert span.attempt == 2
        assert span.enqueued_at is None and span.queue_wait is None
        assert span.cost == 3.0

    def test_capacity_is_bounded(self):
        collector = TraceCollector(capacity=10)
        for i in range(50):
            collector.open_span("i", f"P/T{i}", "n", "w.u", 1, 0.0, 1.0)
        assert len(collector.spans_for()) == 10


class TestChromeExport:
    def test_trace_structure(self, traced_run):
        server, instance_id = traced_run
        trace = server.obs.tracing.chrome_trace(instance_id)
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        for event in complete:
            assert isinstance(event["ts"], int)
            assert isinstance(event["dur"], int) and event["dur"] > 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert event["args"]["span_id"].startswith(instance_id)
        names = {e["name"] for e in meta}
        assert "process_name" in names and "thread_name" in names

    def test_export_file_round_trips(self, traced_run, tmp_path):
        server, instance_id = traced_run
        path = str(tmp_path / "trace.json")
        console = OperatorConsole(server)
        assert console.export_trace(path, instance_id) == path
        with open(path, encoding="utf-8") as handle:
            loaded = json.load(handle)
        assert loaded["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])


class TestConsoleSurface:
    def test_metrics_snapshot_counts_the_run(self, traced_run):
        server, _instance_id = traced_run
        snap = OperatorConsole(server).metrics_snapshot()
        assert snap["counters"]["events_appended"] >= 7
        assert snap["counters"]["navigations"] >= 2
        assert snap["counters"]["placements"] >= 2
        assert snap["histograms"]["dispatch_latency"]["count"] == 2

    def test_trace_summary_via_console(self, traced_run):
        server, instance_id = traced_run
        summary = OperatorConsole(server).trace_summary(instance_id)
        assert summary["completed"] == 2

    def test_disabled_observability_degrades_gracefully(self, tmp_path):
        server = BioOperaServer(observability=False)
        assert server.obs is None
        console = OperatorConsole(server)
        assert console.metrics_snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        assert console.trace_summary()["spans"] == 0
        with pytest.raises(ValueError):
            console.export_trace(str(tmp_path / "t.json"))
