"""Materialized views: cursor discipline, checkpoints, crash recovery."""

import pytest

from repro.core.engine import events as ev
from repro.errors import StoreError
from repro.faults.plan import FaultAction
from repro.faults.points import FaultInjector, InjectedCrash, installed
from repro.obs import CHECKPOINT_PREFIX, ObservabilityHub
from repro.store import OperaStore
from repro.store.codec import encode


def _event_stream(n=60):
    """A synthetic mixed event log with retries, suspends, zero costs."""
    events = [ev.instance_started(0.0)]
    t = 1.0
    for i in range(n):
        path = f"P/T{i % 7}"
        node = f"node{i % 3:03d}"
        events.append(ev.task_dispatched(path, node, "w.u", 1 + i // 7, t))
        t += 1.0
        if i % 5 == 4:
            reason = "node-crash" if i % 2 else "program-error"
            events.append(ev.task_failed(path, reason, node, 1 + i // 7, t))
        else:
            cost = 0.0 if i % 6 == 0 else float(i)
            events.append(ev.task_completed(path, {}, cost, node, t))
        t += 1.0
        if i == 20:
            events.append(ev.instance_suspended("s1", t))
        if i == 25:
            events.append(ev.instance_suspended("s2", t))
        if i == 30:
            events.append(ev.instance_resumed(t))
    events.append(ev.instance_completed({}, t + 1.0))
    return events


def _store_with(events, hub=None, instance_id="pi-1"):
    store = OperaStore()
    if hub is not None:
        hub.attach(store)
    store.instances.create(instance_id, {})
    for event in events:
        store.instances.append_event(instance_id, event)
    return store


def _view_dumps(hub):
    return {v.name: encode(v.dump_state()) for v in hub.views.views}


class TestCursorDiscipline:
    def test_live_application_tracks_appends(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(), hub=hub)
        assert hub.views.in_sync(store, "pi-1")
        assert hub.views.cursors["pi-1"] == store.instances.event_count("pi-1")

    def test_redelivered_events_are_skipped(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(10), hub=hub)
        before = _view_dumps(hub)
        # re-deliver an old (seq, event): must be a no-op
        for seq, event in store.instances.events_from("pi-1", 0):
            hub.views.apply_event("pi-1", seq, event)
        assert _view_dumps(hub) == before
        assert hub.views.in_sync(store, "pi-1")

    def test_gap_raises(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(5), hub=hub)
        count = store.instances.event_count("pi-1")
        with pytest.raises(StoreError):
            hub.views.apply_event("pi-1", count + 3, ev.instance_started(0.0))


class TestBatchApplication:
    def test_batched_appends_build_identical_views(self):
        """Folding a contiguous slice per commit (the group-commit hot
        path) must produce byte-identical view state to one-at-a-time."""
        events = _event_stream()
        per_event_hub = ObservabilityHub()
        _store_with(events, hub=per_event_hub)

        batch_hub = ObservabilityHub()
        store = OperaStore()
        batch_hub.attach(store)
        store.instances.create("pi-1", {})
        for i in range(0, len(events), 7):
            store.instances.append_events("pi-1", events[i:i + 7])
        assert _view_dumps(batch_hub) == _view_dumps(per_event_hub)
        assert batch_hub.views.in_sync(store, "pi-1")

    def test_redelivered_slice_is_skipped(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(10), hub=hub)
        before = _view_dumps(hub)
        events = list(store.instances.events("pi-1"))
        hub.views.apply_events("pi-1", 0, events)  # full overlap: no-op
        assert _view_dumps(hub) == before

    def test_partially_redelivered_slice_applies_only_the_suffix(self):
        events = _event_stream(10)
        hub = ObservabilityHub()
        store = _store_with(events[:4], hub=hub)
        # slice [2, len): events 2..3 already folded, the rest is fresh
        hub.views.apply_events("pi-1", 2, events[2:])
        assert hub.views.cursors["pi-1"] == len(events)
        reference = ObservabilityHub()
        _store_with(events, hub=reference, instance_id="pi-1")
        assert _view_dumps(hub) == _view_dumps(reference)

    def test_batch_gap_raises(self):
        hub = ObservabilityHub()
        _store_with(_event_stream(5), hub=hub)
        with pytest.raises(StoreError):
            hub.views.apply_events("pi-1", 999, [ev.instance_started(0.0)])

    def test_empty_slice_is_noop(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(5), hub=hub)
        cursor = hub.views.cursors["pi-1"]
        hub.views.apply_events("pi-1", cursor, [])
        assert hub.views.cursors["pi-1"] == cursor


class TestCheckpointRecovery:
    def test_bind_catches_up_from_scratch(self):
        # No checkpoint at all: bind replays the whole log.
        live_hub = ObservabilityHub()
        store = _store_with(_event_stream(), hub=live_hub)
        cold = ObservabilityHub()
        cold.attach(store.simulate_crash())
        assert _view_dumps(cold) == _view_dumps(live_hub)

    def test_bind_replays_only_the_suffix_after_checkpoint(self):
        live_hub = ObservabilityHub()
        store = _store_with(_event_stream(20), hub=live_hub)
        live_hub.checkpoint()
        suffix = _event_stream(30)[40:]  # more events after the checkpoint
        for event in suffix:
            store.instances.append_event("pi-1", event)
        survivor = store.simulate_crash()
        recovered = ObservabilityHub()
        recovered.attach(survivor)
        # the recovered views saw checkpoint + suffix; a from-scratch fold
        # of the full surviving log must agree exactly
        oracle = ObservabilityHub()
        scratch = OperaStore()
        oracle.attach(scratch)
        scratch.instances.create("pi-1", {})
        for event in survivor.instances.events("pi-1"):
            scratch.instances.append_event("pi-1", event)
        assert _view_dumps(recovered) == _view_dumps(oracle)
        assert recovered.views.in_sync(survivor, "pi-1")

    def test_checkpoint_cursor_never_exceeds_log(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(15), hub=hub)
        hub.checkpoint()
        for view in hub.views.views:
            data = store.kv.get(CHECKPOINT_PREFIX + view.name)
            assert data["cursors"]["pi-1"] <= \
                store.instances.event_count("pi-1")

    def test_stale_checkpoint_ahead_of_log_is_rejected(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(10), hub=hub)
        count = store.instances.event_count("pi-1")
        store.kv.put(CHECKPOINT_PREFIX + "node_usage", {
            "cursors": {"pi-1": count + 5}, "state": {},
        })
        broken = ObservabilityHub()
        with pytest.raises(StoreError):
            broken.attach(store)


class TestCrashMidCheckpoint:
    def test_views_left_at_different_cursors_recover_independently(self):
        """An injected crash between per-view checkpoint transactions
        leaves some views durable at the new cursor and the rest at the
        old one; bind must catch each up independently and idempotently."""
        events = _event_stream(40)
        live_hub = ObservabilityHub()
        store = _store_with(events[:50], hub=live_hub)
        live_hub.checkpoint()  # all views durable at cursor=50
        for event in events[50:]:
            store.instances.append_event("pi-1", event)
        # crash while the 3rd view checkpoints: views 1-2 are durable at
        # the new cursor, views 3-6 still at the old one
        action = FaultAction("obs.view.checkpoint", "crash", at_hit=3)
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                live_hub.checkpoint()
        survivor = store.simulate_crash()
        cursors = set()
        for view in live_hub.views.views:
            data = survivor.kv.get(CHECKPOINT_PREFIX + view.name)
            cursors.add(data["cursors"]["pi-1"])
        assert len(cursors) == 2  # genuinely torn across the views
        recovered = ObservabilityHub()
        recovered.attach(survivor)
        oracle = ObservabilityHub()
        _store_with(list(survivor.instances.events("pi-1")), hub=oracle)
        assert _view_dumps(recovered) == _view_dumps(oracle)

    def test_replaying_the_same_suffix_twice_is_idempotent(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(20), hub=hub)
        hub.checkpoint()
        survivor = store.simulate_crash()
        first = ObservabilityHub()
        first.attach(survivor)
        once = _view_dumps(first)
        # a second recovery from the same durable state (the crash-during-
        # recovery path) must produce identical views
        second = ObservabilityHub()
        second.attach(survivor)
        assert _view_dumps(second) == once


class TestStoreCompaction:
    def test_hub_checkpoint_compacts_the_kv_log(self):
        """An observability checkpoint also checkpoints the KV store, so
        the WAL it covers is truncated — and because the view cursors are
        keys *inside* the store, the KV checkpoint embeds them: a view
        checkpoint can never lead the KV checkpoint it recovers with."""
        hub = ObservabilityHub(checkpoint_interval=10_000)
        store = _store_with(_event_stream(20), hub=hub)
        assert store.kv.wal_records > 0
        hub.checkpoint()
        assert store.kv.wal_records == 0
        assert hub.metrics.snapshot()["counters"].get("store_checkpoints") == 1
        # crash + rebind: cursors recovered from the checkpoint are in
        # step with the recovered log, views byte-identical
        survivor = store.simulate_crash()
        hub2 = ObservabilityHub()
        hub2.attach(survivor)
        assert _view_dumps(hub2) == _view_dumps(hub)
        assert survivor.kv.audit() == []

    def test_compaction_can_be_disabled(self):
        hub = ObservabilityHub(checkpoint_interval=10_000,
                               compact_store=False)
        store = _store_with(_event_stream(10), hub=hub)
        records = store.kv.wal_records
        hub.checkpoint()
        # view states were persisted (more records), nothing truncated
        assert store.kv.wal_records > records

    def test_interval_checkpoints_bound_the_log(self):
        """Streaming events through an attached hub keeps the live WAL
        bounded by the checkpoint interval, not the run length."""
        hub = ObservabilityHub(checkpoint_interval=40)
        store = _store_with(_event_stream(60), hub=hub)
        # every 40 appends the hub checkpointed and truncated; the live
        # log can never exceed one interval's worth of commits (each
        # append is 1 event record + the view-checkpoint records)
        assert store.kv.wal_records < 40 * 2 + 20
        assert store.kv.wal_position > store.kv.wal_records


class TestStateHygiene:
    def test_checkpoint_state_does_not_alias_live_state(self):
        # The in-memory KVStore returns live references; a view mutating
        # state it shares with the KV map would corrupt the audit.
        hub = ObservabilityHub()
        store = _store_with(_event_stream(20), hub=hub)
        hub.checkpoint()
        frozen = encode(store.kv.get(CHECKPOINT_PREFIX + "node_usage"))
        for event in _event_stream(5)[1:]:
            store.instances.append_event("pi-1", event)
        assert encode(store.kv.get(CHECKPOINT_PREFIX + "node_usage")) == \
            frozen
        assert store.kv.audit() == []

    def test_multi_instance_cursors_are_independent(self):
        hub = ObservabilityHub()
        store = _store_with(_event_stream(10), hub=hub, instance_id="a")
        store.instances.create("b", {})
        for event in _event_stream(3):
            store.instances.append_event("b", event)
        assert hub.views.in_sync(store, "a")
        assert hub.views.in_sync(store, "b")
        assert hub.views.cursors["a"] != hub.views.cursors["b"]
