"""Scenario scripts at reduced scale: granularity sweep, lifecycle runs."""

import pytest

from repro.bio import DarwinEngine
from repro.cluster import DAY
from repro.workloads import datasets, reporting, scenarios


@pytest.fixture(scope="module")
def study_darwin_small():
    profile = datasets.scaled_profile(80, seed=3, name="study80")
    return DarwinEngine(profile, mode="modeled", random_match_rate=2e-3,
                        sample_cap=100, seed=1)


@pytest.fixture(scope="module")
def sp_darwin_small():
    # Big enough that a day=DAY/50 scaled run spans the whole 38-day event
    # schedule (the events are what these tests exercise).
    profile = datasets.scaled_profile(12_000, seed=3, name="SP38")
    return DarwinEngine(profile, mode="modeled", random_match_rate=5e-4,
                        sample_cap=50, seed=1)


class TestGranularityStudy:
    @pytest.fixture(scope="class")
    def points(self, study_darwin_small):
        return scenarios.granularity_study(
            teu_counts=(1, 5, 15, 30, 80),
            darwin=study_darwin_small,
        )

    def test_all_runs_complete(self, points):
        assert [p.teus for p in points] == [1, 5, 15, 30, 80]
        assert all(p.matches > 0 for p in points)

    def test_cpu_grows_from_per_teu_overhead(self, points):
        # Per-run noise makes small-scale CPU only loosely monotone; the
        # paper-scale benchmark checks strict monotonicity.
        cpus = {p.teus: p.cpu_seconds for p in points}
        assert cpus[80] > cpus[1]
        assert cpus[80] > cpus[5]

    def test_one_teu_has_no_parallel_speedup(self, points):
        single = points[0]
        assert single.wall_seconds >= single.cpu_seconds * 0.8

    def test_moderate_granularity_beats_extremes(self, points):
        walls = {p.teus: p.wall_seconds for p in points}
        assert walls[30] < walls[1]
        assert walls[30] < walls[80] * 1.2  # fine grain pays overhead

    def test_activities_scale_with_teus(self, points):
        # 2 activities per TEU + user input + queue gen + preprocess + merges
        for point in points:
            assert point.activities == 2 * point.teus + 5


class TestSharedRun:
    @pytest.fixture(scope="class")
    def report(self, sp_darwin_small):
        return scenarios.shared_run(
            darwin=sp_darwin_small, granularity=48, day=DAY / 50, seed=1,
        )

    def test_completes_despite_all_events(self, report):
        assert report.status == "completed"

    def test_uses_the_33_cpu_linneus_cluster(self, report):
        assert report.max_cpus == 33.0

    def test_matches_found(self, report):
        assert report.match_count > 0

    def test_infrastructure_failures_observed_and_survived(self, report):
        assert report.failure_reasons, "scenario must exercise failures"
        infrastructure = {"node-crash", "server-recovery", "disk-full",
                          "io-error", "network-outage"}
        assert set(report.failure_reasons) & infrastructure

    def test_manual_interventions_bounded(self, report):
        # suspends/resumes of events 1, 5/6 only: dependability means
        # the operator rarely steps in
        assert report.manual_interventions <= 6

    def test_annotations_cover_scripted_events(self, report):
        labels = " ".join(label for _t, label in report.annotations)
        assert "other user needs cluster" in labels
        assert "server crash" in labels
        assert "disk space shortage" in labels

    def test_utilization_below_availability(self, report):
        assert 0.0 < report.utilization_fraction < 1.0

    def test_rework_happened_but_bounded(self, report):
        assert report.jobs_dispatched >= report.jobs_completed
        assert report.jobs_dispatched <= report.jobs_completed * 2.5


class TestNonSharedRun:
    @pytest.fixture(scope="class")
    def report(self, sp_darwin_small):
        return scenarios.nonshared_run(
            darwin=sp_darwin_small, granularity=48, day=DAY / 50, seed=1,
            upgrade_day=3.0,
        )

    def test_completes(self, report):
        assert report.status == "completed"

    def test_cpu_doubling_visible_in_trace(self, report):
        assert report.max_cpus == 16.0
        early = [a for t, a, _b in report.trace_daily[:2]]
        assert max(early) <= 8.0

    def test_high_utilization_on_dedicated_cluster(self, report):
        assert report.utilization_fraction > 0.7

    def test_four_planned_interventions(self, report):
        # suspend+resume around each of the two planned outages
        assert report.manual_interventions == 4

    def test_deterministic(self, sp_darwin_small):
        r1 = scenarios.nonshared_run(darwin=sp_darwin_small, granularity=8,
                                     day=DAY / 200, seed=9, upgrade_day=1.0)
        r2 = scenarios.nonshared_run(darwin=sp_darwin_small, granularity=8,
                                     day=DAY / 200, seed=9, upgrade_day=1.0)
        assert r1.wall_seconds == r2.wall_seconds
        assert r1.cpu_seconds == r2.cpu_seconds


class TestReporting:
    def test_granularity_table_renders(self, study_darwin_small):
        points = scenarios.granularity_study(
            teu_counts=(1, 5), darwin=study_darwin_small)
        table = reporting.granularity_table(points)
        assert "# TEUs" in table
        assert "WALL (s)" in table

    def test_table1_renders(self, sp_darwin_small):
        report = scenarios.nonshared_run(
            darwin=sp_darwin_small, granularity=8, day=DAY / 200,
            upgrade_day=1.0)
        table = reporting.table1(report, report)
        assert "Max # of CPUs" in table
        assert "CPU(pi)" in table

    def test_lifecycle_chart_renders(self, sp_darwin_small):
        report = scenarios.nonshared_run(
            darwin=sp_darwin_small, granularity=8, day=DAY / 200,
            upgrade_day=1.0)
        chart = reporting.lifecycle_chart(report)
        assert "availability" in chart
        assert "|" in chart

    def test_segments_analysis(self, study_darwin_small):
        points = scenarios.granularity_study(
            teu_counts=(1, 15, 30, 80), darwin=study_darwin_small)
        anchors = reporting.granularity_segments(points)
        assert anchors["best_cpu_at_1_teu"] is True
        assert anchors["wall_optimum_teus"] in (15, 30, 80)

    def test_format_table_alignment(self):
        table = reporting.format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1
