"""Dataset builders and their paper-fixed parameters."""

import pytest

from repro.workloads import datasets


class TestProfiles:
    def test_sp38_size(self):
        profile = datasets.sp38_profile()
        assert len(profile) == 80_000
        assert profile.name == "SP38"

    def test_sp38_mean_length_near_360(self):
        profile = datasets.sp38_profile()
        assert 330 <= profile.lengths.mean() <= 390

    def test_study_size_is_522(self):
        profile = datasets.study_profile()
        assert len(profile) == 522
        assert profile.homologous_pairs()

    def test_profiles_deterministic(self):
        a = datasets.study_profile()
        b = datasets.study_profile()
        assert (a.lengths == b.lengths).all()

    def test_scaled_profile(self):
        profile = datasets.scaled_profile(123, name="x")
        assert len(profile) == 123
        assert profile.name == "x"


class TestDarwinBuilders:
    def test_sp38_darwin_is_modeled_and_capped(self):
        darwin = datasets.sp38_darwin()
        assert darwin.mode == "modeled"
        assert darwin.sample_cap == 50
        assert darwin.random_match_rate == pytest.approx(5e-4)

    def test_study_darwin(self):
        darwin = datasets.study_darwin()
        assert len(darwin.profile) == 522

    def test_small_database_real_sequences(self):
        db = datasets.small_database(size=10)
        assert len(db) == 10
        assert all(len(entry) >= 30 for entry in db)


class TestExpectedWorkload:
    def test_sp38_total_work_in_paper_range(self):
        """The calibrated cost model puts the full SP38 all-vs-all in the
        hundreds of CPU-days (the paper's magnitude)."""
        darwin = datasets.sp38_darwin()
        model = darwin.cost_model
        lengths = darwin.profile.lengths.astype(float)
        total = lengths.sum()
        pair_cells = (total * total - (lengths ** 2).sum()) / 2.0
        fixed_days = (pair_cells * model.fixed_pam_factor
                      / model.cell_rate / 86400.0)
        assert 300 <= fixed_days <= 900

    def test_study_set_single_teu_near_paper_cpu(self):
        """CPU(1 TEU) of the 522-entry study lands near the paper's
        ~2850 s figure (within 25%)."""
        darwin = datasets.study_darwin()
        queue = list(range(1, 523))
        fixed = darwin.align_partition(queue, queue)
        refine = darwin.refine_match_set(fixed["match_set"])
        total = fixed["cost"] + refine["cost"]
        assert 2100 <= total <= 3600
