"""Amino-acid alphabet and property tables."""

import numpy as np
import pytest

from repro.bio import alphabet


class TestAlphabet:
    def test_twenty_residues(self):
        assert len(alphabet.AMINO_ACIDS) == 20
        assert len(set(alphabet.AMINO_ACIDS)) == 20

    def test_alphabetical_order(self):
        assert list(alphabet.AMINO_ACIDS) == sorted(alphabet.AMINO_ACIDS)

    def test_index_inverse(self):
        for index, residue in enumerate(alphabet.AMINO_ACIDS):
            assert alphabet.INDEX[residue] == index

    def test_frequencies_sum_to_one(self):
        assert abs(sum(alphabet.FREQUENCIES.values()) - 1.0) < 0.01
        assert np.isclose(alphabet.frequency_vector().sum(), 1.0)

    def test_frequencies_positive(self):
        assert all(f > 0 for f in alphabet.FREQUENCIES.values())

    def test_leucine_most_common(self):
        # a well-known fact of protein composition
        assert max(alphabet.FREQUENCIES, key=alphabet.FREQUENCIES.get) == "L"


class TestProperties:
    def test_property_matrix_shape(self):
        assert alphabet.property_matrix().shape == (20, 4)

    def test_property_matrix_standardized(self):
        props = alphabet.property_matrix()
        assert np.allclose(props.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(props.std(axis=0), 1.0, atol=1e-9)


class TestEncoding:
    def test_encode_decode_round_trip(self):
        sequence = "MKTAYIAKQR"
        assert alphabet.decode(alphabet.encode(sequence)) == sequence

    def test_encode_dtype(self):
        assert alphabet.encode("ACDE").dtype == np.int8

    def test_encode_invalid_residue_raises(self):
        with pytest.raises(KeyError):
            alphabet.encode("ABX")  # B and X are not in the 20-letter set

    def test_encode_empty(self):
        assert len(alphabet.encode("")) == 0
