"""Database profiles and the activity cost model."""

import numpy as np
import pytest

from repro.bio import CostModel, DatabaseProfile
from repro.errors import BioError


class TestProfile:
    def test_from_database(self, small_db, small_profile):
        assert len(small_profile) == len(small_db)
        for index in range(1, len(small_db) + 1):
            assert small_profile.length(index) == len(small_db.entry(index))

    def test_family_partners_match_database(self, small_db, small_profile):
        for index in range(1, len(small_db) + 1):
            entry = small_db.entry(index)
            partners = small_profile.family_partners(index)
            if entry.family is None:
                assert partners == []
            else:
                expected = [
                    i for i in range(1, len(small_db) + 1)
                    if i != index and small_db.entry(i).family == entry.family
                ]
                assert sorted(partners) == expected

    def test_singleton_has_no_partners(self):
        profile = DatabaseProfile("p", np.array([100, 200]),
                                  np.array([-1, -1]))
        assert profile.family_partners(1) == []

    def test_homologous_pairs_sorted_i_lt_j(self):
        profile = DatabaseProfile.synthetic("p", 60, seed=2,
                                            family_fraction=0.5)
        pairs = profile.homologous_pairs()
        assert pairs == sorted(pairs)
        assert all(i < j for i, j in pairs)

    def test_synthetic_deterministic(self):
        p1 = DatabaseProfile.synthetic("p", 100, seed=5)
        p2 = DatabaseProfile.synthetic("p", 100, seed=5)
        assert (p1.lengths == p2.lengths).all()
        assert (p1.families == p2.families).all()

    def test_synthetic_length_bounds(self):
        profile = DatabaseProfile.synthetic("p", 200, seed=1,
                                            min_length=50, max_length=500)
        assert profile.lengths.min() >= 50
        assert profile.lengths.max() <= 500

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(BioError):
            DatabaseProfile("p", np.array([1, 2]), np.array([0]))

    def test_empty_rejected(self):
        with pytest.raises(BioError):
            DatabaseProfile("p", np.array([]), np.array([]))


class TestCostModel:
    def test_init_cost_grows_with_db(self):
        model = CostModel()
        assert model.init_cost(80_000) > model.init_cost(522) > 0

    def test_pair_costs_scale_with_cells(self):
        model = CostModel()
        assert model.fixed_pair_cost(200, 300) == pytest.approx(
            2 * model.fixed_pair_cost(100, 300)
        )

    def test_refine_costlier_than_fixed(self):
        model = CostModel()
        assert (model.refine_pair_cost(360, 360)
                > model.fixed_pair_cost(360, 360))

    def test_teu_pair_count_triangular(self):
        model = CostModel()
        queue = list(range(1, 11))
        total = sum(
            model.teu_pair_count([entry], queue) for entry in queue
        )
        assert total == 45  # C(10, 2)

    def test_teu_pair_count_excludes_earlier_entries(self):
        model = CostModel()
        assert model.teu_pair_count([10], list(range(1, 11))) == 0
        assert model.teu_pair_count([1], list(range(1, 11))) == 9

    def test_teu_fixed_cost_matches_bruteforce(self):
        model = CostModel()
        profile = DatabaseProfile.synthetic("p", 30, seed=3)
        queue = list(range(1, 31))
        partition = [2, 9, 17]
        expected = sum(
            model.fixed_pair_cost(profile.length(i), profile.length(j))
            for i in partition for j in queue if j > i
        )
        assert model.teu_fixed_cost(profile, partition, queue) == pytest.approx(
            expected
        )

    def test_teu_fixed_cost_with_subset_queue(self):
        model = CostModel()
        profile = DatabaseProfile.synthetic("p", 30, seed=3)
        queue = [1, 5, 9, 13, 21]
        partition = [5, 13]
        expected = sum(
            model.fixed_pair_cost(profile.length(i), profile.length(j))
            for i in partition for j in queue if j > i
        )
        assert model.teu_fixed_cost(profile, partition, queue) == pytest.approx(
            expected
        )

    def test_partition_costs_sum_to_total(self):
        """Splitting the queue into TEUs conserves total alignment cost."""
        model = CostModel()
        profile = DatabaseProfile.synthetic("p", 40, seed=4)
        queue = list(range(1, 41))
        partitions = [queue[k::5] for k in range(5)]
        total = sum(
            model.teu_fixed_cost(profile, part, queue) for part in partitions
        )
        whole = model.teu_fixed_cost(profile, queue, queue)
        assert total == pytest.approx(whole)

    def test_calibrate_sets_positive_rate(self, small_db):
        model = CostModel()
        rate = model.calibrate(small_db, sample_pairs=2)
        assert rate > 0
        assert model.cell_rate == rate
