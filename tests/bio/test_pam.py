"""PAM-distance estimation: the similarity-maximizing search."""

import random

import pytest

from repro.bio import default_family, refine_distance, scan_distance
from repro.bio.alphabet import AMINO_ACIDS, FREQUENCIES


@pytest.fixture(scope="module")
def family():
    return default_family()


def mutate_to_pam(sequence: str, pam: float, family, seed: int = 0) -> str:
    """Evolve a sequence along the family's own substitution process."""
    rng = random.Random(f"mutate/{seed}")
    p = family.substitution_probabilities(pam)
    out = []
    for residue in sequence:
        row = p[AMINO_ACIDS.index(residue)]
        out.append(rng.choices(AMINO_ACIDS, weights=row)[0])
    return "".join(out)


def random_protein(length: int, seed: int = 0) -> str:
    rng = random.Random(f"protein/{seed}")
    residues = list(AMINO_ACIDS)
    weights = [FREQUENCIES[aa] for aa in residues]
    return "".join(rng.choices(residues, weights=weights, k=length))


class TestScan:
    def test_scan_covers_ladder(self, family):
        a = random_protein(60, seed=1)
        estimate = scan_distance(a, a, family)
        assert estimate.evaluations == len(family.standard_distances())
        assert estimate.pam in family.standard_distances()

    def test_identical_sequences_pick_smallest_distance(self, family):
        a = random_protein(80, seed=2)
        estimate = scan_distance(a, a, family)
        assert estimate.pam == min(family.standard_distances())


class TestRefine:
    def test_refinement_improves_or_matches_scan(self, family):
        a = random_protein(70, seed=3)
        b = mutate_to_pam(a, 80.0, family, seed=3)
        coarse = scan_distance(a, b, family)
        fine = refine_distance(a, b, family)
        assert fine.score >= coarse.score

    def test_more_evaluations_than_scan(self, family):
        a = random_protein(50, seed=4)
        fine = refine_distance(a, a, family)
        assert fine.evaluations > len(family.standard_distances())

    @pytest.mark.parametrize("true_pam", [30.0, 90.0, 180.0])
    def test_estimates_track_true_distance(self, family, true_pam):
        """Sequences evolved to PAM t should estimate near t, and the
        estimates must be ordered with the true distances."""
        a = random_protein(150, seed=int(true_pam))
        b = mutate_to_pam(a, true_pam, family, seed=int(true_pam))
        estimate = refine_distance(a, b, family)
        assert 0.25 * true_pam <= estimate.pam <= 3.0 * true_pam

    def test_ordering_of_estimates(self, family):
        a = random_protein(150, seed=9)
        near = mutate_to_pam(a, 20.0, family, seed=9)
        far = mutate_to_pam(a, 200.0, family, seed=9)
        est_near = refine_distance(a, near, family)
        est_far = refine_distance(a, far, family)
        assert est_near.pam < est_far.pam

    def test_score_decreases_with_divergence(self, family):
        a = random_protein(120, seed=10)
        near = mutate_to_pam(a, 20.0, family, seed=10)
        far = mutate_to_pam(a, 250.0, family, seed=10)
        assert (refine_distance(a, near, family).score
                > refine_distance(a, far, family).score)
