"""Smith-Waterman alignment: exactness, invariants, traceback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio import default_family, sw_align, sw_score
from repro.bio.align import self_score
from repro.bio.alphabet import AMINO_ACIDS
from repro.errors import AlignmentError

residues = st.text(alphabet=AMINO_ACIDS, min_size=1, max_size=25)


@pytest.fixture(scope="module")
def matrix():
    return default_family().matrix(100.0)


def reference_sw(seq_a, seq_b, matrix, gap_open, gap_extend):
    """Plain-Python Gotoh reference implementation (O(mn), slow, obvious)."""
    from repro.bio.alphabet import encode

    a, b = encode(seq_a), encode(seq_b)
    m, n = len(a), len(b)
    NEG = float("-inf")
    h = [[0.0] * (n + 1) for _ in range(m + 1)]
    e = [[NEG] * (n + 1) for _ in range(m + 1)]
    f = [[NEG] * (n + 1) for _ in range(m + 1)]
    best = 0.0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            e[i][j] = max(h[i][j - 1] - gap_open, e[i][j - 1] - gap_extend)
            f[i][j] = max(h[i - 1][j] - gap_open, f[i - 1][j] - gap_extend)
            diag = h[i - 1][j - 1] + matrix[a[i - 1], b[j - 1]]
            h[i][j] = max(0.0, diag, e[i][j], f[i][j])
            best = max(best, h[i][j])
    return best


class TestScore:
    def test_identical_sequences(self, matrix):
        seq = "MKTAYIAKQRQISFVKSHFSRQ"
        assert sw_score(seq, seq, matrix) == pytest.approx(
            self_score(seq, matrix)
        )

    def test_unrelated_short_sequences_score_low(self, matrix):
        assert sw_score("AAAA", "WWWW", matrix) == 0.0

    def test_score_nonnegative(self, matrix):
        assert sw_score("MK", "WC", matrix) >= 0.0

    def test_symmetry(self, matrix):
        a, b = "MKTAYIAKQRQISF", "MKTAYIQKQRHISF"
        assert sw_score(a, b, matrix) == pytest.approx(
            sw_score(b, a, matrix)
        )

    def test_local_alignment_ignores_junk_flanks(self, matrix):
        core = "MKTAYIAKQRQISFVKSHFSRQ"
        flanked = "WWWWW" + core + "CCCCC"
        assert sw_score(flanked, core, matrix) == pytest.approx(
            sw_score(core, core, matrix)
        )

    def test_empty_sequence_rejected(self, matrix):
        with pytest.raises(AlignmentError):
            sw_score("", "MK", matrix)

    def test_invalid_residue_rejected(self, matrix):
        with pytest.raises(AlignmentError):
            sw_score("MKX", "MK", matrix)

    @settings(max_examples=60, deadline=None)
    @given(residues, residues)
    def test_matches_reference_implementation(self, a, b):
        matrix = default_family().matrix(100.0)
        fast = sw_score(a, b, matrix, 12.0, 1.0)
        slow = reference_sw(a, b, matrix, 12.0, 1.0)
        assert fast == pytest.approx(slow, abs=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(residues, residues)
    def test_score_symmetric_property(self, a, b):
        matrix = default_family().matrix(100.0)
        assert sw_score(a, b, matrix) == pytest.approx(
            sw_score(b, a, matrix), abs=1e-6
        )

    @settings(max_examples=30, deadline=None)
    @given(residues)
    def test_self_score_is_upper_bound(self, seq):
        matrix = default_family().matrix(100.0)
        assert sw_score(seq, seq, matrix) <= self_score(seq, matrix) + 1e-9


class TestAlign:
    def test_traceback_score_matches_sw_score(self, matrix):
        a = "MKTAYIAKQRQISFVKSHFSRQ"
        b = "MKTAYIQKQRHISFVKSHFSRQ"
        alignment = sw_align(a, b, matrix)
        assert alignment.score == pytest.approx(sw_score(a, b, matrix))

    def test_identical_alignment_full_identity(self, matrix):
        seq = "MKTAYIAKQRQISF"
        alignment = sw_align(seq, seq, matrix)
        assert alignment.identity == 1.0
        assert alignment.aligned_a == seq
        assert alignment.gaps == 0

    def test_substitution_visible(self, matrix):
        a = "MKTAYIAKQRQISFVKSH"
        b = "MKTAYIAKWRQISFVKSH"
        alignment = sw_align(a, b, matrix)
        assert alignment.length == len(a)
        assert 0.9 < alignment.identity < 1.0

    def test_gap_in_alignment(self, matrix):
        a = "MKTAYIAKQRQISFVKSHFSRQLEERLGLIEVQ"
        b = "MKTAYIAKQRQISFSHFSRQLEERLGLIEVQ"  # 2-residue deletion
        alignment = sw_align(a, b, matrix)
        assert alignment.gaps == 2
        assert "--" in alignment.aligned_b

    def test_coordinates_identify_core(self, matrix):
        core = "MKTAYIAKQRQISFVKSHFSRQ"
        flanked = "WWWWW" + core + "CCCCC"
        alignment = sw_align(flanked, core, matrix)
        assert flanked[alignment.start_a:alignment.end_a] == core

    def test_aligned_strings_equal_length(self, matrix):
        alignment = sw_align("MKTAYIAKQR", "MKTAYIRQG", matrix)
        assert len(alignment.aligned_a) == len(alignment.aligned_b)

    def test_zero_score_gives_empty_alignment(self, matrix):
        alignment = sw_align("AAA", "WWW", matrix)
        assert alignment.score == 0.0
        assert alignment.length == 0

    @settings(max_examples=40, deadline=None)
    @given(residues, residues)
    def test_traceback_consistency(self, a, b):
        """The aligned strings, rescored column by column, reproduce the
        alignment score exactly."""
        matrix = default_family().matrix(100.0)
        alignment = sw_align(a, b, matrix, 12.0, 1.0)
        if alignment.length == 0:
            return
        from repro.bio.alphabet import INDEX

        score = 0.0
        in_gap = False
        for x, y in zip(alignment.aligned_a, alignment.aligned_b):
            if x == "-" or y == "-":
                score += -1.0 if in_gap else -12.0
                in_gap = True
            else:
                score += matrix[INDEX[x], INDEX[y]]
                in_gap = False
        assert score == pytest.approx(alignment.score, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(residues, residues)
    def test_ungapped_columns_match_originals(self, a, b):
        matrix = default_family().matrix(100.0)
        alignment = sw_align(a, b, matrix)
        sub_a = alignment.aligned_a.replace("-", "")
        sub_b = alignment.aligned_b.replace("-", "")
        assert sub_a == a[alignment.start_a:alignment.end_a]
        assert sub_b == b[alignment.start_b:alignment.end_b]
