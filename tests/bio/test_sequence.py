"""Sequences and synthetic databases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bio import Sequence, SequenceDatabase
from repro.errors import BioError


class TestSequence:
    def test_basic(self):
        seq = Sequence("s1", "MKT")
        assert len(seq) == 3

    def test_empty_rejected(self):
        with pytest.raises(BioError):
            Sequence("s1", "")

    def test_invalid_residue_rejected(self):
        with pytest.raises(BioError) as excinfo:
            Sequence("s1", "MKX")
        assert "X" in str(excinfo.value)


class TestDatabase:
    def test_entry_is_one_based(self):
        db = SequenceDatabase("d", [Sequence("a", "MK"), Sequence("b", "ACD")])
        assert db.entry(1).id == "a"
        assert db.entry(2).id == "b"

    def test_entry_out_of_range(self):
        db = SequenceDatabase("d", [Sequence("a", "MK")])
        with pytest.raises(BioError):
            db.entry(0)
        with pytest.raises(BioError):
            db.entry(2)

    def test_by_id(self):
        db = SequenceDatabase("d", [Sequence("a", "MK")])
        assert db.by_id("a").residues == "MK"
        with pytest.raises(BioError):
            db.by_id("zz")

    def test_duplicate_ids_rejected(self):
        with pytest.raises(BioError):
            SequenceDatabase("d", [Sequence("a", "MK"), Sequence("a", "AC")])

    def test_entry_indexes_match_paper_queue(self):
        db = SequenceDatabase("d", [Sequence(f"s{i}", "MK") for i in range(5)])
        assert db.entry_indexes() == [1, 2, 3, 4, 5]

    def test_total_residues(self):
        db = SequenceDatabase("d", [Sequence("a", "MK"), Sequence("b", "ACD")])
        assert db.total_residues() == 5


class TestSynthetic:
    def test_size(self):
        db = SequenceDatabase.synthetic("s", 30, seed=1, mean_length=50)
        assert len(db) == 30

    def test_deterministic(self):
        db1 = SequenceDatabase.synthetic("s", 20, seed=9)
        db2 = SequenceDatabase.synthetic("s", 20, seed=9)
        assert [e.residues for e in db1] == [e.residues for e in db2]

    def test_seed_changes_content(self):
        db1 = SequenceDatabase.synthetic("s", 20, seed=1)
        db2 = SequenceDatabase.synthetic("s", 20, seed=2)
        assert [e.residues for e in db1] != [e.residues for e in db2]

    def test_length_bounds(self):
        db = SequenceDatabase.synthetic("s", 50, seed=3, mean_length=40,
                                        min_length=20, max_length=80)
        assert all(20 <= len(e) <= 80 for e in db)

    def test_families_exist_with_multiple_members(self):
        db = SequenceDatabase.synthetic("s", 40, seed=4, family_fraction=0.5,
                                        family_size=4)
        families = {}
        for entry in db:
            if entry.family:
                families.setdefault(entry.family, []).append(entry)
        assert families
        assert any(len(members) >= 2 for members in families.values())

    def test_family_members_are_similar(self):
        db = SequenceDatabase.synthetic("s", 40, seed=5, family_fraction=0.5,
                                        family_size=4, mutation_rate=0.1)
        families = {}
        for entry in db:
            if entry.family:
                families.setdefault(entry.family, []).append(entry)
        name, members = next(
            (k, v) for k, v in families.items() if len(v) >= 2
        )
        a, b = members[0].residues, members[1].residues
        overlap = min(len(a), len(b))
        same = sum(1 for x, y in zip(a, b) if x == y)
        # ~90% conservation, minus end trims; random pairs would be ~6%
        assert same / overlap > 0.4

    def test_no_families_when_fraction_zero(self):
        db = SequenceDatabase.synthetic("s", 20, seed=6, family_fraction=0.0)
        assert all(e.family is None for e in db)

    def test_zero_size_rejected(self):
        with pytest.raises(BioError):
            SequenceDatabase.synthetic("s", 0)


class TestFasta:
    def test_round_trip(self):
        db = SequenceDatabase.synthetic("s", 10, seed=7, mean_length=100)
        restored = SequenceDatabase.from_fasta("s", db.to_fasta())
        assert [e.id for e in restored] == [e.id for e in db]
        assert [e.residues for e in restored] == [e.residues for e in db]
        assert [e.family for e in restored] == [e.family for e in db]

    def test_long_sequences_wrapped(self):
        db = SequenceDatabase("d", [Sequence("a", "M" * 150)])
        lines = db.to_fasta().splitlines()
        assert max(len(line) for line in lines) <= 60

    def test_empty_fasta_rejected(self):
        with pytest.raises(BioError):
            SequenceDatabase.from_fasta("d", "\n\n")

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=1000))
    def test_round_trip_property(self, size, seed):
        db = SequenceDatabase.synthetic("p", size, seed=seed, mean_length=40)
        restored = SequenceDatabase.from_fasta("p", db.to_fasta())
        assert [e.residues for e in restored] == [e.residues for e in db]
