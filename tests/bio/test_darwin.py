"""DarwinEngine: real vs modeled execution, match sets, merging."""

import pytest

from repro.bio import DarwinEngine, DatabaseProfile, merge_match_sets
from repro.bio.darwin import empty_match_set
from repro.errors import BioError


class TestConstruction:
    def test_real_mode_requires_database(self, small_profile):
        with pytest.raises(BioError):
            DarwinEngine(small_profile, mode="real")

    def test_unknown_mode_rejected(self, small_profile):
        with pytest.raises(BioError):
            DarwinEngine(small_profile, mode="quantum")

    def test_size_mismatch_rejected(self, small_db):
        other = DatabaseProfile.synthetic("x", 5, seed=0)
        with pytest.raises(BioError):
            DarwinEngine(other, database=small_db, mode="real")


class TestRealAlignment:
    def test_full_queue_pair_count(self, darwin_real, small_profile):
        n = len(small_profile)
        queue = list(range(1, n + 1))
        result = darwin_real.align_partition(queue, queue)
        assert result["pairs"] == n * (n - 1) // 2

    def test_family_members_found_as_matches(self, darwin_real, small_db):
        n = len(small_db)
        queue = list(range(1, n + 1))
        result = darwin_real.align_partition(queue, queue)
        matched = {(m["i"], m["j"]) for m in result["match_set"]["matches"]}
        homologous = {
            (i, j)
            for i in queue for j in queue if i < j
            and small_db.entry(i).family is not None
            and small_db.entry(i).family == small_db.entry(j).family
        }
        assert homologous, "fixture must contain families"
        found = homologous & matched
        assert len(found) >= len(homologous) * 0.7

    def test_matches_sorted_and_above_threshold(self, darwin_real,
                                                small_profile):
        n = len(small_profile)
        queue = list(range(1, n + 1))
        matches = darwin_real.align_partition(queue, queue)["match_set"]["matches"]
        keys = [(m["i"], m["j"]) for m in matches]
        assert keys == sorted(keys)
        assert all(m["score"] >= darwin_real.match_threshold for m in matches)
        assert all(m["i"] < m["j"] for m in matches)

    def test_partition_must_be_subset_of_queue(self, darwin_real):
        with pytest.raises(BioError):
            darwin_real.align_partition([1, 99], [1, 2, 3])

    def test_cost_includes_init(self, darwin_real):
        result = darwin_real.align_partition([1], [1])
        assert result["pairs"] == 0
        assert result["cost"] >= darwin_real.init_cost()

    def test_partitioned_equals_whole(self, darwin_real, small_profile):
        """Union of per-TEU match sets == single-TEU run (no redundancy,
        no loss) — the paper's 'care was taken to rule out redundant
        comparisons'."""
        n = len(small_profile)
        queue = list(range(1, n + 1))
        whole = darwin_real.align_partition(queue, queue)["match_set"]
        parts = [queue[k::3] for k in range(3)]
        merged = merge_match_sets([
            darwin_real.align_partition(part, queue)["match_set"]
            for part in parts
        ])
        assert merged["count"] == whole["count"]
        assert merged["matches"] == whole["matches"]


class TestModeledAlignment:
    def test_deterministic(self, small_profile):
        darwin_a = DarwinEngine(small_profile, mode="modeled", seed=3)
        darwin_b = DarwinEngine(small_profile, mode="modeled", seed=3)
        queue = list(range(1, len(small_profile) + 1))
        result_a = darwin_a.align_partition(queue, queue)
        result_b = darwin_b.align_partition(queue, queue)
        assert result_a == result_b

    def test_family_pairs_always_reported(self, darwin_modeled,
                                          small_profile):
        queue = list(range(1, len(small_profile) + 1))
        matches = darwin_modeled.align_partition(queue, queue)["match_set"]
        matched = {(m["i"], m["j"]) for m in matches["matches"]}
        for i, j in small_profile.homologous_pairs():
            assert (i, j) in matched

    def test_cost_matches_cost_model(self, darwin_modeled, small_profile):
        queue = list(range(1, len(small_profile) + 1))
        result = darwin_modeled.align_partition(queue, queue)
        model = darwin_modeled.cost_model
        base = model.teu_fixed_cost(small_profile, queue, queue)
        assert result["cost"] >= base + darwin_modeled.init_cost()

    def test_sample_cap_respected(self, small_profile):
        darwin = DarwinEngine(small_profile, mode="modeled", seed=1,
                              random_match_rate=0.9, sample_cap=5)
        queue = list(range(1, len(small_profile) + 1))
        match_set = darwin.align_partition(queue, queue)["match_set"]
        assert len(match_set["matches"]) <= 5
        assert match_set["truncated"]
        assert match_set["count"] >= len(match_set["matches"])


class TestRefinement:
    def test_real_refinement_adds_pam(self, darwin_real, small_profile):
        queue = list(range(1, len(small_profile) + 1))
        first_pass = darwin_real.align_partition(queue, queue)["match_set"]
        refined = darwin_real.refine_match_set(first_pass)
        assert refined["cost"] > 0
        for match in refined["match_set"]["matches"]:
            assert "pam" in match
            assert match["pam"] > 0

    def test_modeled_refinement_family_pam_lower(self, darwin_modeled,
                                                 small_profile):
        queue = list(range(1, len(small_profile) + 1))
        first_pass = darwin_modeled.align_partition(queue, queue)["match_set"]
        refined = darwin_modeled.refine_match_set(first_pass)["match_set"]
        family_pams, random_pams = [], []
        for match in refined["matches"]:
            fam_i = small_profile.family_of(match["i"])
            fam_j = small_profile.family_of(match["j"])
            if fam_i >= 0 and fam_i == fam_j:
                family_pams.append(match["pam"])
            else:
                random_pams.append(match["pam"])
        if family_pams and random_pams:
            assert (sum(family_pams) / len(family_pams)
                    < sum(random_pams) / len(random_pams))

    def test_refining_empty_set(self, darwin_modeled):
        refined = darwin_modeled.refine_match_set(empty_match_set())
        assert refined["match_set"]["count"] == 0


class TestMergeMatchSets:
    def test_counts_are_exact(self):
        sets = [
            {"count": 3, "matches": [{"i": 1, "j": 2, "score": 90.0}],
             "truncated": True},
            {"count": 2, "matches": [{"i": 1, "j": 3, "score": 80.0}],
             "truncated": False},
        ]
        merged = merge_match_sets(sets)
        assert merged["count"] == 5
        assert merged["truncated"]

    def test_sorted_by_entry(self):
        sets = [
            {"count": 1, "matches": [{"i": 5, "j": 9, "score": 1.0}],
             "truncated": False},
            {"count": 1, "matches": [{"i": 1, "j": 2, "score": 1.0}],
             "truncated": False},
        ]
        merged = merge_match_sets(sets)
        assert [m["i"] for m in merged["matches"]] == [1, 5]

    def test_cap_applies(self):
        sets = [{"count": 10,
                 "matches": [{"i": i, "j": i + 1, "score": 1.0}
                             for i in range(10)],
                 "truncated": False}]
        merged = merge_match_sets(sets, sample_cap=4)
        assert len(merged["matches"]) == 4
        assert merged["truncated"]
        assert merged["count"] == 10

    def test_merge_of_nothing(self):
        assert merge_match_sets([]) == {
            "count": 0, "matches": [], "truncated": False
        }
