"""PAM matrix family: stochasticity, reversibility, score structure."""

import numpy as np
import pytest

from repro.bio.alphabet import INDEX, frequency_vector
from repro.bio.matrices import (
    MatrixFamily,
    default_family,
    exchangeability,
    rate_matrix,
)
from repro.errors import MatrixError


@pytest.fixture(scope="module")
def family():
    return MatrixFamily()


class TestRateMatrix:
    def test_exchangeability_symmetric_nonneg(self):
        s = exchangeability()
        assert np.allclose(s, s.T)
        assert (s >= 0).all()
        assert np.allclose(np.diag(s), 0.0)

    def test_rows_sum_to_zero(self):
        q = rate_matrix()
        assert np.allclose(q.sum(axis=1), 0.0, atol=1e-12)

    def test_off_diagonal_nonnegative(self):
        q = rate_matrix()
        off = q - np.diag(np.diag(q))
        assert (off >= 0).all()

    def test_normalized_to_one_pam(self):
        q = rate_matrix()
        freqs = frequency_vector()
        rate = -(freqs * np.diag(q)).sum()
        assert np.isclose(rate, 0.01)

    def test_detailed_balance(self):
        """Reversibility: f_i Q_ij == f_j Q_ji."""
        q = rate_matrix()
        freqs = frequency_vector()
        flux = freqs[:, None] * q
        assert np.allclose(flux, flux.T, atol=1e-12)


class TestSubstitutionProbabilities:
    def test_rows_stochastic(self, family):
        for pam in (1.0, 50.0, 250.0):
            p = family.substitution_probabilities(pam)
            assert np.allclose(p.sum(axis=1), 1.0)
            assert (p >= 0).all()

    def test_zero_time_is_identity(self, family):
        p = family.substitution_probabilities(0.0)
        assert np.allclose(p, np.eye(20), atol=1e-9)

    def test_stationary_distribution_preserved(self, family):
        freqs = frequency_vector()
        p = family.substitution_probabilities(100.0)
        assert np.allclose(freqs @ p, freqs, atol=1e-9)

    def test_long_time_approaches_stationary(self, family):
        p = family.substitution_probabilities(20000.0)
        freqs = frequency_vector()
        assert np.allclose(p, np.tile(freqs, (20, 1)), atol=1e-4)

    def test_chapman_kolmogorov(self, family):
        """P(s+t) == P(s) P(t) — the family is a true Markov semigroup."""
        p50 = family.substitution_probabilities(50.0)
        p30 = family.substitution_probabilities(30.0)
        p80 = family.substitution_probabilities(80.0)
        assert np.allclose(p50 @ p30, p80, atol=1e-9)

    def test_negative_pam_rejected(self, family):
        with pytest.raises(MatrixError):
            family.substitution_probabilities(-1.0)


class TestScoreMatrices:
    def test_symmetric(self, family):
        s = family.matrix(100.0)
        assert np.allclose(s, s.T)

    def test_diagonal_positive_at_moderate_distance(self, family):
        s = family.matrix(100.0)
        assert (np.diag(s) > 0).all()

    def test_expected_score_negative(self, family):
        """Random (unrelated) residue pairs must score negative on average,
        or local alignment scores would grow without bound."""
        s = family.matrix(100.0)
        freqs = frequency_vector()
        expected = freqs @ s @ freqs
        assert expected < 0

    def test_conservative_beats_radical(self, family):
        """I<->V (both hydrophobic, similar size) must score better than
        I<->D (hydrophobic vs charged)."""
        s = family.matrix(100.0)
        assert s[INDEX["I"], INDEX["V"]] > s[INDEX["I"], INDEX["D"]]

    def test_rare_residue_identity_scores_high(self, family):
        """W (rarest) self-score must exceed A (common) self-score."""
        s = family.matrix(100.0)
        assert s[INDEX["W"], INDEX["W"]] > s[INDEX["A"], INDEX["A"]]

    def test_diagonal_decreases_with_distance(self, family):
        near = np.diag(family.matrix(30.0)).mean()
        far = np.diag(family.matrix(250.0)).mean()
        assert near > far

    def test_caching_returns_same_object(self, family):
        assert family.matrix(100.0) is family.matrix(100.0)


class TestExpectedIdentity:
    def test_decreasing_in_distance(self, family):
        identities = [family.expected_identity(p) for p in (10, 50, 100, 250)]
        assert identities == sorted(identities, reverse=True)

    def test_pam_one_is_about_99_percent(self, family):
        assert 0.985 < family.expected_identity(1.0) < 0.9999


def test_default_family_is_shared():
    assert default_family() is default_family()
