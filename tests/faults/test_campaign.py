"""Campaign engine: parallel determinism, resume, hang reaping.

These are the robustness guarantees of the *engine itself* (the tool
every other dependability claim is validated through):

* the same spec list produces byte-identical journals whatever the
  worker-pool size (results are pure functions of seed × config);
* a campaign killed mid-flight resumes from its journal without
  re-running journaled seeds — including past a torn final line;
* a hung run is reaped by the per-run timeout, classified ``hung`` with
  its plan attached, and never stalls the pool;
* statistical sampling stops on Wilson convergence and respects the
  run cap.

Real campaigns run in worker processes here, so this file is the
slowest of the faults suite; budgets are kept small.
"""

import json
import os

import pytest

from repro.faults import stats
from repro.faults.campaign import (
    CampaignEngine,
    Journal,
    JournalError,
    RunSpec,
    run_statistical,
)
from repro.faults.chaos import CampaignConfig

CONFIG = CampaignConfig()
META = {"suite": "test_campaign"}


def _run(workers, specs, journal_path=None, **kw):
    with CampaignEngine(workers=workers, timeout=120.0,
                        journal_path=journal_path, journal_meta=META,
                        **kw) as engine:
        records = engine.run(specs)
        counters = (engine.executed, engine.resumed, engine.hung)
    return records, counters


class TestParallelDeterminism:
    SPECS = [RunSpec(seed, CONFIG) for seed in range(10)]

    def test_pool_size_does_not_change_results_or_journal(self, tmp_path):
        serial_journal = str(tmp_path / "serial.jsonl")
        parallel_journal = str(tmp_path / "parallel.jsonl")
        serial, _ = _run(1, self.SPECS, serial_journal)
        parallel, _ = _run(3, self.SPECS, parallel_journal)
        assert serial == parallel
        with open(serial_journal, "rb") as fh:
            serial_bytes = fh.read()
        with open(parallel_journal, "rb") as fh:
            parallel_bytes = fh.read()
        assert serial_bytes == parallel_bytes
        assert all(record["ok"] for record in serial)

    def test_records_carry_the_dependability_metrics(self, tmp_path):
        records, _ = _run(2, self.SPECS[:4])
        for spec, record in zip(self.SPECS, records):
            assert record["seed"] == spec.seed
            assert record["cell"] == CONFIG.label()
            for key in ("rel_throughput", "recovery_time", "wall",
                        "crashes", "recoveries", "categories", "status"):
                assert key in record
            assert record["rel_throughput"] > 0


class TestJournalResume:
    SPECS = [RunSpec(seed, CONFIG) for seed in range(8)]

    def _full_journal(self, tmp_path):
        path = str(tmp_path / "full.jsonl")
        records, _ = _run(2, self.SPECS, path)
        with open(path, encoding="utf-8") as fh:
            lines = fh.read().splitlines(keepends=True)
        return records, lines

    def test_resume_skips_journaled_seeds(self, tmp_path):
        records, lines = self._full_journal(tmp_path)
        # simulate a campaign killed after journaling 5 of 8 runs
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:6])  # header + 5 records
        resumed_records, (executed, resumed, _hung) = _run(
            2, self.SPECS, partial)
        assert resumed == 5
        assert executed == 3  # only the un-journaled tail ran
        assert resumed_records == records
        with open(partial, encoding="utf-8") as fh:
            assert fh.read().splitlines(keepends=True) == lines

    def test_resume_tolerates_a_torn_final_line(self, tmp_path):
        records, lines = self._full_journal(tmp_path)
        torn = str(tmp_path / "torn.jsonl")
        with open(torn, "w", encoding="utf-8") as fh:
            fh.writelines(lines[:4])
            fh.write(lines[4][: len(lines[4]) // 2])  # crash mid-append
        resumed_records, (executed, resumed, _hung) = _run(
            2, self.SPECS, torn)
        assert resumed == 3
        assert executed == 5  # the torn record did not count
        assert resumed_records == records

    def test_meta_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "other.jsonl")
        Journal(path, {"suite": "someone-else"}).close()
        with pytest.raises(JournalError):
            Journal(path, META)

    def test_spec_mismatch_is_rejected(self, tmp_path):
        path = str(tmp_path / "mismatch.jsonl")
        _run(1, self.SPECS[:2], path)
        other = [RunSpec(seed + 100, CONFIG) for seed in range(2)]
        with CampaignEngine(workers=1, journal_path=path,
                            journal_meta=META) as engine:
            with pytest.raises(JournalError):
                engine.run(other)


class TestHangReaping:
    def test_hung_run_is_reaped_and_classified(self, tmp_path):
        specs = [
            RunSpec(0, CONFIG),
            RunSpec(1, CONFIG, hang=True),
            RunSpec(2, CONFIG),
        ]
        failing_dir = str(tmp_path / "failing_plans")
        with CampaignEngine(workers=2, timeout=3.0,
                            failing_dir=failing_dir) as engine:
            records = engine.run(specs)
            assert engine.hung == 1
            # the pool survived the reap: it can run more work
            more = engine.run([RunSpec(3, CONFIG)])
        assert [record["status"] for record in records] \
            == ["completed", "hung", "completed"]
        hung = records[1]
        assert not hung["ok"]
        assert hung["plan"] is not None  # reproducible even though reaped
        assert hung["categories"] and hung["categories"] != ["unknown"]
        assert "wall-clock" in hung["violations"][0]
        assert more[0]["ok"]
        # the hung run's plan was dumped for triage
        dumps = os.listdir(failing_dir)
        assert len(dumps) == 1 and "seed0001" in dumps[0]
        with open(os.path.join(failing_dir, dumps[0]),
                  encoding="utf-8") as fh:
            dumped = json.load(fh)
        assert dumped["seed"] == 1
        assert dumped["status"] == "hung"
        assert dumped["plan"] == hung["plan"]


class TestStatisticalSampling:
    def test_stops_once_wilson_half_width_meets_epsilon(self):
        with CampaignEngine(workers=2, timeout=120.0) as engine:
            records = run_statistical(engine, CONFIG, epsilon=0.45,
                                      batch=6, max_runs=60)
        # a loose epsilon converges after few batches, far below the cap
        assert 6 <= len(records) < 60
        assert len(records) % 6 == 0  # whole batches
        per_category = stats.aggregate(records)
        assert stats.converged(per_category, 0.45)

    def test_run_cap_bounds_an_unreachable_epsilon(self):
        with CampaignEngine(workers=2, timeout=120.0) as engine:
            records = run_statistical(engine, CONFIG, epsilon=0.001,
                                      batch=4, max_runs=8)
        assert len(records) == 8
        assert not stats.converged(stats.aggregate(records), 0.001)
