"""The invariant checker must catch planted violations, not just pass.

A checker that returns ``[]`` on a healthy server proves nothing unless it
also *fails* on a corrupted one. Each test here plants one specific class
of corruption — a phantom completion in the log, a leaked node slot, a
wrong final output — and asserts the catalog names it.
"""

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import (
    BioOperaServer, ProgramRegistry, ProgramResult, events as ev,
)
from repro.faults import invariants

OCR = "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND"


def _completed_server(seed=41):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(2, cpus=1))
    registry = ProgramRegistry()
    registry.register("w.u", lambda inputs, ctx: ProgramResult({"x": 1}, 5.0))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(OCR)
    instance_id = server.launch("P")
    status = cluster.run_until_instance_done(instance_id)
    assert status == "completed"
    return server, instance_id


class TestHealthyServer:
    def test_clean_run_has_no_violations(self):
        server, instance_id = _completed_server()
        assert invariants.check_server(server) == []

    def test_final_checks_pass_with_matching_baseline(self):
        server, instance_id = _completed_server()
        baseline = {instance_id: server.instance(instance_id).outputs}
        assert invariants.check_server(
            server, baseline_outputs=baseline, final=True) == []


class TestPlantedViolations:
    def test_phantom_completion_is_caught(self):
        """A node-bearing completion with no live dispatch must be named
        by the exactly-once check (and the replay twin diverges too)."""
        server, instance_id = _completed_server()
        server.store.instances.append_event(instance_id, ev.task_completed(
            "P/ghost", {"x": 9}, 1.0, "node001", 99.0,
        ))
        problems = invariants.check_server(server)
        assert any("P/ghost" in p and "no live dispatch" in p
                   for p in problems)
        assert any("replay failed" in p for p in problems)

    def test_double_completion_is_caught(self):
        server, instance_id = _completed_server()
        # replay the real completion event verbatim: same path, same node
        events = list(server.store.instances.events(instance_id))
        done = next(e for e in events
                    if e["type"] == ev.TASK_COMPLETED and e.get("node"))
        server.store.instances.append_event(instance_id, dict(done))
        problems = invariants.check_server(server)
        assert any("completed" in p and ("twice" in p or "no live" in p)
                   for p in problems)

    def test_leaked_slot_is_caught(self):
        server, _ = _completed_server()
        server.awareness.assign("node001", "job-leak")
        problems = invariants.check_server(server)
        assert any("leaked slot" in p and "job-leak" in p for p in problems)

    def test_incomplete_instance_fails_final_check(self):
        kernel = SimKernel(seed=42)
        cluster = SimulatedCluster(kernel, uniform(1, cpus=1))
        registry = ProgramRegistry()
        registry.register(
            "w.u", lambda inputs, ctx: ProgramResult({}, 5.0))
        server = BioOperaServer(registry=registry)
        server.attach_environment(cluster)
        server.define_template_ocr(OCR)
        server.launch("P")  # never run to completion
        problems = invariants.check_server(server, final=True)
        assert any("expected 'completed'" in p for p in problems)

    def test_baseline_output_mismatch_fails_final_check(self):
        server, instance_id = _completed_server()
        baseline = {instance_id: {"something": "else"}}
        problems = invariants.check_server(
            server, baseline_outputs=baseline, final=True)
        assert any("fault-free baseline" in p for p in problems)
