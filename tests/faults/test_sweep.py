"""Configuration sweeps: factorial cells, CRN, Pareto, weighted ranking.

These tests run against a stub engine (fabricated run records), so they
pin the sweep *mechanics* — cell enumeration, common-random-number seed
reuse, dominance, normalization — without paying for real campaigns;
the end-to-end path is covered in ``test_campaign.py`` and the CLI.
"""

import pytest

from repro.faults import sweep
from repro.faults.chaos import CampaignConfig
from repro.faults.sweep import (
    CellOutcome,
    SweepAxis,
    cells,
    dominates,
    pareto_front,
    run_sweep,
    summarize_cell,
    weighted_scores,
)

AXES = (
    SweepAxis("sync_policy", ("group", "per-commit")),
    SweepAxis("checkpoint_interval", (10, 40)),
    SweepAxis("leases", ((900.0, 4.0), None)),
)


def _record(seed, config, ok=True, rel_throughput=1.0, recovery_time=0.0):
    return {
        "seed": seed,
        "cell": config.label(),
        "ok": ok,
        "categories": ["node-crash"],
        "rel_throughput": rel_throughput,
        "recovery_time": recovery_time,
    }


class TestCells:
    def test_full_factorial_count_and_uniqueness(self):
        configs = cells(AXES)
        assert len(configs) == 8
        assert len({config.label() for config in configs}) == 8

    def test_row_major_deterministic_order(self):
        first, second = cells(AXES), cells(AXES)
        assert [c.label() for c in first] == [c.label() for c in second]
        # first axis varies slowest
        assert all(c.sync_policy == "group" for c in first[:4])
        assert all(c.sync_policy == "per-commit" for c in first[4:])

    def test_base_config_fields_survive(self):
        base = CampaignConfig(profile="partition", granularity=4)
        for config in cells(AXES, base):
            assert config.profile == "partition"
            assert config.granularity == 4

    def test_axis_values_are_applied(self):
        intervals = {c.checkpoint_interval for c in cells(AXES)}
        assert intervals == {10, 40}
        leases = {c.leases for c in cells(AXES)}
        assert leases == {(900.0, 4.0), None}


class TestMetrics:
    def test_summarize_cell(self):
        config = CampaignConfig()
        records = [
            _record(0, config, ok=True, rel_throughput=0.8,
                    recovery_time=100.0),
            _record(1, config, ok=False, rel_throughput=0.4,
                    recovery_time=300.0),
        ]
        outcome = summarize_cell(config, records)
        assert outcome.runs == 2
        assert outcome.survived == 1
        assert outcome.metrics["survival"] == pytest.approx(0.5)
        assert outcome.metrics["throughput"] == pytest.approx(0.6)
        assert outcome.metrics["recovery"] == pytest.approx(200.0)

    def test_dominates_respects_metric_sense(self):
        better = {"survival": 1.0, "throughput": 0.9, "recovery": 50.0}
        worse = {"survival": 0.9, "throughput": 0.9, "recovery": 80.0}
        assert dominates(better, worse)
        assert not dominates(worse, better)
        # ties dominate nobody
        assert not dominates(better, dict(better))

    def test_pareto_front_keeps_undominated_and_ties(self):
        config = CampaignConfig()
        specs = [
            ("best-survival", {"survival": 1.0, "throughput": 0.5,
                               "recovery": 100.0}),
            ("best-throughput", {"survival": 0.8, "throughput": 0.9,
                                 "recovery": 100.0}),
            ("dominated", {"survival": 0.8, "throughput": 0.5,
                           "recovery": 200.0}),
            ("tied-with-best", {"survival": 1.0, "throughput": 0.5,
                                "recovery": 100.0}),
        ]
        outcomes = []
        for _name, metrics in specs:
            outcome = CellOutcome(config=config)
            outcome.metrics = metrics
            outcomes.append(outcome)
        front = pareto_front(outcomes)
        assert outcomes[0] in front
        assert outcomes[1] in front
        assert outcomes[2] not in front
        assert outcomes[3] in front  # exact tie: both stay undominated

    def test_weighted_scores_normalize_and_invert_recovery(self):
        config = CampaignConfig()
        good = CellOutcome(config=config)
        good.metrics = {"survival": 1.0, "throughput": 1.0,
                        "recovery": 10.0}
        bad = CellOutcome(config=config)
        bad.metrics = {"survival": 0.5, "throughput": 0.2,
                       "recovery": 500.0}
        weighted_scores([good, bad])
        assert good.score == pytest.approx(1.0)  # best on every axis
        assert bad.score == pytest.approx(0.0)

    def test_constant_metric_contributes_to_everyone(self):
        config = CampaignConfig()
        outcomes = []
        for recovery in (100.0, 200.0):
            outcome = CellOutcome(config=config)
            outcome.metrics = {"survival": 1.0, "throughput": 0.5,
                               "recovery": recovery}
            outcomes.append(outcome)
        weighted_scores(outcomes)
        # survival and throughput are constant: both cells get their full
        # weight; only recovery discriminates
        assert outcomes[0].score == pytest.approx(1.0)
        assert outcomes[1].score == pytest.approx(
            sweep.DEFAULT_WEIGHTS["survival"]
            + sweep.DEFAULT_WEIGHTS["throughput"])


class FakeEngine:
    """Records the seed set each cell was asked to run (CRN check)."""

    def __init__(self):
        self.calls = []

    def run(self, specs):
        self.calls.append([spec.seed for spec in specs])
        return [
            _record(spec.seed, spec.config,
                    rel_throughput=0.5 + 0.01 * (spec.seed % 3),
                    recovery_time=100.0 * spec.config.checkpoint_interval)
            for spec in specs
        ]


class TestRunSweep:
    def test_common_random_numbers_same_seed_set_per_cell(self):
        engine = FakeEngine()
        configs = cells(AXES)
        run_sweep(engine, configs, seeds=range(5))
        assert len(engine.calls) == 8
        assert all(call == list(range(5)) for call in engine.calls)

    def test_outcomes_ranked_best_first_with_pareto_marked(self):
        engine = FakeEngine()
        outcomes = run_sweep(engine, cells(AXES), seeds=range(5))
        scores = [outcome.score for outcome in outcomes]
        assert scores == sorted(scores, reverse=True)
        front = [outcome for outcome in outcomes if outcome.pareto]
        assert front  # at least one undominated cell
        # ckpt=10 cells strictly beat ckpt=40 cells on the fabricated
        # recovery metric, survival/throughput equal -> 40s dominated
        assert all(o.config.checkpoint_interval == 10 for o in front)
