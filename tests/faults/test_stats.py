"""Wilson intervals and the statistical stop rule.

The campaign engine's convergence decisions ride entirely on this
module, so the interval math is pinned against hand-computed values and
the structural properties that make the stop rule sound: bounds stay in
[0, 1], the interval always contains the point estimate, and the
half-width shrinks monotonically with more evidence.
"""

import pytest

from repro.faults import stats
from repro.faults.stats import (
    CategoryStats,
    aggregate,
    converged,
    half_width,
    unconverged,
    wilson,
)


class TestWilson:
    def test_no_evidence_is_the_vacuous_interval(self):
        assert wilson(0, 0) == (0.0, 1.0)
        assert half_width(0, 0) == 0.5

    def test_bad_counts_are_rejected(self):
        with pytest.raises(ValueError):
            wilson(-1, 5)
        with pytest.raises(ValueError):
            wilson(6, 5)
        with pytest.raises(ValueError):
            wilson(0, -1)

    def test_known_value_rule_of_three_neighborhood(self):
        """0/10 at 95%: the Wilson upper bound is ~0.2775 (hand-computed;
        the rule-of-three approximation 3/n = 0.3 is nearby)."""
        low, high = wilson(0, 10)
        assert low == 0.0
        assert high == pytest.approx(0.27753, abs=1e-4)

    def test_known_value_all_survived(self):
        """35/35 at 95%: lower bound ~0.901 — the '48/50 survived'
        honesty the fixed-count report never had."""
        low, high = wilson(35, 35)
        assert high == 1.0
        assert low == pytest.approx(0.9007, abs=1e-3)

    def test_symmetry_around_half(self):
        low, high = wilson(50, 100)
        assert low == pytest.approx(1.0 - high, abs=1e-12)
        assert low < 0.5 < high

    def test_interval_contains_the_point_estimate(self):
        for trials in (1, 5, 20, 100):
            for successes in range(trials + 1):
                low, high = wilson(successes, trials)
                assert 0.0 <= low <= successes / trials <= high <= 1.0

    def test_half_width_shrinks_with_evidence(self):
        widths = [half_width(n, n) for n in (5, 10, 20, 40, 80, 160)]
        assert widths == sorted(widths, reverse=True)
        assert all(w > 0 for w in widths)


class TestCategoryStats:
    def test_observe_and_rate(self):
        entry = CategoryStats("node-crash")
        assert entry.rate == 1.0  # no evidence yet
        entry.observe(True)
        entry.observe(True)
        entry.observe(False)
        assert entry.engaged == 3
        assert entry.survived == 2
        assert entry.rate == pytest.approx(2 / 3)

    def test_converged_needs_evidence(self):
        entry = CategoryStats("x")
        assert not entry.converged(epsilon=0.5)  # zero engagements
        for _ in range(40):
            entry.observe(True)
        assert entry.converged(epsilon=0.05)
        assert not entry.converged(epsilon=0.01)

    def test_to_dict_has_the_bench_fields(self):
        entry = CategoryStats("partition", engaged=20, survived=19)
        data = entry.to_dict()
        assert set(data) == {"category", "engaged", "survived", "rate",
                             "ci_low", "ci_high", "half_width"}
        assert data["ci_low"] <= data["rate"] <= data["ci_high"]


class TestAggregateAndStopRule:
    RECORDS = [
        {"categories": ["a", "b"], "ok": True},
        {"categories": ["a"], "ok": False},
        {"categories": ["b"], "ok": True},
    ]

    def test_aggregate_per_category(self):
        per_category = aggregate(self.RECORDS)
        assert per_category["a"].engaged == 2
        assert per_category["a"].survived == 1
        assert per_category["b"].engaged == 2
        assert per_category["b"].survived == 2

    def test_aggregate_accepts_result_objects(self):
        class FakeResult:
            categories = ["c"]
            ok = True

        per_category = aggregate([FakeResult(), FakeResult()])
        assert per_category["c"].engaged == 2

    def test_empty_evidence_is_not_converged(self):
        assert not converged({}, epsilon=0.5)

    def test_unconverged_names_the_loose_categories(self):
        per_category = aggregate(
            [{"categories": ["tight"], "ok": True}] * 200
            + [{"categories": ["loose"], "ok": True}] * 3
        )
        loose = unconverged(per_category, epsilon=0.05)
        assert loose == ["loose"]
        assert not converged(per_category, epsilon=0.05)
        assert converged(per_category, epsilon=0.45)

    def test_z_is_the_95_percent_quantile(self):
        assert stats.Z_95 == pytest.approx(1.959964, abs=1e-6)
