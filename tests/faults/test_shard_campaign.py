"""Shard-profile chaos campaigns: blast radius of a shard failure.

Small batch for tier 1; the statistical acceptance run lives in
``benchmarks/chaos_run.py --profile shard``.
"""

import pytest

from repro.faults import chaos
from repro.faults.plan import FaultPlan


@pytest.fixture(scope="module")
def darwin():
    return chaos.default_darwin()


@pytest.fixture(scope="module")
def config():
    return chaos.CampaignConfig(profile="shard", granularity=4, nodes=2)


@pytest.fixture(scope="module")
def baseline(darwin, config):
    result = chaos.fault_free_baseline(darwin, config=config)
    assert result["status"] == "completed"
    return result


class TestShardPlans:
    def test_shard_profile_draws_only_shard_faults(self):
        shards = [f"s{i:02d}" for i in range(4)]
        allowed = {"shard-crash", "shard-partition", "shard-node-crash"}
        covered = set()
        for seed in range(30):
            plan = FaultPlan.generate(seed, shards, profile="shard")
            categories = set(plan.categories())
            assert categories <= allowed
            assert "shard-crash" in categories
            covered.update(categories)
        assert covered == allowed

    def test_one_victim_per_plan(self):
        """Blast radius one: every scheduled fault in a plan aims at
        the same victim fraction."""
        shards = [f"s{i:02d}" for i in range(4)]
        for seed in range(30):
            plan = FaultPlan.generate(seed, shards, profile="shard")
            victims = {fault.params["victim"]
                       for fault in plan.scheduled}
            assert len(victims) == 1


class TestShardCampaigns:
    def test_same_seed_reproduces_identically(self, darwin, config,
                                              baseline):
        first = chaos.run_campaign(1, darwin, baseline=baseline,
                                   config=config)
        second = chaos.run_campaign(1, darwin, baseline=baseline,
                                    config=config)
        assert first.ok, first.violations[:3]
        assert first.plan == second.plan
        assert (first.status, first.wall, first.events,
                first.executed) == \
               (second.status, second.wall, second.events,
                second.executed)

    def test_small_batch_survives(self, darwin, config, baseline):
        results = [chaos.run_campaign(seed, darwin, baseline=baseline,
                                      config=config)
                   for seed in range(3)]
        bad = [r for r in results if not r.ok]
        assert not bad, [(r.seed, r.status, r.violations[:2])
                        for r in bad]
