"""Every declared fault point is real: armable, firable, and honest.

The acceptance bar for the chaos harness is that each crash window in
``repro.faults.points.CATALOG`` demonstrably fires from a test — a point
nobody can hit is a point the campaigns silently never test. Alongside
firability these tests pin the *semantics* of the nastiest windows:

* a torn WAL write leaves a partial record that reopen repairs away;
* a pre-sync KV crash loses the commit, a post-sync crash keeps it;
* a ``pec.program`` error surfaces as an ordinary job failure with
  reason ``injected-fault`` (and the task retries to completion).
"""

import pytest

from repro.cluster import SimKernel, SimulatedCluster, uniform
from repro.core.engine import BioOperaServer, ProgramRegistry, ProgramResult
from repro.errors import ReproError
from repro.faults.plan import (
    PROFILES, SCHEDULED_CATEGORIES, FaultAction, FaultPlan,
)
from repro.faults.points import (
    CATALOG, FaultInjector, InjectedCrash, active, fire, installed,
)
from repro.store.kvstore import KVStore
from repro.store.wal import FileWAL, MemoryWAL

OCR = "PROCESS P\n  ACTIVITY A\n    PROGRAM w.u\n  END\nEND"


def _single_activity(seed=21, program=None):
    kernel = SimKernel(seed=seed)
    cluster = SimulatedCluster(kernel, uniform(1, cpus=1))
    registry = ProgramRegistry()
    registry.register(
        "w.u", program or (lambda inputs, ctx: ProgramResult({}, 10.0)))
    server = BioOperaServer(registry=registry)
    server.attach_environment(cluster)
    server.define_template_ocr(OCR)
    return kernel, cluster, server


class TestRegistry:
    def test_fire_is_noop_without_injector(self):
        assert active() is None
        assert fire("wal.append") is None

    def test_unknown_point_and_kind_are_rejected(self):
        with pytest.raises(ReproError):
            FaultInjector([FaultAction("no.such.point", "crash")])
        with pytest.raises(ReproError):
            FaultInjector([FaultAction("wal.append", "drop")])

    def test_catalog_kinds_are_known(self):
        for point, kinds in CATALOG.items():
            for kind in kinds:
                assert kind in ("crash", "torn", "error",
                                "drop", "duplicate", "delay"), (point, kind)

    def test_action_fires_on_exact_hit_then_disarms(self):
        injector = FaultInjector([FaultAction("wal.append", "crash",
                                              at_hit=3)])
        with installed(injector):
            fire("wal.append")
            fire("wal.append")
            assert injector.pending == 1
            with pytest.raises(InjectedCrash):
                fire("wal.append")
            assert injector.pending == 0
            fire("wal.append")  # disarmed: later hits are clean
        assert injector.hits["wal.append"] == 4
        assert [entry["hit"] for entry in injector.fired] == [3]

    def test_installed_uninstalls_even_on_crash(self):
        injector = FaultInjector([FaultAction("wal.append", "crash")])
        with pytest.raises(InjectedCrash):
            with installed(injector):
                fire("wal.append")
        assert active() is None


#: crash points a plain single-activity run passes through. Excluded:
#: recovery.replay (needs a recovery), obs.view.checkpoint and the
#: store.checkpoint.* family (a tiny run never crosses the checkpoint
#: interval), store.rotate (a tiny run never fills a segment), and the
#: store.group_commit.* pair (only fire under grouped sync policies;
#: covered in tests/store/test_group_commit.py) — all have dedicated
#: tests.
ENGINE_CRASH_POINTS = [
    point for point, kinds in CATALOG.items()
    if "crash" in kinds
    and point not in ("recovery.replay", "obs.view.checkpoint",
                      # prov.checkpoint fires on the same interval-driven
                      # hub checkpoint; dedicated test below.
                      "prov.checkpoint",
                      "store.rotate",
                      "store.checkpoint.begin",
                      "store.checkpoint.post-snapshot",
                      "store.checkpoint.truncate",
                      "store.checkpoint.post-truncate",
                      "store.group_commit.pre_sync",
                      "store.group_commit.post_sync",
                      # shard.migrate.* only fires inside a live
                      # migration; covered in tests/shard/test_migration
                      "shard.migrate.prepare",
                      "shard.migrate.export",
                      "shard.migrate.import",
                      "shard.migrate.commit",
                      "shard.migrate.activate")
]


class TestProfileCoverage:
    """Fault-point coverage of the *campaign profiles themselves*: a
    crash point that no profile ever arms is a window the campaigns
    silently stopped testing. Adding a point to ``CATALOG`` without
    teaching ``FaultPlan.generate`` to draw it fails here."""

    NODES = [f"node{i:03d}" for i in range(1, 5)]
    SAMPLE_SEEDS = 200

    def _armed_by(self, profile):
        armed = set()
        scheduled = set()
        for seed in range(self.SAMPLE_SEEDS):
            plan = FaultPlan.generate(seed, self.NODES, profile=profile)
            armed.update(action.point for action in plan.actions)
            scheduled.update(fault.category for fault in plan.scheduled)
        return armed, scheduled

    def test_every_catalog_point_is_armed_by_at_least_one_profile(self):
        armed_anywhere = set()
        for profile in PROFILES:
            armed, _ = self._armed_by(profile)
            armed_anywhere |= armed
        missing = set(CATALOG) - armed_anywhere
        assert not missing, (
            f"crash points never armed by any profile in PROFILES "
            f"(campaigns cannot exercise them): {sorted(missing)}"
        )

    def test_every_scheduled_category_is_drawn_by_at_least_one_profile(self):
        drawn_anywhere = set()
        for profile in PROFILES:
            _, scheduled = self._armed_by(profile)
            drawn_anywhere |= scheduled
        missing = set(SCHEDULED_CATEGORIES) - drawn_anywhere
        assert not missing, (
            f"scheduled disturbance categories no profile draws: "
            f"{sorted(missing)}"
        )

    def test_profiles_only_arm_cataloged_points(self):
        for profile in PROFILES:
            armed, _ = self._armed_by(profile)
            assert armed <= set(CATALOG), (
                f"profile {profile} arms unknown points: "
                f"{sorted(armed - set(CATALOG))}"
            )


class TestCrashWindows:
    @pytest.mark.parametrize("point", ENGINE_CRASH_POINTS)
    def test_each_crash_point_fires_from_a_real_run(self, point):
        """Arming any catalog crash point kills a plain single-activity
        run — proof the hot path actually passes through the window."""
        kernel, cluster, server = _single_activity()
        injector = FaultInjector([FaultAction(point, "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash) as err:
                instance_id = server.launch("P")
                cluster.run_until_instance_done(instance_id)
        assert err.value.point == point
        assert injector.fired[0]["point"] == point

    def test_obs_view_checkpoint_fires_during_checkpoint(self):
        """The checkpoint crash window fires whenever the hub persists its
        views — here forced explicitly after a completed run."""
        kernel, cluster, server = _single_activity(seed=22)
        instance_id = server.launch("P")
        cluster.run_until_instance_done(instance_id)
        action = FaultAction("obs.view.checkpoint", "crash", at_hit=2)
        injector = FaultInjector([action])
        with installed(injector):
            with pytest.raises(InjectedCrash) as err:
                server.obs.checkpoint()
        assert err.value.point == "obs.view.checkpoint"
        # the first view's transaction committed before the crash
        assert injector.fired[0]["hit"] == 2

    def test_prov_checkpoint_fires_during_checkpoint(self):
        """The provenance view checkpoints in the same hub pass as the
        event-log views; its crash window opens right before its state
        transaction."""
        kernel, cluster, server = _single_activity(seed=23)
        instance_id = server.launch("P")
        cluster.run_until_instance_done(instance_id)
        injector = FaultInjector([FaultAction("prov.checkpoint", "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash) as err:
                server.obs.checkpoint()
        assert err.value.point == "prov.checkpoint"
        assert injector.fired[0]["point"] == "prov.checkpoint"

    def test_recovery_replay_fires_during_recover(self):
        kernel, cluster, server = _single_activity()
        instance_id = server.launch("P")
        cluster.run_until_instance_done(instance_id)
        server.up = False
        injector = FaultInjector([FaultAction("recovery.replay", "crash")])
        with installed(injector):
            with pytest.raises(InjectedCrash) as err:
                BioOperaServer.recover(server.store, server.registry,
                                       environment=cluster)
        assert err.value.point == "recovery.replay"

    def test_file_wal_torn_write_is_repaired_on_reopen(self, tmp_path):
        path = str(tmp_path / "torn.wal")
        wal = FileWAL(path)
        wal.append(b"first-record")
        wal.sync()
        action = FaultAction("wal.append", "torn", torn_fraction=0.5)
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash) as err:
                wal.append(b"second-record-that-tears")
        assert err.value.torn_fraction == 0.5
        wal.close()
        # the partial record is on disk...
        import os
        assert os.path.getsize(path) > 8 + len(b"first-record")
        # ...and reopen repairs it away, keeping the valid prefix
        reopened = FileWAL(path)
        assert list(reopened.records()) == [b"first-record"]
        reopened.append(b"third")
        reopened.sync()
        assert list(reopened.records()) == [b"first-record", b"third"]
        reopened.close()

    def test_memory_wal_crash_loses_the_record(self):
        wal = MemoryWAL()
        wal.append(b"kept")
        wal.sync()
        with installed(FaultInjector([FaultAction("wal.append", "crash")])):
            with pytest.raises(InjectedCrash):
                wal.append(b"lost")
        assert list(wal.records()) == [b"kept"]

    def test_kvstore_pre_sync_crash_loses_commit(self):
        kv = KVStore()
        kv.put("a", 1)
        action = FaultAction("kvstore.commit.pre-sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                kv.put("b", 2)
        survivor = kv.simulate_crash()
        assert survivor.get("a") == 1
        assert survivor.get("b") is None  # appended but never synced

    def test_kvstore_post_sync_crash_keeps_commit(self):
        kv = KVStore()
        kv.put("a", 1)
        action = FaultAction("kvstore.commit.post-sync", "crash")
        with installed(FaultInjector([action])):
            with pytest.raises(InjectedCrash):
                kv.put("b", 2)
        survivor = kv.simulate_crash()
        assert survivor.get("b") == 2  # synced before the crash: durable

    def test_store_rotate_fires_when_a_segment_fills(self):
        """Rotation happens on the append that crosses the segment
        threshold; a crash in that window loses only the in-flight
        (unsynced) record."""
        kv = KVStore(segment_records=3)
        kv.put("k0", 0)
        kv.put("k1", 1)
        with installed(FaultInjector([FaultAction("store.rotate", "crash")])):
            with pytest.raises(InjectedCrash) as err:
                kv.put("k2", 2)
        assert err.value.point == "store.rotate"
        survivor = kv.simulate_crash()
        assert survivor.get("k1") == 1
        assert survivor.get("k2") is None  # appended but never synced
        assert survivor.audit() == []

    @pytest.mark.parametrize("point", [
        "store.checkpoint.begin",
        "store.checkpoint.post-snapshot",
        "store.checkpoint.truncate",
        "store.checkpoint.post-truncate",
    ])
    def test_store_checkpoint_crash_windows_preserve_state(self, point):
        """A crash in any checkpoint window never loses committed state:
        recovery sees either the old snapshot + full log or the new
        snapshot + suffix, both reconstructing the same store."""
        kv = KVStore(retain_history=True)
        for i in range(6):
            kv.put(f"k{i}", i)
        with installed(FaultInjector([FaultAction(point, "crash")])):
            with pytest.raises(InjectedCrash) as err:
                kv.checkpoint()
        assert err.value.point == point
        survivor = kv.simulate_crash()
        assert {k: survivor.get(k) for k in survivor.keys()} \
            == {f"k{i}": i for i in range(6)}
        assert survivor.audit() == []
        # windows at or past the snapshot write leave the log truncated
        # or truncatable; windows before it leave the full log live
        if point in ("store.checkpoint.begin",
                     "store.checkpoint.post-snapshot"):
            assert survivor.wal_records == 6
        else:
            assert survivor.wal_records == 0


class TestMessageFaults:
    def test_pec_program_error_fails_then_retries_to_completion(self):
        kernel, cluster, server = _single_activity(seed=31)
        injector = FaultInjector([FaultAction("pec.program", "error")])
        with installed(injector):
            instance_id = server.launch("P")
            status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert injector.fired[0]["point"] == "pec.program"
        events = list(server.store.instances.events(instance_id))
        failures = [e for e in events if e["type"] == "task_failed"]
        assert failures and failures[0]["reason"] == "injected-fault"

    def test_pec_report_drop_retries_and_completes(self):
        kernel, cluster, server = _single_activity(seed=32)
        injector = FaultInjector([FaultAction("pec.report", "drop")])
        with installed(injector):
            instance_id = server.launch("P")
            status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert injector.fired[0]["kind"] == "drop"
        # the dropped first send cost at least one backoff delay
        pec = cluster.pecs["node001"]
        assert pec.reports_lost == 0

    def test_pec_report_duplicate_is_deduplicated_by_server(self):
        kernel, cluster, server = _single_activity(seed=33)
        injector = FaultInjector([FaultAction("pec.report", "duplicate")])
        with installed(injector):
            instance_id = server.launch("P")
            status = cluster.run_until_instance_done(instance_id)
            kernel.run(until=kernel.now + 60.0)  # drain the second copy
        assert status == "completed"
        assert injector.fired[0]["kind"] == "duplicate"
        # the duplicate landed as a stale result, not a double completion
        events = list(server.store.instances.events(instance_id))
        completions = [e for e in events
                       if e["type"] == "task_completed" and e.get("node")]
        assert len(completions) == 1
        assert server.metrics.get("stale_results_ignored", 0) >= 1

    def test_pec_report_delay_still_completes(self):
        kernel, cluster, server = _single_activity(seed=34)
        injector = FaultInjector([FaultAction("pec.report", "delay",
                                              delay=120.0)])
        with installed(injector):
            instance_id = server.launch("P")
            status = cluster.run_until_instance_done(instance_id)
        assert status == "completed"
        assert kernel.now >= 120.0  # the report actually waited
