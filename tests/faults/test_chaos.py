"""Chaos campaigns: determinism, coverage, and failing-seed reproduction.

The harness's whole value is that a failing seed replays bit-for-bit, so
these tests pin three properties:

* the same seed produces byte-identical campaigns (fired faults, wall
  time, event counts — everything);
* plans round-trip through ``to_dict``/``from_dict`` (the JSON a failing
  campaign dumps is a complete reproduction recipe);
* a batch of seeded campaigns survives every fault category with all
  invariants holding and outputs matching the fault-free baseline.

The full 50-campaign acceptance run lives in ``benchmarks/chaos_run.py``;
here a smaller batch keeps the tier-1 suite fast while still spanning
every category across the generated plans.
"""

import pytest

from repro.faults import chaos
from repro.faults.plan import (PROFILES, SCHEDULED_CATEGORIES, FaultAction,
                               FaultPlan)
from repro.faults.points import CATALOG


@pytest.fixture(scope="module")
def darwin():
    return chaos.default_darwin()


@pytest.fixture(scope="module")
def baseline(darwin):
    result = chaos.fault_free_baseline(darwin)
    assert result["status"] == "completed"
    return result


class TestPlanGeneration:
    def test_same_seed_same_plan(self):
        nodes = ["node001", "node002", "node003", "node004"]
        assert (FaultPlan.generate(7, nodes).to_dict()
                == FaultPlan.generate(7, nodes).to_dict())
        assert (FaultPlan.generate(7, nodes).to_dict()
                != FaultPlan.generate(8, nodes).to_dict())

    def test_round_trip_is_lossless(self):
        nodes = ["node001", "node002"]
        for seed in range(10):
            plan = FaultPlan.generate(seed, nodes)
            assert FaultPlan.from_dict(plan.to_dict()).to_dict() \
                == plan.to_dict()

    def test_generated_plans_span_every_category(self):
        """Across 50 seeds (unioned over every profile) the generator
        must exercise every scheduled disturbance category and every
        crash point in the catalog; the shard-* categories only come
        from the shard profile, everything else from mixed."""
        nodes = ["node001", "node002", "node003", "node004"]
        covered = set()
        for profile in PROFILES:
            for seed in range(50):
                covered.update(
                    FaultPlan.generate(seed, nodes,
                                       profile=profile).categories())
        assert covered >= set(SCHEDULED_CATEGORIES)
        assert covered >= {f"point:{point}" for point in CATALOG}

    def test_partition_profile_draws_only_network_stress(self):
        """The ``partition`` profile is the split-brain/fencing mix: only
        fabric disturbances (plus server crashes, which force epoch bumps)
        and message-level point actions."""
        nodes = ["node001", "node002", "node003", "node004"]
        allowed = {
            "partition", "net-loss", "net-duplicate", "net-reorder",
            "network-outage", "server-crash",
            "point:pec.report", "point:network.deliver",
        }
        covered = set()
        for seed in range(30):
            plan = FaultPlan.generate(seed, nodes, profile="partition")
            assert set(plan.categories()) <= allowed
            covered.update(plan.categories())
        # ...and across seeds the whole fabric arsenal gets exercised
        assert {"partition", "net-loss", "net-duplicate",
                "net-reorder"} <= covered

    def test_unknown_profile_is_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(1, ["node001"], profile="bogus")


class TestCampaigns:
    def test_same_seed_reproduces_identically(self, darwin, baseline):
        first = chaos.run_campaign(3, darwin, baseline=baseline)
        second = chaos.run_campaign(3, darwin, baseline=baseline)
        assert first.ok and second.ok
        assert first.fired == second.fired
        assert first.plan == second.plan
        assert (first.status, first.crashes, first.recoveries,
                first.wall, first.events) == \
               (second.status, second.crashes, second.recoveries,
                second.wall, second.events)

    def test_recorded_plan_replays_the_campaign(self, darwin, baseline):
        original = chaos.run_campaign(4, darwin, baseline=baseline)
        replayed = chaos.run_campaign(
            4, darwin, baseline=baseline,
            plan=FaultPlan.from_dict(original.plan),
        )
        assert replayed.fired == original.fired
        assert replayed.wall == original.wall
        assert replayed.violations == original.violations

    def test_batch_survives_all_invariants(self, darwin, baseline):
        results = chaos.run_campaigns(range(12), darwin, baseline=baseline)
        bad = [r for r in results if not r.ok]
        assert not bad, [(r.seed, r.status, r.violations[:2]) for r in bad]
        # the batch exercised real faults, not a quiet walk-through
        assert sum(r.crashes for r in results) > 0
        assert sum(len(r.fired) for r in results) > 0
        assert sum(r.recoveries for r in results) > 0

    def test_partition_profile_campaigns_survive(self, darwin, baseline):
        """A small partition-profile batch: directed cuts, sampled loss,
        duplication, and reordering must not break any invariant, and the
        outputs must still match the fault-free baseline byte-for-byte."""
        results = chaos.run_campaigns(range(4), darwin, baseline=baseline,
                                      profile="partition")
        bad = [r for r in results if not r.ok]
        assert not bad, [(r.seed, r.status, r.violations[:2]) for r in bad]
        covered = set()
        for result in results:
            covered.update(result.categories())
        assert "partition" in covered

    def test_failing_campaign_reproduces_from_recorded_plan(
            self, darwin, baseline):
        """A hand-built hostile plan (every one of the first 60 job
        receives errors, so some task exhausts its retry budget) aborts
        the instance; its recorded plan must reproduce the same
        violations exactly."""
        hostile = FaultPlan(seed=999, actions=[
            FaultAction("pec.program", "error", at_hit=hit)
            for hit in range(1, 61)
        ])
        result = chaos.run_campaign(999, darwin, baseline=baseline,
                                    plan=hostile)
        assert not result.ok
        assert result.status != "completed"
        assert any("expected 'completed'" in v for v in result.violations)
        replay = chaos.run_campaign(
            999, darwin, baseline=baseline,
            plan=FaultPlan.from_dict(result.plan),
        )
        assert replay.violations == result.violations
        assert replay.status == result.status
