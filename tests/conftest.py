"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import pytest

from repro.bio import DarwinEngine, DatabaseProfile, SequenceDatabase
from repro.core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramRegistry,
    ProgramResult,
)


@pytest.fixture(scope="session")
def small_db() -> SequenceDatabase:
    """A small real sequence database (session-scoped: generation costs)."""
    return SequenceDatabase.synthetic(
        "mini_db", 24, seed=11, mean_length=60.0, min_length=25,
        max_length=200, family_fraction=0.4, family_size=3,
        mutation_rate=0.2,
    )


@pytest.fixture(scope="session")
def small_profile(small_db) -> DatabaseProfile:
    return DatabaseProfile.from_database(small_db)


@pytest.fixture(scope="session")
def darwin_real(small_db, small_profile) -> DarwinEngine:
    return DarwinEngine(
        small_profile, database=small_db, mode="real",
        match_threshold=60.0, seed=5,
    )


@pytest.fixture()
def darwin_modeled(small_profile) -> DarwinEngine:
    return DarwinEngine(
        small_profile, mode="modeled", match_threshold=60.0, seed=5,
    )


def constant_program(outputs: Dict[str, Any],
                     cost: float = 1.0) -> Callable:
    """A program that always returns the same outputs."""
    def fn(inputs, ctx):
        return ProgramResult(dict(outputs), cost=cost)
    return fn


def echo_program(cost: float = 1.0) -> Callable:
    """A program whose outputs are its inputs."""
    def fn(inputs, ctx):
        return ProgramResult(dict(inputs), cost=cost)
    return fn


def make_inline_server(
    programs: Optional[Dict[str, Callable]] = None,
    nodes: Optional[Dict[str, int]] = None,
    seed: int = 0,
) -> Tuple[BioOperaServer, InlineEnvironment]:
    """A server wired to an inline environment with the given programs."""
    registry = ProgramRegistry()
    for name, fn in (programs or {}).items():
        registry.register(name, fn)
    server = BioOperaServer(registry=registry, seed=seed)
    environment = InlineEnvironment(nodes=nodes)
    server.attach_environment(environment)
    return server, environment


def run_process(
    ocr_source: str,
    programs: Dict[str, Callable],
    inputs: Optional[Dict[str, Any]] = None,
    extra_templates: Tuple[str, ...] = (),
) -> Tuple[BioOperaServer, InlineEnvironment, str]:
    """Define templates, launch the last one, run to quiescence."""
    server, environment = make_inline_server(programs)
    for source in extra_templates:
        server.define_template_ocr(source)
    server.define_template_ocr(ocr_source)
    template_name = None
    for line in ocr_source.splitlines():
        line = line.strip()
        if line.startswith("PROCESS "):
            template_name = line.split()[1]
            break
    instance_id = server.launch(template_name, inputs or {})
    environment.run_instance(instance_id)
    return server, environment, instance_id
