"""Dataset builders for the paper's workloads.

The paper runs on Swiss-Prot release 38 ("80,000 amino-acid sequences")
and a 522-entry subset for the granularity study. We cannot ship
Swiss-Prot, so these builders produce synthetic equivalents (see DESIGN.md
for why the substitution preserves the evaluated behaviour):

* :func:`sp38_profile` — an 80,000-entry statistical profile for
  cost-modeled SP38-scale runs;
* :func:`study_profile` — the 522-entry granularity-study set;
* :func:`small_database` — a small *real* sequence database for runs that
  execute genuine Smith-Waterman alignments (examples, tests).
"""

from __future__ import annotations

from typing import Optional

from ..bio.costmodel import CostModel, DatabaseProfile
from ..bio.darwin import DarwinEngine
from ..bio.sequence import SequenceDatabase

#: Entry counts fixed by the paper.
SP38_SIZE = 80_000
STUDY_SIZE = 522


def sp38_profile(seed: int = 38) -> DatabaseProfile:
    """Swiss-Prot release 38, as a statistical profile."""
    return DatabaseProfile.synthetic(
        "SP38", SP38_SIZE, seed=seed,
        mean_length=360.0, family_fraction=0.3, family_size=4,
    )


def study_profile(seed: int = 7) -> DatabaseProfile:
    """The 522-entry subset used for the granularity experiments."""
    return DatabaseProfile.synthetic(
        "SP38_subset", STUDY_SIZE, seed=seed,
        mean_length=360.0, family_fraction=0.3, family_size=4,
    )


def small_database(size: int = 40, seed: int = 11,
                   mean_length: float = 90.0) -> SequenceDatabase:
    """A small real database for genuinely-computed alignments."""
    return SequenceDatabase.synthetic(
        "mini_db", size, seed=seed,
        mean_length=mean_length, min_length=30, max_length=400,
        family_fraction=0.4, family_size=3, mutation_rate=0.2,
    )


def sp38_darwin(seed: int = 0,
                cost_model: Optional[CostModel] = None) -> DarwinEngine:
    """Cost-modeled Darwin over SP38.

    The background-match rate is set so the refined match set lands in the
    low millions (the scale of Gonnet et al.'s exhaustive matching), and
    the carried sample is capped small so instance-space events stay
    compact at 512 TEUs.
    """
    return DarwinEngine(
        sp38_profile(),
        mode="modeled",
        cost_model=cost_model,
        random_match_rate=5e-4,
        sample_cap=50,
        seed=seed,
    )


def study_darwin(seed: int = 0,
                 cost_model: Optional[CostModel] = None) -> DarwinEngine:
    """Cost-modeled Darwin over the 522-entry study subset."""
    return DarwinEngine(
        study_profile(),
        mode="modeled",
        cost_model=cost_model,
        random_match_rate=2e-3,
        sample_cap=200,
        seed=seed,
    )


def scaled_profile(size: int, seed: int = 1,
                   name: str = "scaled_db") -> DatabaseProfile:
    """An arbitrary-size profile for tests and scaled-down scenario runs."""
    return DatabaseProfile.synthetic(
        name, size, seed=seed,
        mean_length=360.0, family_fraction=0.3, family_size=4,
    )
