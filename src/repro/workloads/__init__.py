"""Workloads: datasets, scripted experiment scenarios, and reporting."""

from . import datasets, reporting, scenarios
from .scenarios import (
    GranularityPoint,
    LifecycleReport,
    PAPER_TEU_COUNTS,
    granularity_study,
    nonshared_run,
    shared_run,
)

__all__ = [
    "datasets",
    "reporting",
    "scenarios",
    "GranularityPoint",
    "LifecycleReport",
    "PAPER_TEU_COUNTS",
    "granularity_study",
    "shared_run",
    "nonshared_run",
]
