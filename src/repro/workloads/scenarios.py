"""Scripted experiment runs: the paper's three experiments, end to end.

* :func:`granularity_study` — Figure 4: the all-vs-all over the 522-entry
  set on the exclusive ik-sun cluster, sweeping the number of TEUs.
* :func:`shared_run` — the first SP38 all-vs-all (Table 1 / Figure 5): the
  linneus cluster shared with other users, with the ten labelled events
  reconstructed from Section 5.4.
* :func:`nonshared_run` — the second SP38 all-vs-all (Table 1 / Figure 6):
  the dedicated ik-linux cluster, two planned network outages, and the
  day-25 upgrade that doubles every node's processors.

Every run builds a fresh kernel/cluster/server, so runs are deterministic
given their seeds, and returns a :class:`LifecycleReport` carrying the
measurements the paper reports plus the full availability/utilization
trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..bio.darwin import DarwinEngine
from ..cluster import (
    DAY, ScenarioScript, SimKernel, SimulatedCluster, ik_linux, ik_sun,
    linneus,
)
from ..core.engine import BioOperaServer
from ..processes.all_vs_all import install_all_vs_all
from . import datasets

#: The TEU counts of the Figure 4 sweep (reconstructed grid; the paper's
#: digits are garbled but the range 1..522 and the S1/S2/S3 segments are
#: fixed by the prose).
PAPER_TEU_COUNTS = (1, 5, 10, 15, 20, 25, 50, 75, 100, 150, 200, 250,
                    300, 400, 522)


@dataclass
class GranularityPoint:
    """One row of the Figure 4 table."""

    teus: int
    cpu_seconds: float
    wall_seconds: float
    activities: int
    matches: int


def granularity_study(
    teu_counts: Sequence[int] = PAPER_TEU_COUNTS,
    darwin: Optional[DarwinEngine] = None,
    seed: int = 0,
    execution_noise: float = 0.25,
) -> List[GranularityPoint]:
    """Figure 4: CPU and WALL time of the all-vs-all vs. #TEUs."""
    darwin = darwin or datasets.study_darwin(seed=seed)
    points: List[GranularityPoint] = []
    for teus in teu_counts:
        kernel = SimKernel(seed=1000 + teus * 7 + seed)
        cluster = SimulatedCluster(kernel, ik_sun(),
                                   execution_noise=execution_noise)
        server = BioOperaServer(seed=seed)
        server.attach_environment(cluster)
        install_all_vs_all(server, darwin)
        instance_id = server.launch("all_vs_all", {
            "db_name": darwin.profile.name,
            "granularity": teus,
        })
        cluster.run_until_instance_done(instance_id)
        stats = server.statistics(instance_id)
        points.append(GranularityPoint(
            teus=teus,
            cpu_seconds=stats["cpu_seconds"],
            wall_seconds=kernel.now,
            activities=stats["activities_completed"],
            matches=server.instance(instance_id).outputs["match_count"],
        ))
    return points


@dataclass
class LifecycleReport:
    """Everything Table 1 and the lifecycle figures need from one run."""

    name: str
    status: str
    wall_seconds: float
    cpu_seconds: float
    activities: int
    max_cpus: float
    utilization_fraction: float
    manual_interventions: int
    match_count: int
    jobs_dispatched: int
    jobs_completed: int
    jobs_failed: int
    stale_results: int
    nodes_failed: int
    annotations: List[Tuple[float, str]]
    trace_daily: List[Tuple[float, float, float]]
    failure_reasons: Dict[str, int]

    @property
    def wall_days(self) -> float:
        return self.wall_seconds / DAY

    @property
    def cpu_days(self) -> float:
        return self.cpu_seconds / DAY

    @property
    def cpu_per_activity(self) -> float:
        return self.cpu_seconds / self.activities if self.activities else 0.0


def _report(name: str, server: BioOperaServer, cluster: SimulatedCluster,
            instance_id: str, day: float = DAY) -> LifecycleReport:
    instance = server.instance(instance_id)
    stats = server.statistics(instance_id)
    failure_reasons: Dict[str, int] = {}
    for event in server.store.instances.events(instance_id):
        if event["type"] == "task_failed":
            reason = event["reason"]
            failure_reasons[reason] = failure_reasons.get(reason, 0) + 1
    outputs = instance.outputs or {}
    return LifecycleReport(
        name=name,
        status=instance.status,
        wall_seconds=cluster.kernel.now,
        cpu_seconds=stats["cpu_seconds"],
        activities=stats["activities_completed"],
        max_cpus=cluster.trace.max_available(),
        utilization_fraction=cluster.trace.utilization_fraction(),
        manual_interventions=server.metrics["manual_interventions"],
        match_count=outputs.get("match_count", 0) or 0,
        jobs_dispatched=server.metrics["jobs_dispatched"],
        jobs_completed=server.metrics["jobs_completed"],
        jobs_failed=server.metrics["jobs_failed"],
        stale_results=server.metrics["stale_results_ignored"],
        nodes_failed=server.metrics["nodes_failed"],
        annotations=list(cluster.trace.annotations),
        trace_daily=cluster.trace.series(step=day),
        failure_reasons=failure_reasons,
    )


def shared_run(
    darwin: Optional[DarwinEngine] = None,
    granularity: int = 512,
    seed: int = 0,
    day: float = DAY,
) -> LifecycleReport:
    """The SP38 all-vs-all on the shared linneus cluster (Fig. 5, Table 1).

    Ten labelled events reconstructed from Section 5.4:

    1.  day 2   — another user requests exclusive access: manual suspend,
                  resumed a day later;
    2.  day 5   — the sole BioOpera server crash (protocol bug), automatic
                  resume when the server restarts 4 h later;
    3.  day 8   — massive hardware failure: ten nodes down for 12 h;
    4.  day 11  — cluster heavily used by other (higher-priority) jobs for
                  three days: progress all but stops;
    5.  day 16  — shared storage fills up; nobody is watching, so the
                  process is only stopped manually half a day later;
    6.  day 17  — storage fixed, manual resume;
    7.  day 20  — second massive hardware failure (whole cluster, 6 h);
    8.  day 24  — the machine hosting the BioOpera server is shut down for
                  maintenance for 8 h and restarted (event 9);
    10. day 30  — file-system instability: elevated TEU failure rate for
                  two days plus a 30-minute network outage in which some
                  TEUs' results fail to reach the server and are
                  re-scheduled automatically.

    ``day`` scales the whole schedule (tests pass a small value together
    with a small database).
    """
    darwin = darwin or datasets.sp38_darwin(seed=seed)
    kernel = SimKernel(seed=500 + seed)
    cluster = SimulatedCluster(kernel, linneus(), execution_noise=0.25)
    server = BioOperaServer(seed=seed)
    server.attach_environment(cluster)
    install_all_vs_all(server, darwin)

    instance_id = server.launch("all_vs_all", {
        "db_name": darwin.profile.name,
        "granularity": granularity,
        "refine_placement": "refine",
    })

    script = ScenarioScript(cluster)
    pc_nodes = [n for n in sorted(cluster.nodes) if n != "linneus-sparc"]

    # Everyday multi-user background load on the PCs (nice mode).
    script.background_load(0.0, 60 * day, pc_nodes, mean_fraction=0.30,
                           change_every=max(60.0, day / 6))
    # 1: another user needs the whole cluster.
    script.suspend_instance(2.0 * day, instance_id,
                            label="other user needs cluster")
    script.resume_instance(3.0 * day, instance_id,
                           label="cluster freed, resume")
    # 2: the single BioOpera server crash.
    script.server_crash(5.0 * day, recovery_after=4 * (day / 24),
                        label="BioOpera server crash")
    # 3: massive hardware failure (ten nodes).
    script.mass_failure(8.0 * day, pc_nodes[:10], duration=12 * (day / 24),
                        label="cluster failure")
    # 4: other users' jobs saturate the cluster for three days.
    script.load_burst(11.0 * day, 3.0 * day, pc_nodes, 0.97,
                      label="cluster busy with other jobs")
    # 5+6: disk full, noticed late, fixed, resumed.
    script.at(16.0 * day, "disk space shortage",
              cluster.set_storage_full, True)
    script.suspend_instance(16.5 * day, instance_id,
                            label="manual stop (disk full)")
    script.at(17.0 * day, "disk space freed",
              cluster.set_storage_full, False)
    script.resume_instance(17.25 * day, instance_id,
                           label="resume after disk fixed")
    # 7: second massive hardware failure (the whole cluster, 6 h).
    script.mass_failure(20.0 * day, sorted(cluster.nodes),
                        duration=6 * (day / 24),
                        label="cluster failure (all nodes)")
    # 8+9: server host maintenance.
    script.server_maintenance(24.0 * day, duration=8 * (day / 24))
    # 10: file-system instability + a 30-minute outage that loses reports.
    script.at(29.0 * day, "file system instability",
              cluster.set_job_failure_rate, 0.10)
    script.network_outage(30.0 * day, duration=0.5 * (day / 24),
                          label="TEUs fail to report (outage)")
    script.at(31.0 * day, "file system stable again",
              cluster.set_job_failure_rate, 0.0)

    # The horizon is a generous backstop; genuinely wedged runs are
    # caught earlier by the event-queue-drained check.
    cluster.run_until_instance_done(instance_id, horizon=20_000 * day)
    # NB: cluster.server, not the launch-time server object — server
    # crashes in the script replace it with a recovered instance.
    return _report("all_vs_all shared (linneus)", cluster.server, cluster,
                   instance_id, day=day)


def nonshared_run(
    darwin: Optional[DarwinEngine] = None,
    granularity: int = 512,
    seed: int = 0,
    day: float = DAY,
    upgrade_day: float = 25.0,
) -> LifecycleReport:
    """The SP38 all-vs-all on the dedicated ik-linux cluster (Fig. 6).

    Three events: two planned network outages (the process is suspended
    first, as the paper describes), and the day-25 operating-system
    reconfiguration that enables the second processor of every node —
    after which utilization doubles immediately.
    """
    darwin = darwin or datasets.sp38_darwin(seed=seed)
    kernel = SimKernel(seed=700 + seed)
    cluster = SimulatedCluster(kernel, ik_linux(initial_cpus=1),
                               execution_noise=0.2)
    server = BioOperaServer(seed=seed)
    server.attach_environment(cluster)
    install_all_vs_all(server, darwin)

    instance_id = server.launch("all_vs_all", {
        "db_name": darwin.profile.name,
        "granularity": granularity,
    })

    script = ScenarioScript(cluster)
    # Planned outage 1 (day 10): suspend, outage, resume.
    script.suspend_instance(10.0 * day - 2 * (day / 24), instance_id,
                            label="suspend for planned outage")
    script.network_outage(10.0 * day, duration=6 * (day / 24),
                          label="planned network outage 1")
    script.resume_instance(10.0 * day + 8 * (day / 24), instance_id,
                           label="resume after outage 1")
    # Day 25: second processor enabled on every node.
    script.upgrade_all(upgrade_day * day, cpus=2,
                       label="OS configuration change (2nd CPU)")
    # Planned outage 2 (day 35).
    script.suspend_instance(35.0 * day - 2 * (day / 24), instance_id,
                            label="suspend for planned outage")
    script.network_outage(35.0 * day, duration=6 * (day / 24),
                          label="planned network outage 2")
    script.resume_instance(35.0 * day + 8 * (day / 24), instance_id,
                           label="resume after outage 2")

    cluster.run_until_instance_done(instance_id, horizon=20_000 * day)
    return _report("all_vs_all non-shared (ik-linux)", cluster.server,
                   cluster, instance_id, day=day)
