"""Renderers that print the paper's tables and figures from run results.

Benchmarks call these to emit the same rows/series the paper reports:
:func:`granularity_table` (Figure 4's embedded table), :func:`table1`
(Table 1), and :func:`lifecycle_chart` (ASCII availability/utilization
timelines standing in for Figures 5 and 6).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..cluster.simulation import format_duration
from .scenarios import GranularityPoint, LifecycleReport


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain fixed-width table."""
    cells = [[str(h) for h in headers]] + [
        [str(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells)
        for col in range(len(headers))
    ]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(
            value.rjust(widths[col]) for col, value in enumerate(row)
        ))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def granularity_table(points: Sequence[GranularityPoint]) -> str:
    """Figure 4's embedded table: # TEUs | CPU | WALL (seconds)."""
    rows = [
        (p.teus, f"{p.cpu_seconds:.0f}", f"{p.wall_seconds:.0f}")
        for p in points
    ]
    return format_table(("# TEUs", "CPU (s)", "WALL (s)"), rows)


def granularity_segments(points: Sequence[GranularityPoint]
                         ) -> Dict[str, object]:
    """The anchors the paper's prose fixes for Figure 4."""
    by_teus = {p.teus: p for p in points}
    best_wall = min(points, key=lambda p: p.wall_seconds)
    first = min(points, key=lambda p: p.teus)
    last = max(points, key=lambda p: p.teus)
    return {
        "best_cpu_at_1_teu": min(points, key=lambda p: p.cpu_seconds).teus == first.teus,
        "wall_optimum_teus": best_wall.teus,
        "cpu_ratio_max_vs_1": last.cpu_seconds / first.cpu_seconds,
        "wall_ratio_1_vs_optimum": first.wall_seconds / best_wall.wall_seconds,
    }


def lifecycle_summary(report: LifecycleReport) -> List[Tuple[str, str]]:
    """One Table 1 column as (metric, value) pairs."""
    return [
        ("Max # of CPUs", f"{report.max_cpus:.0f}"),
        ("CPU(pi)", format_duration(report.cpu_seconds)),
        ("WALL(pi)", format_duration(report.wall_seconds)),
        ("CPU(A)", format_duration(report.cpu_per_activity)),
        ("Activities", str(report.activities)),
        ("Matches", str(report.match_count)),
        ("Utilization", f"{report.utilization_fraction:.0%}"),
        ("Manual interventions", str(report.manual_interventions)),
    ]


def table1(shared: LifecycleReport, nonshared: LifecycleReport) -> str:
    """Table 1: performance of the all-vs-all for the two experiments."""
    shared_col = dict(lifecycle_summary(shared))
    nonshared_col = dict(lifecycle_summary(nonshared))
    rows = [
        (metric, shared_col[metric], nonshared_col[metric])
        for metric, _ in lifecycle_summary(shared)
    ]
    return format_table(("", "Shared cluster", "Non-shared cluster"), rows)


def lifecycle_chart(report: LifecycleReport, width: int = 60) -> str:
    """ASCII rendition of Figures 5/6: one row per day, availability as
    ``.`` and utilization as ``#``, with event annotations inline."""
    series = report.trace_daily
    if not series:
        return "(no trace)"
    scale_max = max(report.max_cpus, 1.0)
    # infer the (possibly scaled) day length from the series spacing
    day_seconds = series[1][0] - series[0][0] if len(series) > 1 else 86400.0
    annotations_by_day: Dict[int, List[str]] = {}
    for t, label in report.annotations:
        annotations_by_day.setdefault(int(t // day_seconds), []).append(label)
    lines = [
        f"{report.name}: processor availability (.) vs utilization (#)",
        f"0 {'-' * width} {scale_max:.0f} CPUs",
    ]
    for t, available, busy in series:
        day = int(t // day_seconds)
        available_col = int(round(available / scale_max * width))
        busy_col = int(round(busy / scale_max * width))
        bar = ["#" if col < busy_col else "." if col < available_col else " "
               for col in range(width)]
        note = "; ".join(annotations_by_day.get(day, []))
        lines.append(f"d{day:3d} |{''.join(bar)}| {note}")
    return "\n".join(lines)


def monitoring_table(runs) -> str:
    """Benchmark M1: strategy | samples | sent | discarded | mean error."""
    rows = [
        (
            run.strategy,
            run.samples_taken,
            run.reports_sent,
            f"{run.discard_fraction:.0%}",
            f"{run.mean_error:.3f}",
            f"{run.max_error:.3f}",
        )
        for run in runs
    ]
    return format_table(
        ("strategy", "samples", "sent", "discarded", "mean err", "max err"),
        rows,
    )
