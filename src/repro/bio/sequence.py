"""Protein sequences and synthetic Swiss-Prot-like databases.

The paper's workloads run over Swiss-Prot release 38 (~80,000 entries) and a
522-entry study subset. We cannot ship Swiss-Prot, so
:func:`SequenceDatabase.synthetic` generates databases with a realistic
length distribution (gamma, mean ≈ 360 residues like SP38) and Swiss-Prot
background composition, with optional *homologous families*: groups of
entries derived from a common ancestor by point mutation, so that real
alignments over the synthetic data actually find high-scoring matches the
way an all-vs-all over real data would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence as Seq

from ..errors import BioError
from .alphabet import AMINO_ACIDS, FREQUENCIES


@dataclass(frozen=True)
class Sequence:
    """One database entry: a stable identifier plus its residues."""

    id: str
    residues: str
    family: Optional[str] = None

    def __len__(self) -> int:
        return len(self.residues)

    def __post_init__(self):
        if not self.residues:
            raise BioError(f"sequence {self.id!r} is empty")
        bad = set(self.residues) - set(AMINO_ACIDS)
        if bad:
            raise BioError(
                f"sequence {self.id!r} contains invalid residues {sorted(bad)}"
            )


class SequenceDatabase:
    """An ordered collection of sequences addressable by index and id.

    Entry indexes are 1-based, matching the paper's queue files
    ``E = [1 .. N]``.
    """

    def __init__(self, name: str, sequences: Seq[Sequence]):
        self.name = name
        self._sequences: List[Sequence] = list(sequences)
        self._by_id: Dict[str, int] = {}
        for position, seq in enumerate(self._sequences):
            if seq.id in self._by_id:
                raise BioError(f"duplicate sequence id {seq.id!r}")
            self._by_id[seq.id] = position

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences)

    def entry(self, index: int) -> Sequence:
        """Return the entry with 1-based index ``index``."""
        if not 1 <= index <= len(self._sequences):
            raise BioError(
                f"entry index {index} out of range 1..{len(self._sequences)}"
            )
        return self._sequences[index - 1]

    def by_id(self, seq_id: str) -> Sequence:
        position = self._by_id.get(seq_id)
        if position is None:
            raise BioError(f"unknown sequence id {seq_id!r}")
        return self._sequences[position]

    def entry_indexes(self) -> List[int]:
        """The full queue file ``E = [1 .. N]``."""
        return list(range(1, len(self._sequences) + 1))

    def lengths(self) -> List[int]:
        return [len(seq) for seq in self._sequences]

    def total_residues(self) -> int:
        return sum(len(seq) for seq in self._sequences)

    # -- synthesis ------------------------------------------------------------

    @classmethod
    def synthetic(
        cls,
        name: str,
        size: int,
        seed: int = 0,
        mean_length: float = 360.0,
        length_shape: float = 2.0,
        min_length: int = 30,
        max_length: int = 4000,
        family_fraction: float = 0.3,
        family_size: int = 4,
        mutation_rate: float = 0.25,
    ) -> "SequenceDatabase":
        """Generate a Swiss-Prot-like database.

        ``family_fraction`` of the entries are organized in homologous
        families of ``family_size`` members, each derived from a family
        ancestor by substituting ``mutation_rate`` of its residues — these
        are the pairs an all-vs-all run reports as matches.
        """
        if size < 1:
            raise BioError("database size must be positive")
        rng = random.Random(seed)
        residues = list(AMINO_ACIDS)
        weights = [FREQUENCIES[aa] for aa in residues]

        def random_length() -> int:
            theta = mean_length / length_shape
            value = int(rng.gammavariate(length_shape, theta))
            return max(min_length, min(max_length, value))

        def random_sequence(length: int) -> str:
            return "".join(rng.choices(residues, weights=weights, k=length))

        def mutate(parent: str) -> str:
            chars = list(parent)
            for position in range(len(chars)):
                if rng.random() < mutation_rate:
                    chars[position] = rng.choices(residues, weights=weights)[0]
            # small indel at the ends, as in real homologs
            if len(chars) > min_length + 10 and rng.random() < 0.5:
                trim = rng.randrange(1, 8)
                chars = chars[trim:] if rng.random() < 0.5 else chars[:-trim]
            return "".join(chars)

        sequences: List[Sequence] = []
        n_family_members = int(size * family_fraction)
        n_families = max(1, n_family_members // family_size) if n_family_members else 0
        serial = 0
        for family_idx in range(n_families):
            ancestor = random_sequence(random_length())
            members = min(family_size, n_family_members - len(sequences))
            for _ in range(max(0, members)):
                serial += 1
                sequences.append(
                    Sequence(
                        id=f"{name}_{serial:06d}",
                        residues=mutate(ancestor),
                        family=f"fam{family_idx:04d}",
                    )
                )
        while len(sequences) < size:
            serial += 1
            sequences.append(
                Sequence(
                    id=f"{name}_{serial:06d}",
                    residues=random_sequence(random_length()),
                )
            )
        # Shuffle so families are not index-adjacent (affects partitioning).
        rng.shuffle(sequences)
        return cls(name, sequences[:size])

    # -- FASTA-style round trip -------------------------------------------------

    def to_fasta(self) -> str:
        lines: List[str] = []
        for seq in self._sequences:
            header = f">{seq.id}"
            if seq.family:
                header += f" family={seq.family}"
            lines.append(header)
            for start in range(0, len(seq.residues), 60):
                lines.append(seq.residues[start:start + 60])
        return "\n".join(lines) + "\n"

    @classmethod
    def from_fasta(cls, name: str, text: str) -> "SequenceDatabase":
        sequences: List[Sequence] = []
        seq_id: Optional[str] = None
        family: Optional[str] = None
        chunks: List[str] = []

        def flush() -> None:
            if seq_id is not None:
                sequences.append(
                    Sequence(id=seq_id, residues="".join(chunks), family=family)
                )

        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith(">"):
                flush()
                parts = line[1:].split()
                seq_id = parts[0]
                family = None
                for token in parts[1:]:
                    if token.startswith("family="):
                        family = token[len("family="):]
                chunks = []
            else:
                chunks.append(line)
        flush()
        if not sequences:
            raise BioError("FASTA text contained no sequences")
        return cls(name, sequences)
