"""Darwin-substitute: the bioinformatics application BioOpera drives.

The paper's activities are Darwin programs ("when a task needs to be
executed, BioOpera contacts Darwin at the appropriate machine and instructs
it to execute a particular algorithm on a particular set of inputs").
:class:`DarwinEngine` plays that role here, in two execution modes that
share one interface and one result format:

* ``real`` — actually runs Smith-Waterman / PAM refinement over a
  :class:`~repro.bio.sequence.SequenceDatabase` (used by examples and
  correctness tests on small data);
* ``modeled`` — synthesizes statistically equivalent results from the
  database *profile* and charges the calibrated cost, so SP38-scale
  processes execute in simulated time.

Results are JSON-able *match sets*::

    {"count": int, "matches": [match...], "truncated": bool}

where each match is ``{"i", "j", "score", "pam" (after refinement)}``.
Match lists are capped at ``sample_cap`` concrete entries (the count is
always exact); merging respects both.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence as Seq

from ..errors import BioError
from .costmodel import CostModel, DatabaseProfile
from .matrices import MatrixFamily, default_family
from .pam import refine_distance
from .sequence import SequenceDatabase
from .align import sw_score

#: Default similarity threshold above which a pair is reported as a match.
MATCH_THRESHOLD = 80.0

#: Default cap on concrete matches carried in a match set.
SAMPLE_CAP = 500


def empty_match_set() -> Dict[str, Any]:
    return {"count": 0, "matches": [], "truncated": False}


def merge_match_sets(sets: Seq[Dict[str, Any]],
                     sample_cap: int = SAMPLE_CAP) -> Dict[str, Any]:
    """Combine match sets: exact counts, capped concrete matches."""
    count = sum(int(s["count"]) for s in sets)
    matches: List[Dict[str, Any]] = []
    truncated = any(bool(s.get("truncated")) for s in sets)
    for s in sets:
        matches.extend(s["matches"])
    matches.sort(key=lambda m: (m["i"], m["j"]))
    if len(matches) > sample_cap:
        matches = matches[:sample_cap]
        truncated = True
    return {"count": count, "matches": matches, "truncated": truncated}


class DarwinEngine:
    """Alignment application with ``real`` and ``modeled`` execution.

    Parameters
    ----------
    profile:
        Statistical profile of the database (always required; drives
        costs and synthetic results).
    database:
        The concrete sequences; required for ``mode='real'``.
    """

    def __init__(
        self,
        profile: DatabaseProfile,
        database: Optional[SequenceDatabase] = None,
        mode: str = "modeled",
        cost_model: Optional[CostModel] = None,
        matrix_family: Optional[MatrixFamily] = None,
        match_threshold: float = MATCH_THRESHOLD,
        random_match_rate: float = 0.002,
        sample_cap: int = SAMPLE_CAP,
        seed: int = 0,
    ):
        if mode not in ("real", "modeled"):
            raise BioError(f"unknown Darwin mode {mode!r}")
        if mode == "real" and database is None:
            raise BioError("real mode requires a SequenceDatabase")
        if database is not None and len(database) != len(profile):
            raise BioError("database and profile sizes disagree")
        self.profile = profile
        self.database = database
        self.mode = mode
        self.cost_model = cost_model or CostModel()
        self._family = matrix_family
        self.match_threshold = match_threshold
        self.random_match_rate = random_match_rate
        self.sample_cap = sample_cap
        self.seed = seed

    @property
    def matrix_family(self) -> MatrixFamily:
        if self._family is None:
            self._family = default_family()
        return self._family

    def _rng(self, *key: Any) -> random.Random:
        return random.Random(f"{self.seed}/{self.profile.name}/{key!r}")

    def init_cost(self) -> float:
        """Per-TEU Darwin start-up cost (interpreter + database load)."""
        return self.cost_model.init_cost(len(self.profile))

    # ------------------------------------------------------------------
    # Fixed-PAM first pass (one TEU)
    # ------------------------------------------------------------------

    def align_partition(self, partition: Seq[int],
                        queue: Seq[int]) -> Dict[str, Any]:
        """Align every partition entry against all later queue entries.

        Returns ``{"match_set": ..., "cost": seconds, "pairs": int}`` where
        cost includes the Darwin initialization for this TEU.
        """
        partition = sorted(int(i) for i in partition)
        queue = sorted(int(i) for i in queue)
        queue_set = set(queue)
        unknown = [i for i in partition if i not in queue_set]
        if unknown:
            raise BioError(f"partition entries not in queue: {unknown[:5]}")
        if self.mode == "real":
            match_set, pairs, cost = self._align_real(partition, queue)
        else:
            match_set, pairs, cost = self._align_modeled(partition, queue_set, queue)
        cost += self.init_cost()
        cost += match_set["count"] * self.cost_model.match_record_cost
        return {"match_set": match_set, "cost": cost, "pairs": pairs}

    def _align_real(self, partition, queue):
        matrix = self.matrix_family.matrix(100.0)
        matches: List[Dict[str, Any]] = []
        cells = 0
        pairs = 0
        for i in partition:
            seq_i = self.database.entry(i)
            for j in queue:
                if j <= i:
                    continue
                seq_j = self.database.entry(j)
                score = sw_score(seq_i.residues, seq_j.residues, matrix)
                cells += len(seq_i) * len(seq_j)
                pairs += 1
                if score >= self.match_threshold:
                    matches.append(
                        {"i": i, "j": j, "score": round(score, 2)}
                    )
        cost = cells * self.cost_model.fixed_pam_factor / self.cost_model.cell_rate
        truncated = len(matches) > self.sample_cap
        match_set = {
            "count": len(matches),
            "matches": matches[: self.sample_cap],
            "truncated": truncated,
        }
        return match_set, pairs, cost

    def _align_modeled(self, partition, queue_set, queue):
        cost = self.cost_model.teu_fixed_cost(self.profile, partition, queue)
        pairs = self.cost_model.teu_pair_count(partition, queue)
        rng = self._rng("teu", partition[0] if partition else 0, len(partition))
        matches: List[Dict[str, Any]] = []
        # Homologous pairs: deterministic from the family structure.
        for i in partition:
            for j in self.profile.family_partners(i):
                if j > i and j in queue_set:
                    min_len = min(self.profile.length(i), self.profile.length(j))
                    score = max(
                        self.match_threshold,
                        rng.gauss(3.0 * min_len, 0.3 * min_len),
                    )
                    matches.append({"i": i, "j": j, "score": round(score, 2)})
        # Background matches: rare chance similarities among non-homologs.
        family_count = len(matches)
        n_random = self._binomial(rng, max(0, pairs - family_count),
                                  self.random_match_rate)
        queue_list = queue
        for _ in range(min(n_random, self.sample_cap)):
            i = rng.choice(partition)
            later = [j for j in (rng.choice(queue_list) for _ in range(8)) if j > i]
            if not later:
                continue
            j = later[0]
            score = self.match_threshold + rng.expovariate(1 / 15.0)
            matches.append({"i": i, "j": j, "score": round(score, 2)})
        count = family_count + n_random
        matches.sort(key=lambda m: (m["i"], m["j"]))
        truncated = len(matches) > self.sample_cap or count > len(matches)
        match_set = {
            "count": count,
            "matches": matches[: self.sample_cap],
            "truncated": truncated,
        }
        return match_set, pairs, cost

    @staticmethod
    def _binomial(rng: random.Random, n: int, p: float) -> int:
        """Binomial sample via normal approximation for large n."""
        if n <= 0 or p <= 0:
            return 0
        mean = n * p
        if n < 64:
            return sum(1 for _ in range(n) if rng.random() < p)
        sigma = (n * p * (1 - p)) ** 0.5
        return max(0, int(round(rng.gauss(mean, sigma))))

    # ------------------------------------------------------------------
    # PAM-parameter refinement (second pass over the matches)
    # ------------------------------------------------------------------

    def refine_match_set(self, match_set: Dict[str, Any]) -> Dict[str, Any]:
        """Re-align each match searching for the similarity-maximizing PAM.

        Returns ``{"match_set": refined, "cost": seconds}``.
        """
        if self.mode == "real":
            return self._refine_real(match_set)
        return self._refine_modeled(match_set)

    def _refine_real(self, match_set):
        refined: List[Dict[str, Any]] = []
        cells = 0
        for match in match_set["matches"]:
            seq_i = self.database.entry(match["i"])
            seq_j = self.database.entry(match["j"])
            estimate = refine_distance(
                seq_i.residues, seq_j.residues, self.matrix_family
            )
            cells += len(seq_i) * len(seq_j) * estimate.evaluations
            entry = dict(match)
            entry["pam"] = estimate.pam
            entry["score"] = round(estimate.score, 2)
            refined.append(entry)
        cost = cells / self.cost_model.cell_rate + self.init_cost()
        result = {
            "count": match_set["count"],
            "matches": refined,
            "truncated": match_set["truncated"],
        }
        return {"match_set": result, "cost": cost}

    def _refine_modeled(self, match_set):
        rng = self._rng("refine", match_set["count"], len(match_set["matches"]))
        refined: List[Dict[str, Any]] = []
        cells = 0.0
        evals = self.cost_model.refine_evaluations
        for match in match_set["matches"]:
            len_i = self.profile.length(match["i"])
            len_j = self.profile.length(match["j"])
            cells += len_i * len_j * evals
            entry = dict(match)
            same_family = (
                self.profile.family_of(match["i"]) >= 0
                and self.profile.family_of(match["i"])
                == self.profile.family_of(match["j"])
            )
            if same_family:
                entry["pam"] = round(min(250.0, max(5.0, rng.gauss(90, 15))), 2)
            else:
                entry["pam"] = round(min(350.0, max(50.0, rng.gauss(200, 40))), 2)
            entry["score"] = round(match["score"] * (1 + rng.random() * 0.08), 2)
            refined.append(entry)
        # Charge for the untruncated remainder at the mean refine cost.
        hidden = match_set["count"] - len(match_set["matches"])
        if hidden > 0:
            cells += hidden * self.cost_model.mean_refine_cost(
                self.profile
            ) * self.cost_model.cell_rate
        cost = cells / self.cost_model.cell_rate + self.init_cost()
        result = {
            "count": match_set["count"],
            "matches": refined,
            "truncated": match_set["truncated"],
        }
        return {"match_set": result, "cost": cost}
