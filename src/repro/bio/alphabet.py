"""Amino-acid alphabet, background frequencies, physico-chemical properties.

The reproduction does not ship Swiss-Prot, so the scoring-matrix family
(:mod:`repro.bio.matrices`) is *constructed* rather than tabulated: exchange
rates between amino acids are derived from distances in a small
physico-chemical property space (hydrophobicity, volume, polarity, charge),
which yields a Dayhoff-style PAM matrix family with the right qualitative
structure (conservative substitutions score high, radical ones low).
"""

from __future__ import annotations

import numpy as np

#: The 20 standard amino acids, in alphabetical one-letter-code order.
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

#: index of each residue letter in :data:`AMINO_ACIDS`.
INDEX = {aa: i for i, aa in enumerate(AMINO_ACIDS)}

#: Background frequencies (approximately the Swiss-Prot composition).
FREQUENCIES = {
    "A": 0.0826, "C": 0.0136, "D": 0.0546, "E": 0.0674, "F": 0.0386,
    "G": 0.0708, "H": 0.0227, "I": 0.0593, "K": 0.0582, "L": 0.0966,
    "M": 0.0241, "N": 0.0406, "P": 0.0471, "Q": 0.0394, "R": 0.0553,
    "S": 0.0657, "T": 0.0534, "V": 0.0687, "W": 0.0109, "Y": 0.0292,
}

# Kyte-Doolittle hydropathy.
_HYDROPATHY = {
    "A": 1.8, "C": 2.5, "D": -3.5, "E": -3.5, "F": 2.8,
    "G": -0.4, "H": -3.2, "I": 4.5, "K": -3.9, "L": 3.8,
    "M": 1.9, "N": -3.5, "P": -1.6, "Q": -3.5, "R": -4.5,
    "S": -0.8, "T": -0.7, "V": 4.2, "W": -0.9, "Y": -1.3,
}

# Side-chain volume (A^3).
_VOLUME = {
    "A": 88.6, "C": 108.5, "D": 111.1, "E": 138.4, "F": 189.9,
    "G": 60.1, "H": 153.2, "I": 166.7, "K": 168.6, "L": 166.7,
    "M": 162.9, "N": 114.1, "P": 112.7, "Q": 143.8, "R": 173.4,
    "S": 89.0, "T": 116.1, "V": 140.0, "W": 227.8, "Y": 193.6,
}

# Grantham polarity.
_POLARITY = {
    "A": 8.1, "C": 5.5, "D": 13.0, "E": 12.3, "F": 5.2,
    "G": 9.0, "H": 10.4, "I": 5.2, "K": 11.3, "L": 4.9,
    "M": 5.7, "N": 11.6, "P": 8.0, "Q": 10.5, "R": 10.5,
    "S": 9.2, "T": 8.6, "V": 5.9, "W": 5.4, "Y": 6.2,
}

# Formal charge at physiological pH.
_CHARGE = {aa: 0.0 for aa in AMINO_ACIDS}
_CHARGE.update({"D": -1.0, "E": -1.0, "K": 1.0, "R": 1.0, "H": 0.1})


def frequency_vector() -> np.ndarray:
    """Background frequencies as a vector aligned with :data:`AMINO_ACIDS`."""
    freqs = np.array([FREQUENCIES[aa] for aa in AMINO_ACIDS])
    return freqs / freqs.sum()


def property_matrix() -> np.ndarray:
    """Standardized (20, 4) matrix of physico-chemical properties."""
    columns = []
    for table in (_HYDROPATHY, _VOLUME, _POLARITY, _CHARGE):
        values = np.array([table[aa] for aa in AMINO_ACIDS], dtype=float)
        std = values.std()
        columns.append((values - values.mean()) / std)
    return np.stack(columns, axis=1)


def encode(sequence: str) -> np.ndarray:
    """Map a residue string to an int8 index array.

    Raises
    ------
    KeyError
        If the sequence contains a letter outside the 20-residue alphabet.
    """
    return np.fromiter(
        (INDEX[ch] for ch in sequence), dtype=np.int8, count=len(sequence)
    )


def decode(indices: np.ndarray) -> str:
    """Inverse of :func:`encode`."""
    return "".join(AMINO_ACIDS[i] for i in indices)
