"""Dayhoff-style PAM scoring-matrix family.

Darwin's all-vs-all scores alignments with "GCB scoring matrices" — Dayhoff
matrices at many PAM distances (Gonnet, Cohen & Benner 1992). We rebuild the
family from first principles:

1. An **exchangeability** matrix over the 20 amino acids whose entries decay
   with distance in a physico-chemical property space (hydropathy, volume,
   polarity, charge) — conservative substitutions are fast, radical ones
   slow.
2. A reversible **rate matrix** ``Q`` with stationary distribution equal to
   the Swiss-Prot background frequencies, normalized so one time unit equals
   one PAM (one accepted point mutation per 100 residues).
3. ``P(t) = expm(Q t)`` via symmetric eigendecomposition, and the score
   matrix ``S_ij(t) = scale * log10( P_ij(t) / f_j )`` — identical in form
   to the published Dayhoff/GCB matrices.

The family is cached per PAM distance; :func:`MatrixFamily.matrix` is what
the alignment code calls.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import MatrixError
from .alphabet import AMINO_ACIDS, frequency_vector, property_matrix


def exchangeability() -> np.ndarray:
    """Symmetric positive exchangeability matrix from property distances."""
    props = property_matrix()
    # Squared euclidean distance in standardized property space.
    diff = props[:, None, :] - props[None, :, :]
    dist2 = (diff ** 2).sum(axis=2)
    rates = np.exp(-dist2 / 2.0)
    np.fill_diagonal(rates, 0.0)
    return rates


def rate_matrix() -> np.ndarray:
    """Reversible rate matrix Q with the background stationary distribution.

    ``Q_ij = s_ij * f_j`` for i != j (general time-reversible form), with the
    diagonal set so rows sum to zero, scaled so the expected number of
    substitutions per site per unit time is 0.01 (one PAM).
    """
    freqs = frequency_vector()
    s = exchangeability()
    q = s * freqs[None, :]
    np.fill_diagonal(q, 0.0)
    np.fill_diagonal(q, -q.sum(axis=1))
    # Expected substitution rate: sum_i f_i * (-Q_ii)
    rate = -(freqs * np.diag(q)).sum()
    return q * (0.01 / rate)


class MatrixFamily:
    """PAM substitution and score matrices at arbitrary distances."""

    def __init__(self, scale: float = 10.0):
        self.scale = scale
        self.freqs = frequency_vector()
        q = rate_matrix()
        # Symmetrize for a stable eigendecomposition:
        # B = D^{1/2} Q D^{-1/2} is symmetric for reversible Q.
        sqrt_f = np.sqrt(self.freqs)
        b = (sqrt_f[:, None] * q) / sqrt_f[None, :]
        b = (b + b.T) / 2.0
        self._eigenvalues, self._eigenvectors = np.linalg.eigh(b)
        self._sqrt_f = sqrt_f
        self._prob_cache: Dict[float, np.ndarray] = {}
        self._score_cache: Dict[float, np.ndarray] = {}

    def substitution_probabilities(self, pam: float) -> np.ndarray:
        """P(t) for t = ``pam``: row-stochastic mutation matrix."""
        if pam < 0:
            raise MatrixError(f"PAM distance must be >= 0, got {pam}")
        cached = self._prob_cache.get(pam)
        if cached is not None:
            return cached
        exp_diag = np.exp(self._eigenvalues * pam)
        b_t = (self._eigenvectors * exp_diag[None, :]) @ self._eigenvectors.T
        p = (b_t / self._sqrt_f[:, None]) * self._sqrt_f[None, :]
        # Numerical hygiene: clip tiny negatives, renormalize rows.
        p = np.clip(p, 1e-300, None)
        p /= p.sum(axis=1, keepdims=True)
        self._prob_cache[pam] = p
        return p

    def matrix(self, pam: float) -> np.ndarray:
        """Score matrix S(t): ``scale * log10(P_ij(t) / f_j)``, symmetric."""
        cached = self._score_cache.get(pam)
        if cached is not None:
            return cached
        p = self.substitution_probabilities(pam)
        with np.errstate(divide="ignore"):
            scores = self.scale * np.log10(p / self.freqs[None, :])
        scores = (scores + scores.T) / 2.0
        self._score_cache[pam] = scores
        return scores

    def expected_identity(self, pam: float) -> float:
        """Expected fraction of identical residues at PAM distance ``pam``."""
        p = self.substitution_probabilities(pam)
        return float((self.freqs * np.diag(p)).sum())

    def standard_distances(self) -> Tuple[float, ...]:
        """The ladder of PAM distances Darwin-style refinement searches."""
        return (10.0, 25.0, 45.0, 70.0, 100.0, 135.0, 175.0, 220.0, 270.0)


_DEFAULT_FAMILY: MatrixFamily | None = None


def default_family() -> MatrixFamily:
    """Process-wide shared matrix family (construction is not free)."""
    global _DEFAULT_FAMILY
    if _DEFAULT_FAMILY is None:
        _DEFAULT_FAMILY = MatrixFamily()
    return _DEFAULT_FAMILY


__all__ = [
    "AMINO_ACIDS",
    "MatrixFamily",
    "default_family",
    "exchangeability",
    "rate_matrix",
]
