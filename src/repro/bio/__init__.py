"""Darwin-substitute bioinformatics substrate: sequences, PAM matrices,
Smith-Waterman alignment, PAM-distance estimation, and cost models."""

from .align import Alignment, GAP_EXTEND, GAP_OPEN, sw_align, sw_score
from .alphabet import AMINO_ACIDS
from .costmodel import CostModel, DatabaseProfile
from .darwin import (
    DarwinEngine,
    MATCH_THRESHOLD,
    empty_match_set,
    merge_match_sets,
)
from .matrices import MatrixFamily, default_family
from .pam import PamEstimate, refine_distance, scan_distance
from .sequence import Sequence, SequenceDatabase

__all__ = [
    "AMINO_ACIDS",
    "Alignment",
    "GAP_OPEN",
    "GAP_EXTEND",
    "sw_score",
    "sw_align",
    "MatrixFamily",
    "default_family",
    "PamEstimate",
    "scan_distance",
    "refine_distance",
    "Sequence",
    "SequenceDatabase",
    "DatabaseProfile",
    "CostModel",
    "DarwinEngine",
    "MATCH_THRESHOLD",
    "empty_match_set",
    "merge_match_sets",
]
