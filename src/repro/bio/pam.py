"""PAM-distance estimation by maximizing alignment similarity.

Darwin's refinement pass "recalculat[es] the corresponding alignment using
[a] computationally more expensive but more informative algorithm": it finds
the PAM distance whose score matrix maximizes the alignment score, which is
the maximum-likelihood evolutionary distance of the pair. We reproduce that
as a two-stage search: a coarse scan over the standard matrix ladder
followed by golden-section refinement around the best rung.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .align import GAP_EXTEND, GAP_OPEN, sw_score
from .matrices import MatrixFamily, default_family

_GOLDEN = 0.6180339887498949


@dataclass(frozen=True)
class PamEstimate:
    """Result of a PAM-distance search for one sequence pair."""

    pam: float
    score: float
    evaluations: int


def scan_distance(
    seq_a: str,
    seq_b: str,
    family: Optional[MatrixFamily] = None,
    gap_open: float = GAP_OPEN,
    gap_extend: float = GAP_EXTEND,
) -> PamEstimate:
    """Coarse scan: best PAM on the standard matrix ladder."""
    family = family or default_family()
    best_pam, best_score = 0.0, float("-inf")
    count = 0
    for pam in family.standard_distances():
        score = sw_score(seq_a, seq_b, family.matrix(pam), gap_open, gap_extend)
        count += 1
        if score > best_score:
            best_pam, best_score = pam, score
    return PamEstimate(best_pam, best_score, count)


def refine_distance(
    seq_a: str,
    seq_b: str,
    family: Optional[MatrixFamily] = None,
    iterations: int = 6,
    gap_open: float = GAP_OPEN,
    gap_extend: float = GAP_EXTEND,
) -> PamEstimate:
    """Full estimate: ladder scan + golden-section refinement.

    ``iterations`` golden-section steps shrink the bracket around the ladder
    optimum; the number of scoring-matrix DP evaluations is reported so
    callers (the cost model) can charge the true amount of work.
    """
    family = family or default_family()
    ladder = family.standard_distances()
    coarse = scan_distance(seq_a, seq_b, family, gap_open, gap_extend)
    position = ladder.index(coarse.pam)
    low = ladder[position - 1] if position > 0 else max(1.0, coarse.pam / 2)
    high = (
        ladder[position + 1]
        if position + 1 < len(ladder)
        else coarse.pam * 1.5
    )
    evaluations = coarse.evaluations
    best_pam, best_score = coarse.pam, coarse.score

    def evaluate(pam: float) -> float:
        nonlocal evaluations, best_pam, best_score
        score = sw_score(seq_a, seq_b, family.matrix(round(pam, 2)),
                         gap_open, gap_extend)
        evaluations += 1
        if score > best_score:
            best_pam, best_score = pam, score
        return score

    x1 = high - _GOLDEN * (high - low)
    x2 = low + _GOLDEN * (high - low)
    f1, f2 = evaluate(x1), evaluate(x2)
    for _ in range(iterations):
        if f1 < f2:
            low, x1, f1 = x1, x2, f2
            x2 = low + _GOLDEN * (high - low)
            f2 = evaluate(x2)
        else:
            high, x2, f2 = x2, x1, f1
            x1 = high - _GOLDEN * (high - low)
            f1 = evaluate(x1)
    return PamEstimate(round(best_pam, 2), best_score, evaluations)
