"""Smith-Waterman local alignment with affine gap penalties.

This is the computational heart of the all-vs-all: Darwin's "dynamic
programming local alignment algorithm which uses the GCB scoring matrices
and an affine gap penalty" (paper, Section 4). The implementation is the
Gotoh three-state recurrence, vectorized over **anti-diagonals** so the
inner loops are numpy element-wise operations:

* ``E`` (gap in the first sequence) and ``F`` (gap in the second) on
  diagonal ``d`` depend only on diagonal ``d-1``;
* ``H`` on diagonal ``d`` depends on ``E``/``F`` of ``d`` and ``H`` of
  ``d-2`` — all element-wise with shifts.

:func:`sw_score` keeps two diagonals (O(m) memory, fast scan of many
pairs); :func:`sw_align` stores the full matrices and runs an exact affine
traceback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import AlignmentError
from . import alphabet

NEG_INF = -1e30

#: Default affine gap penalties (in the same units as the score matrices).
GAP_OPEN = 12.0
GAP_EXTEND = 1.0


def _encode_pair(seq_a: str, seq_b: str) -> Tuple[np.ndarray, np.ndarray]:
    if not seq_a or not seq_b:
        raise AlignmentError("cannot align empty sequences")
    try:
        return alphabet.encode(seq_a), alphabet.encode(seq_b)
    except KeyError as exc:
        raise AlignmentError(f"invalid residue {exc.args[0]!r}") from exc


def sw_score(
    seq_a: str,
    seq_b: str,
    matrix: np.ndarray,
    gap_open: float = GAP_OPEN,
    gap_extend: float = GAP_EXTEND,
) -> float:
    """Best local-alignment score of ``seq_a`` vs ``seq_b`` (score only)."""
    a_idx, b_idx = _encode_pair(seq_a, seq_b)
    m, n = len(a_idx), len(b_idx)
    # Diagonal arrays indexed by i (position in seq_a).
    h_prev2 = np.full(m, NEG_INF)  # H on diagonal d-2
    h_prev1 = np.full(m, NEG_INF)  # H on diagonal d-1
    e_prev1 = np.full(m, NEG_INF)
    f_prev1 = np.full(m, NEG_INF)
    best = 0.0
    for d in range(m + n - 1):
        lo = max(0, d - n + 1)
        hi = min(m - 1, d)
        idx = np.arange(lo, hi + 1)
        j = d - idx
        # E: left neighbour (i, j-1) lives at index i on diagonal d-1.
        e_cur = np.full(m, NEG_INF)
        e_cur[idx] = np.maximum(
            h_prev1[idx] - gap_open, e_prev1[idx] - gap_extend
        )
        e_cur[idx[j == 0]] = NEG_INF  # no left neighbour on column 0
        # F: up neighbour (i-1, j) lives at index i-1 on diagonal d-1.
        f_cur = np.full(m, NEG_INF)
        shifted_h = np.full(m, NEG_INF)
        shifted_f = np.full(m, NEG_INF)
        shifted_h[1:] = h_prev1[:-1]
        shifted_f[1:] = f_prev1[:-1]
        f_cur[idx] = np.maximum(
            shifted_h[idx] - gap_open, shifted_f[idx] - gap_extend
        )
        # Diagonal base: H(i-1, j-1) on diagonal d-2 at index i-1; the grid
        # border (i == 0 or j == 0) restarts from 0 (local alignment).
        diag_base = np.full(m, NEG_INF)
        diag_base[1:] = h_prev2[:-1]
        base = diag_base[idx]
        base = np.where((idx == 0) | (j == 0), 0.0, base)
        base = np.maximum(base, 0.0)
        subst = matrix[a_idx[idx], b_idx[j]]
        h_cur = np.full(m, NEG_INF)
        h_cur[idx] = np.maximum.reduce(
            [base + subst, e_cur[idx], f_cur[idx], np.zeros(len(idx))]
        )
        diagonal_best = float(h_cur[idx].max())
        if diagonal_best > best:
            best = diagonal_best
        h_prev2, h_prev1 = h_prev1, h_cur
        e_prev1, f_prev1 = e_cur, f_cur
    return best


@dataclass(frozen=True)
class Alignment:
    """A concrete local alignment with traceback."""

    score: float
    aligned_a: str
    aligned_b: str
    start_a: int  # 0-based inclusive
    end_a: int    # 0-based exclusive
    start_b: int
    end_b: int

    @property
    def length(self) -> int:
        return len(self.aligned_a)

    @property
    def identity(self) -> float:
        """Fraction of aligned columns with identical residues."""
        if not self.aligned_a:
            return 0.0
        same = sum(
            1 for x, y in zip(self.aligned_a, self.aligned_b)
            if x == y and x != "-"
        )
        return same / len(self.aligned_a)

    @property
    def gaps(self) -> int:
        return self.aligned_a.count("-") + self.aligned_b.count("-")


def _fill_matrices(a_idx, b_idx, matrix, gap_open, gap_extend):
    """Full H/E/F matrices via the anti-diagonal recurrence."""
    m, n = len(a_idx), len(b_idx)
    h = np.full((m, n), NEG_INF)
    e = np.full((m, n), NEG_INF)
    f = np.full((m, n), NEG_INF)
    for d in range(m + n - 1):
        lo = max(0, d - n + 1)
        hi = min(m - 1, d)
        idx = np.arange(lo, hi + 1)
        j = d - idx
        has_left = j > 0
        il, jl = idx[has_left], j[has_left]
        e[il, jl] = np.maximum(
            h[il, jl - 1] - gap_open, e[il, jl - 1] - gap_extend
        )
        has_up = idx > 0
        iu, ju = idx[has_up], j[has_up]
        f[iu, ju] = np.maximum(
            h[iu - 1, ju] - gap_open, f[iu - 1, ju] - gap_extend
        )
        base = np.zeros(len(idx))
        interior = (idx > 0) & (j > 0)
        base[interior] = np.maximum(h[idx[interior] - 1, j[interior] - 1], 0.0)
        subst = matrix[a_idx[idx], b_idx[j]]
        h[idx, j] = np.maximum.reduce(
            [base + subst, e[idx, j], f[idx, j], np.zeros(len(idx))]
        )
    return h, e, f


def sw_align(
    seq_a: str,
    seq_b: str,
    matrix: np.ndarray,
    gap_open: float = GAP_OPEN,
    gap_extend: float = GAP_EXTEND,
) -> Alignment:
    """Best local alignment with full traceback."""
    a_idx, b_idx = _encode_pair(seq_a, seq_b)
    h, e, f = _fill_matrices(a_idx, b_idx, matrix, gap_open, gap_extend)
    flat = int(np.argmax(h))
    i, j = divmod(flat, h.shape[1])
    score = float(h[i, j])
    if score <= 0:
        return Alignment(0.0, "", "", 0, 0, 0, 0)
    out_a: list[str] = []
    out_b: list[str] = []
    end_a, end_b = i + 1, j + 1
    state = "H"
    eps = 1e-9
    while i >= 0 and j >= 0:
        if state == "H":
            if h[i, j] <= eps:
                break
            subst = matrix[a_idx[i], b_idx[j]]
            base = 0.0
            if i > 0 and j > 0:
                base = max(h[i - 1, j - 1], 0.0)
            if abs(h[i, j] - (base + subst)) < eps:
                out_a.append(alphabet.AMINO_ACIDS[a_idx[i]])
                out_b.append(alphabet.AMINO_ACIDS[b_idx[j]])
                if i == 0 or j == 0:
                    break
                if h[i - 1, j - 1] <= eps:
                    break  # local alignment starts here; (i, j) consumed
                i, j = i - 1, j - 1
            elif abs(h[i, j] - e[i, j]) < eps:
                state = "E"
            elif abs(h[i, j] - f[i, j]) < eps:
                state = "F"
            else:  # pragma: no cover - defensive
                raise AlignmentError("traceback failed to match any move")
        elif state == "E":
            out_a.append("-")
            out_b.append(alphabet.AMINO_ACIDS[b_idx[j]])
            if j > 0 and abs(e[i, j] - (e[i, j - 1] - gap_extend)) < eps:
                j -= 1
            else:
                j -= 1
                state = "H"
        else:  # state == "F"
            out_a.append(alphabet.AMINO_ACIDS[a_idx[i]])
            out_b.append("-")
            if i > 0 and abs(f[i, j] - (f[i - 1, j] - gap_extend)) < eps:
                i -= 1
            else:
                i -= 1
                state = "H"
    start_a = i if state != "E" else i + 1
    start_b = j if state != "F" else j + 1
    start_a = max(0, start_a)
    start_b = max(0, start_b)
    return Alignment(
        score=score,
        aligned_a="".join(reversed(out_a)),
        aligned_b="".join(reversed(out_b)),
        start_a=start_a,
        end_a=end_a,
        start_b=start_b,
        end_b=end_b,
    )


def self_score(sequence: str, matrix: np.ndarray) -> float:
    """Score of aligning a sequence with itself (upper bound for partners)."""
    idx = alphabet.encode(sequence)
    return float(matrix[idx, idx].sum())
