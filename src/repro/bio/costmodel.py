"""Workload profiles and the calibrated activity cost model.

The discrete-event simulator never executes SP38-scale alignments for real;
instead every activity is charged the CPU time the real computation would
take. Costs are expressed in **dynamic-programming cells** (the product of
the two sequence lengths, the exact work of the Smith-Waterman recurrence)
divided by a calibrated ``cell_rate``. :func:`CostModel.calibrate` fits the
rate by timing the real aligner, so "modeled" and "real" runs are on one
scale.

A :class:`DatabaseProfile` is the statistical skeleton of a sequence
database — entry lengths and homologous-family structure — sufficient for
both cost computation and synthetic match generation, without materializing
80,000 residue strings.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence as Seq

import numpy as np

from ..errors import BioError
from .align import sw_score
from .matrices import default_family
from .sequence import SequenceDatabase


class DatabaseProfile:
    """Lengths + family structure of a database, indexable 1..N."""

    def __init__(self, name: str, lengths: np.ndarray, families: np.ndarray):
        if len(lengths) != len(families):
            raise BioError("lengths and families must have equal size")
        if len(lengths) == 0:
            raise BioError("profile must contain at least one entry")
        self.name = name
        self.lengths = np.asarray(lengths, dtype=np.int64)
        self.families = np.asarray(families, dtype=np.int64)
        self._family_members: Dict[int, np.ndarray] = {}
        for family_id in np.unique(self.families):
            if family_id < 0:
                continue
            members = np.where(self.families == family_id)[0] + 1  # 1-based
            if len(members) > 1:
                self._family_members[int(family_id)] = members

    def __len__(self) -> int:
        return len(self.lengths)

    def length(self, index: int) -> int:
        """Length of the 1-based entry ``index``."""
        return int(self.lengths[index - 1])

    def family_of(self, index: int) -> int:
        """Family id of entry ``index`` (-1 for singletons)."""
        return int(self.families[index - 1])

    def family_partners(self, index: int) -> List[int]:
        """Other members of this entry's family (1-based indexes)."""
        family_id = self.family_of(index)
        members = self._family_members.get(family_id)
        if members is None:
            return []
        return [int(m) for m in members if m != index]

    def homologous_pairs(self) -> List[tuple]:
        """All (i, j) with i < j in the same family."""
        pairs = []
        for members in self._family_members.values():
            members = sorted(int(m) for m in members)
            for a_pos, i in enumerate(members):
                for j in members[a_pos + 1:]:
                    pairs.append((i, j))
        return sorted(pairs)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_database(cls, db: SequenceDatabase) -> "DatabaseProfile":
        family_names: Dict[str, int] = {}
        families = []
        for seq in db:
            if seq.family is None:
                families.append(-1)
            else:
                families.append(
                    family_names.setdefault(seq.family, len(family_names))
                )
        return cls(db.name, np.array(db.lengths()), np.array(families))

    @classmethod
    def synthetic(
        cls,
        name: str,
        size: int,
        seed: int = 0,
        mean_length: float = 360.0,
        length_shape: float = 2.0,
        min_length: int = 30,
        max_length: int = 4000,
        family_fraction: float = 0.3,
        family_size: int = 4,
    ) -> "DatabaseProfile":
        """Fast numpy generation of an SP38-scale profile (no residues)."""
        if size < 1:
            raise BioError("profile size must be positive")
        rng = np.random.default_rng(seed)
        lengths = rng.gamma(length_shape, mean_length / length_shape, size)
        lengths = np.clip(lengths.astype(np.int64), min_length, max_length)
        families = np.full(size, -1, dtype=np.int64)
        n_members = int(size * family_fraction)
        n_families = n_members // family_size
        if n_families:
            member_slots = rng.permutation(size)[: n_families * family_size]
            for family_id in range(n_families):
                slots = member_slots[
                    family_id * family_size:(family_id + 1) * family_size
                ]
                families[slots] = family_id
                # family members share a core length
                core = lengths[slots[0]]
                jitter = rng.integers(-core // 10 - 1, core // 10 + 2, len(slots))
                lengths[slots] = np.clip(core + jitter, min_length, max_length)
        return cls(name, lengths, families)


@dataclass
class CostModel:
    """CPU-cost model for Darwin-style activities, in seconds.

    ``cell_rate`` is DP cells per second on a speed-1.0 CPU (calibrated to
    late-1990s hardware by default so absolute magnitudes land in the
    paper's range). The fixed-PAM first pass is a fast heuristic
    (``fixed_pam_factor`` of the full DP cost); refinement re-runs the DP
    once per scoring matrix evaluated (``refine_evaluations``).
    """

    cell_rate: float = 1.8e6
    fixed_pam_factor: float = 0.25
    refine_evaluations: int = 15
    darwin_startup: float = 0.5
    db_load_per_entry: float = 0.0035
    match_record_cost: float = 0.002
    merge_cost_per_match: float = 0.0005
    merge_base_cost: float = 5.0

    def init_cost(self, db_size: int) -> float:
        """Darwin start-up + database load, charged once per TEU."""
        return self.darwin_startup + self.db_load_per_entry * db_size

    def fixed_pair_cost(self, len_a: int, len_b: int) -> float:
        return len_a * len_b * self.fixed_pam_factor / self.cell_rate

    def refine_pair_cost(self, len_a: int, len_b: int) -> float:
        return len_a * len_b * self.refine_evaluations / self.cell_rate

    def teu_fixed_cost(self, profile: DatabaseProfile,
                       partition: Seq[int], queue: Seq[int]) -> float:
        """Cost of aligning each partition entry against all later queue
        entries (redundant comparisons ruled out, as in the paper)."""
        queue_arr = np.asarray(sorted(queue), dtype=np.int64)
        queue_lengths = profile.lengths[queue_arr - 1].astype(np.float64)
        suffix = np.concatenate([np.cumsum(queue_lengths[::-1])[::-1], [0.0]])
        positions = np.searchsorted(queue_arr, np.asarray(partition))
        cells = 0.0
        for pos, entry in zip(positions, partition):
            # entries strictly after `entry` in the queue
            cells += profile.length(entry) * suffix[pos + 1]
        return cells * self.fixed_pam_factor / self.cell_rate

    def teu_pair_count(self, partition: Seq[int], queue: Seq[int]) -> int:
        queue_arr = np.asarray(sorted(queue), dtype=np.int64)
        positions = np.searchsorted(queue_arr, np.asarray(partition))
        total = len(queue_arr)
        return int(sum(total - pos - 1 for pos in positions))

    def mean_refine_cost(self, profile: DatabaseProfile) -> float:
        mean_len = float(profile.lengths.mean())
        return self.refine_pair_cost(int(mean_len), int(mean_len))

    # -- calibration ----------------------------------------------------------

    def calibrate(self, db: SequenceDatabase, sample_pairs: int = 4,
                  seed: int = 0) -> float:
        """Fit ``cell_rate`` by timing the real aligner on sampled pairs.

        Returns the measured rate (cells/second) and installs it.
        """
        import random as _random

        rng = _random.Random(seed)
        family = default_family()
        matrix = family.matrix(100.0)
        total_cells = 0
        started = time.perf_counter()
        for _ in range(sample_pairs):
            i = rng.randrange(1, len(db) + 1)
            j = rng.randrange(1, len(db) + 1)
            seq_a, seq_b = db.entry(i), db.entry(j)
            sw_score(seq_a.residues, seq_b.residues, matrix)
            total_cells += len(seq_a) * len(seq_b)
        elapsed = time.perf_counter() - started
        if elapsed <= 0:
            raise BioError("calibration timing produced zero elapsed time")
        self.cell_rate = total_cells / elapsed
        return self.cell_rate
