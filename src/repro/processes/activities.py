"""Pre-packaged activity programs for the process library.

"The library management element has been designed to allow users with more
computer knowledge to prepare pre-packaged activities for those users with
less computer knowledge" (paper, Section 3.2). This module is that library:
it binds the dotted program names used by the OCR templates to executable
code over a :class:`~repro.bio.darwin.DarwinEngine`.

Program inventory (all return JSON-able outputs + a CPU cost):

========================  ====================================================
``allvsall.user_input``   Echo/validate the user's parameters (Figure 3 task 1)
``darwin.queue_generation``  Build the full queue file E=[1..N] (task 2)
``darwin.preprocess``     Partition the queue into TEUs (task 3)
``darwin.align_fixed_pam``  Fixed-PAM alignment of one TEU (block body, 1st)
``darwin.refine_pam``     PAM-parameter refinement of a TEU's matches (2nd)
``darwin.merge_by_entry``  Merge R into the entry-sorted master file
``darwin.merge_by_pam``   Sort matches into PAM-distance buckets
``darwin.cleanup``        Compensation: delete a task's partial outputs
========================  ====================================================
"""

from __future__ import annotations

from typing import Any, Dict

from ..bio.darwin import DarwinEngine, merge_match_sets
from ..core.engine.library import (
    ProgramContext,
    ProgramRegistry,
    ProgramResult,
)
from ..errors import ActivityFailure
from . import partitioning


def register_all_vs_all_programs(registry: ProgramRegistry,
                                 darwin: DarwinEngine) -> None:
    """Install the all-vs-all program bindings over a Darwin engine."""
    cost_model = darwin.cost_model
    n_entries = len(darwin.profile)

    def user_input(inputs: Dict[str, Any], ctx: ProgramContext) -> ProgramResult:
        outputs: Dict[str, Any] = {
            "db_name": inputs.get("db", darwin.profile.name),
            "output_file": inputs.get("output_file", "allvsall.out"),
        }
        if "queue_file" in inputs and inputs["queue_file"] is not None:
            queue = inputs["queue_file"]
            if partitioning.descriptor_size(queue) == 0:
                raise ActivityFailure("program-error", "empty queue file")
            outputs["queue_file"] = queue
        return ProgramResult(outputs, cost=0.1)

    def queue_generation(inputs: Dict[str, Any],
                         ctx: ProgramContext) -> ProgramResult:
        queue = partitioning.range_queue(n_entries)
        return ProgramResult(
            {"queue_file": queue, "entries": n_entries},
            cost=0.5 + 1e-5 * n_entries,
        )

    def preprocess(inputs: Dict[str, Any],
                   ctx: ProgramContext) -> ProgramResult:
        queue = inputs["queue"]
        granularity = int(inputs.get("granularity", 50))
        strategy = inputs.get("strategy", "interleaved")
        partitions = partitioning.make_partitions(
            queue, granularity, strategy,
            profile=darwin.profile if strategy == "balanced" else None,
        )
        return ProgramResult(
            {"partitions": partitions, "n_teus": len(partitions)},
            cost=0.5 + 2e-5 * n_entries,
        )

    def align_fixed_pam(inputs: Dict[str, Any],
                        ctx: ProgramContext) -> ProgramResult:
        partition = partitioning.expand(inputs["partition"])
        queue = partitioning.expand(inputs["queue"])
        result = darwin.align_partition(partition, queue)
        return ProgramResult(
            {"match_set": result["match_set"], "pairs": result["pairs"]},
            cost=result["cost"],
        )

    def refine_pam(inputs: Dict[str, Any],
                   ctx: ProgramContext) -> ProgramResult:
        result = darwin.refine_match_set(inputs["matches"])
        return ProgramResult(
            {"match_set": result["match_set"]},
            cost=result["cost"],
        )

    def merge_by_entry(inputs: Dict[str, Any],
                       ctx: ProgramContext) -> ProgramResult:
        sets = [r["matches"] for r in inputs["results"]]
        merged = merge_match_sets(sets, sample_cap=darwin.sample_cap)
        cost = (cost_model.merge_base_cost
                + cost_model.merge_cost_per_match * merged["count"])
        output_file = inputs.get("output_file", "allvsall.out")
        return ProgramResult(
            {
                "master_file": output_file,
                "match_count": merged["count"],
                "matches": merged,
            },
            cost=cost,
        )

    def merge_by_pam(inputs: Dict[str, Any],
                     ctx: ProgramContext) -> ProgramResult:
        sets = [r["matches"] for r in inputs["results"]]
        merged = merge_match_sets(sets, sample_cap=darwin.sample_cap)
        buckets: Dict[str, int] = {}
        edges = [0, 25, 50, 100, 150, 200, 300, 10_000]
        for match in merged["matches"]:
            pam = match.get("pam", 100.0)
            for low, high in zip(edges, edges[1:]):
                if low <= pam < high:
                    buckets[f"pam_{low}_{high}"] = (
                        buckets.get(f"pam_{low}_{high}", 0) + 1
                    )
                    break
        cost = (cost_model.merge_base_cost
                + cost_model.merge_cost_per_match * merged["count"])
        return ProgramResult(
            {
                "pam_sorted_file": "allvsall.pam_sorted",
                "histogram": buckets,
                "match_count": merged["count"],
            },
            cost=cost,
        )

    def cleanup(inputs: Dict[str, Any], ctx: ProgramContext) -> ProgramResult:
        """Compensation: remove the partial outputs a task left behind."""
        return ProgramResult(
            {"cleaned_task": inputs.get("task", ""), "removed": True},
            cost=0.2,
        )

    registry.register("allvsall.user_input", user_input,
                      "query the user for all-vs-all parameters")
    registry.register("darwin.queue_generation", queue_generation,
                      "generate the complete queue file E=[1..N]")
    registry.register("darwin.preprocess", preprocess,
                      "partition the queue into task execution units")
    registry.register("darwin.align_fixed_pam", align_fixed_pam,
                      "fixed-PAM alignment of one TEU against the database")
    registry.register("darwin.refine_pam", refine_pam,
                      "PAM-parameter refinement of a TEU's matches")
    registry.register("darwin.merge_by_entry", merge_by_entry,
                      "merge TEU results sorted by entry number")
    registry.register("darwin.merge_by_pam", merge_by_pam,
                      "sort matches into PAM-distance buckets")
    registry.register("darwin.cleanup", cleanup,
                      "compensation: delete partial outputs")
