"""The Tower of Information (paper, Figure 1) as a BioOpera process.

"One of the main goals of the BioOpera project ... is to be able to build
a software system capable of automatically predicting the secondary
structure of a protein given the recipe encoded in its DNA": raw DNA →
genes → protein sequences → pairwise alignments (the all-vs-all, here a
**subprocess** — the paper's motivation for modular design) → variances
and distances → multiple sequence alignments & phylogenetic trees (two
branches) → probabilistic ancestral sequences → secondary-structure
prediction → protein function.

Each derivation step is modeled (the real algorithms are "NP-complete and
algorithms are yet to be developed for some of them"), but every step
produces real derived artifacts with lineage, and the pairwise-alignment
step runs the genuine all-vs-all process, so the tower exercises nesting,
late binding, and cross-step data flow end to end.
"""

from __future__ import annotations


from ..bio.darwin import DarwinEngine
from ..core.engine.library import (
    ProgramContext,
    ProgramRegistry,
    ProgramResult,
)
from ..core.engine.server import BioOperaServer
from ..core.model.process import ProcessTemplate
from ..core.ocr.parser import parse_ocr
from .all_vs_all import install_all_vs_all

TOWER_OCR = '''
PROCESS tower_of_information
  DESCRIPTION "Raw DNA to protein function (Figure 1)"
  INPUT genome_name
  INPUT genome_size DEFAULT 100000
  INPUT db_name
  INPUT granularity DEFAULT 50
  OUTPUT functions = FunctionPrediction.functions
  OUTPUT tree = PhylogeneticTree.tree
  OUTPUT structure_confidence = SecondaryStructure.confidence

  ACTIVITY GeneLocation
    PROGRAM tower.gene_location
    DESCRIPTION "Locate genes in the raw DNA"
    IN genome = wb.genome_name
    IN size = wb.genome_size
    MAP genes -> genes
  END

  ACTIVITY Translation
    PROGRAM tower.translate
    DESCRIPTION "Translate located genes into protein sequences"
    IN genes = wb.genes
    MAP proteins -> proteins
  END

  SUBPROCESS PairwiseAlignments
    TEMPLATE all_vs_all
    IN db_name = wb.db_name
    IN granularity = wb.granularity
  END

  ACTIVITY Distances
    PROGRAM tower.distances
    DESCRIPTION "Pairwise variances and distances from the alignments"
    IN match_count = PairwiseAlignments.match_count
    IN proteins = wb.proteins
    MAP distance_matrix -> distance_matrix
  END

  ACTIVITY MultipleAlignment
    PROGRAM tower.msa
    DESCRIPTION "Multiple sequence alignments"
    IN distances = wb.distance_matrix
    IN proteins = wb.proteins
  END

  ACTIVITY PhylogeneticTree
    PROGRAM tower.phylo_tree
    DESCRIPTION "Build the phylogenetic (evolutionary) tree"
    IN distances = wb.distance_matrix
  END

  ACTIVITY AncestralSequences
    PROGRAM tower.ancestral
    DESCRIPTION "Probabilistic ancestral sequences"
    IN msa = MultipleAlignment.msa
    IN tree = PhylogeneticTree.tree
    JOIN and
  END

  ACTIVITY SecondaryStructure
    PROGRAM tower.secondary_structure
    DESCRIPTION "Secondary structure prediction"
    IN msa = MultipleAlignment.msa
    IN ancestors = AncestralSequences.ancestors
  END

  ACTIVITY FunctionPrediction
    PROGRAM tower.function
    DESCRIPTION "Deduce protein function from the predicted shape"
    IN structure = SecondaryStructure.structure
  END

  CONNECT GeneLocation -> Translation
  CONNECT Translation -> PairwiseAlignments
  CONNECT PairwiseAlignments -> Distances
  CONNECT Distances -> MultipleAlignment
  CONNECT Distances -> PhylogeneticTree
  CONNECT MultipleAlignment -> AncestralSequences
  CONNECT PhylogeneticTree -> AncestralSequences
  CONNECT AncestralSequences -> SecondaryStructure
  CONNECT SecondaryStructure -> FunctionPrediction
END
'''


def register_tower_programs(registry: ProgramRegistry,
                            darwin: DarwinEngine) -> None:
    """Modeled derivation steps for the tower levels above the all-vs-all."""
    n = len(darwin.profile)

    def gene_location(inputs, ctx: ProgramContext) -> ProgramResult:
        size = int(inputs.get("size", 100_000))
        rng = ctx.rng()
        genes = max(1, int(size / rng.uniform(900, 1100)))
        return ProgramResult(
            {"genes": genes, "genome": inputs.get("genome", "")},
            cost=0.002 * size / 100.0,
        )

    def translate(inputs, ctx: ProgramContext) -> ProgramResult:
        genes = int(inputs["genes"])
        return ProgramResult(
            {"proteins": genes, "mean_length": 360},
            cost=0.01 * genes,
        )

    def distances(inputs, ctx: ProgramContext) -> ProgramResult:
        matches = int(inputs.get("match_count", 0))
        return ProgramResult(
            {"distance_matrix": f"distances({matches} matches)",
             "pairs_used": matches},
            cost=5.0 + 0.001 * matches,
        )

    def msa(inputs, ctx: ProgramContext) -> ProgramResult:
        return ProgramResult(
            {"msa": "msa.aln", "columns": 1200},
            cost=120.0,
        )

    def phylo_tree(inputs, ctx: ProgramContext) -> ProgramResult:
        return ProgramResult(
            {"tree": f"((...) likelihood tree over {n} taxa)",
             "taxa": n},
            cost=300.0,
        )

    def ancestral(inputs, ctx: ProgramContext) -> ProgramResult:
        return ProgramResult(
            {"ancestors": "ancestral.seqs", "nodes": max(1, n - 1)},
            cost=90.0,
        )

    def secondary_structure(inputs, ctx: ProgramContext) -> ProgramResult:
        rng = ctx.rng()
        return ProgramResult(
            {"structure": "helix/sheet/coil assignment",
             "confidence": round(rng.uniform(0.6, 0.8), 3)},
            cost=60.0,
        )

    def function(inputs, ctx: ProgramContext) -> ProgramResult:
        return ProgramResult(
            {"functions": "predicted-function-table"},
            cost=20.0,
        )

    registry.register("tower.gene_location", gene_location)
    registry.register("tower.translate", translate)
    registry.register("tower.distances", distances)
    registry.register("tower.msa", msa)
    registry.register("tower.phylo_tree", phylo_tree)
    registry.register("tower.ancestral", ancestral)
    registry.register("tower.secondary_structure", secondary_structure)
    registry.register("tower.function", function)


def build_tower_template() -> ProcessTemplate:
    return parse_ocr(TOWER_OCR)


def install_tower(server: BioOperaServer, darwin: DarwinEngine) -> None:
    """Install the tower and its dependencies (including the all-vs-all)."""
    install_all_vs_all(server, darwin)
    register_tower_programs(server.registry, darwin)
    server.define_template(build_tower_template())
