"""Queue files and TEU partitioning (paper, Sections 3.3 and 4).

The all-vs-all takes a *queue file* — "the list of entry indexes E = [1..N]
into the dataset" — and Preprocessing creates "a partition P = {P1..Pn} of
the entries E in the queue file"; each Pi becomes one task execution unit
(TEU).

Queues and partitions are passed around as compact JSON **descriptors** so
that SP38-scale runs (80,000 entries, 512 TEUs) do not persist megabytes of
index lists into the instance space:

* ``{"kind": "range", "lo": 1, "hi": N}`` — a contiguous index range;
* ``{"kind": "stride", "start": s, "stride": k, "hi": N}`` — s, s+k, ...;
* ``{"kind": "list", "entries": [...]}`` — explicit (small queues only).

Three partitioning strategies are provided; ``interleaved`` is the default
because contiguous ranges over a triangular workload (entry *i* is compared
against all entries *j > i*) are badly imbalanced, while striding evens the
pair counts out to the residual variance of sequence lengths.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..bio.costmodel import DatabaseProfile
from ..errors import ReproError


def range_queue(n: int) -> Dict[str, Any]:
    """The default queue file: every entry of an N-entry database."""
    if n < 1:
        raise ReproError("queue must contain at least one entry")
    return {"kind": "range", "lo": 1, "hi": n}


def list_queue(entries: Sequence[int]) -> Dict[str, Any]:
    """An explicit queue (used to discard ill-behaving sequences)."""
    entries = sorted(set(int(e) for e in entries))
    if not entries:
        raise ReproError("queue must contain at least one entry")
    return {"kind": "list", "entries": entries}


def expand(descriptor: Dict[str, Any]) -> List[int]:
    """Materialize a descriptor into a sorted list of 1-based indexes."""
    kind = descriptor.get("kind")
    if kind == "range":
        return list(range(int(descriptor["lo"]), int(descriptor["hi"]) + 1))
    if kind == "stride":
        return list(range(int(descriptor["start"]),
                          int(descriptor["hi"]) + 1,
                          int(descriptor["stride"])))
    if kind == "list":
        return [int(e) for e in descriptor["entries"]]
    raise ReproError(f"unknown queue/partition descriptor kind {kind!r}")


def descriptor_size(descriptor: Dict[str, Any]) -> int:
    """Number of entries a descriptor denotes, without materializing it."""
    kind = descriptor.get("kind")
    if kind == "range":
        return max(0, int(descriptor["hi"]) - int(descriptor["lo"]) + 1)
    if kind == "stride":
        span = int(descriptor["hi"]) - int(descriptor["start"])
        if span < 0:
            return 0
        return span // int(descriptor["stride"]) + 1
    if kind == "list":
        return len(descriptor["entries"])
    raise ReproError(f"unknown queue/partition descriptor kind {kind!r}")


def make_partitions(queue: Dict[str, Any], granularity: int,
                    strategy: str = "interleaved",
                    profile: Optional[DatabaseProfile] = None,
                    ) -> List[Dict[str, Any]]:
    """Split a queue into ``granularity`` TEU descriptors.

    Strategies:

    * ``interleaved`` — TEU *k* takes entries ``k, k+n, k+2n, ...`` (stride
      descriptors for range queues; index-sliced lists otherwise). Balances
      the triangular pair counts.
    * ``contiguous`` — consecutive ranges (the naive split; kept as an
      ablation baseline because it is badly imbalanced).
    * ``balanced`` — greedy longest-processing-time assignment using the
      database profile's estimated per-entry pair cost; needs ``profile``.
    """
    if granularity < 1:
        raise ReproError("granularity must be >= 1")
    entries = expand(queue)
    n_entries = len(entries)
    granularity = min(granularity, n_entries)

    if strategy == "interleaved":
        if queue.get("kind") == "range" and int(queue["lo"]) == 1:
            hi = int(queue["hi"])
            return [
                {"kind": "stride", "start": k + 1, "stride": granularity,
                 "hi": hi}
                for k in range(granularity)
            ]
        return [
            {"kind": "list", "entries": entries[k::granularity]}
            for k in range(granularity)
        ]

    if strategy == "contiguous":
        partitions: List[Dict[str, Any]] = []
        base = n_entries // granularity
        extra = n_entries % granularity
        position = 0
        for k in range(granularity):
            size = base + (1 if k < extra else 0)
            chunk = entries[position:position + size]
            position += size
            if not chunk:
                continue
            if chunk == list(range(chunk[0], chunk[-1] + 1)):
                partitions.append(
                    {"kind": "range", "lo": chunk[0], "hi": chunk[-1]}
                )
            else:
                partitions.append({"kind": "list", "entries": chunk})
        return partitions

    if strategy == "balanced":
        if profile is None:
            raise ReproError("balanced partitioning needs a DatabaseProfile")
        # Cost of entry i ~ len_i * (total length of later queue entries).
        suffix = 0.0
        weights = []
        for index in reversed(entries):
            weights.append((index, profile.length(index) * suffix))
            suffix += profile.length(index)
        weights.reverse()
        weights.sort(key=lambda pair: -pair[1])
        bins: List[List[int]] = [[] for _ in range(granularity)]
        loads = [0.0] * granularity
        for index, weight in weights:
            slot = loads.index(min(loads))
            bins[slot].append(index)
            loads[slot] += weight
        return [
            {"kind": "list", "entries": sorted(chunk)}
            for chunk in bins if chunk
        ]

    raise ReproError(f"unknown partition strategy {strategy!r}")


def partition_pair_counts(queue: Dict[str, Any],
                          partitions: List[Dict[str, Any]]) -> List[int]:
    """Pairwise-alignment count per TEU (for balance diagnostics)."""
    queue_entries = expand(queue)
    position = {entry: i for i, entry in enumerate(queue_entries)}
    total = len(queue_entries)
    counts = []
    for part in partitions:
        counts.append(sum(
            total - position[entry] - 1 for entry in expand(part)
        ))
    return counts
