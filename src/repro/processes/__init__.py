"""Pre-built process library: the all-vs-all (Figure 3) and the tower of
information (Figure 1), plus queue/partition descriptors and pre-packaged
activity programs."""

from . import partitioning
from .activities import register_all_vs_all_programs
from .all_vs_all import (
    ALIGN_CHUNK_OCR,
    ALL_VS_ALL_OCR,
    build_align_chunk_template,
    build_all_vs_all_template,
    install_all_vs_all,
)
from .tower import (
    TOWER_OCR,
    build_tower_template,
    install_tower,
    register_tower_programs,
)

__all__ = [
    "partitioning",
    "register_all_vs_all_programs",
    "ALIGN_CHUNK_OCR",
    "ALL_VS_ALL_OCR",
    "build_align_chunk_template",
    "build_all_vs_all_template",
    "install_all_vs_all",
    "TOWER_OCR",
    "build_tower_template",
    "install_tower",
    "register_tower_programs",
]
