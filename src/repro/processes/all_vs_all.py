"""The all-vs-all process exactly as Figure 3 draws it.

Two templates, written in OCR (so the process library doubles as example
OCR code):

* ``align_chunk`` — the subprocess run inside the Alignment parallel task:
  a fixed-PAM first pass over one TEU followed by PAM-parameter refinement
  of its matches (``Qi ⊆ Pi``, ``Ri ⊆ Qi`` in the figure).
* ``all_vs_all`` — the root process: user input, optional queue
  generation (conditional on the queue file's absence — the activation
  condition the paper spells out), preprocessing into TEUs, the parallel
  Alignment block, and the two merge tasks.

The Preprocessing/Alignment pair sits in a sphere of atomicity with a
cleanup compensation, exercising OCR's exception-handling constructs.
"""

from __future__ import annotations


from ..bio.darwin import DarwinEngine
from ..core.engine.server import BioOperaServer
from ..core.model.process import ProcessTemplate
from ..core.ocr.parser import parse_ocr
from .activities import register_all_vs_all_programs

ALIGN_CHUNK_OCR = '''
PROCESS align_chunk
  DESCRIPTION "Align one task execution unit (TEU) and refine its matches"
  INPUT partition
  INPUT queue_file
  INPUT db_name
  INPUT refine_placement DEFAULT ""
  OUTPUT matches = Refine.match_set
  OUTPUT pairs = FixedPAM.pairs

  ACTIVITY FixedPAM
    PROGRAM darwin.align_fixed_pam
    DESCRIPTION "First alignment, using a fixed PAM distance"
    IN partition = wb.partition
    IN queue = wb.queue_file
    IN db = wb.db_name
    ON_FAILURE RETRY 3 THEN ABORT
  END
  ACTIVITY Refine
    PROGRAM darwin.refine_pam
    DESCRIPTION "Alignment algorithm finding PAM distance maximizing similarity"
    IN matches = FixedPAM.match_set
    IN db = wb.db_name
    IN placement = wb.refine_placement
    ON_FAILURE RETRY 3 THEN ABORT
  END
  CONNECT FixedPAM -> Refine
END
'''

ALL_VS_ALL_OCR = '''
PROCESS all_vs_all
  DESCRIPTION "Self-comparison of all entries in a sequence database"
  INPUT db_name
  INPUT queue_file OPTIONAL
  INPUT granularity DEFAULT 50
  INPUT partition_strategy DEFAULT "interleaved"
  INPUT output_file DEFAULT "allvsall.out"
  INPUT refine_placement DEFAULT ""
  OUTPUT master_file = MergeByEntry.master_file
  OUTPUT match_count = MergeByEntry.match_count
  OUTPUT pam_histogram = MergeByPAM.histogram

  ACTIVITY UserInput
    PROGRAM allvsall.user_input
    DESCRIPTION "Request from the user the names of output files and database to use"
    IN db = wb.db_name
    IN queue_file = wb.queue_file
    IN output_file = wb.output_file
    MAP queue_file -> queue_file
    MAP output_file -> output_file
  END

  ACTIVITY QueueGeneration
    PROGRAM darwin.queue_generation
    DESCRIPTION "If user does not provide a queue file, generate one"
    IN db = wb.db_name
    MAP queue_file -> queue_file
  END

  ACTIVITY Preprocessing
    PROGRAM darwin.preprocess
    DESCRIPTION "Create data partition P based on given input data"
    IN queue = wb.queue_file
    IN granularity = wb.granularity
    IN strategy = wb.partition_strategy
    MAP partitions -> partitions
  END

  PARALLEL Alignment
    FOREACH wb.partitions AS partition
    DESCRIPTION "For each Pi in P: align every entry against the database"
    JOIN and
    SUBPROCESS Chunk
      TEMPLATE align_chunk
      IN queue_file = wb.queue_file
      IN db_name = wb.db_name
      IN refine_placement = wb.refine_placement
    END
  END

  ACTIVITY MergeByEntry
    PROGRAM darwin.merge_by_entry
    DESCRIPTION "Merge results, sorting by entry number"
    IN results = Alignment.results
    IN output_file = wb.output_file
  END

  ACTIVITY MergeByPAM
    PROGRAM darwin.merge_by_pam
    DESCRIPTION "Merge results, sorting by PAM distance of each alignment"
    IN results = Alignment.results
  END

  CONNECT UserInput -> QueueGeneration WHEN [NOT DEFINED(wb.queue_file)]
  CONNECT UserInput -> Preprocessing WHEN [DEFINED(wb.queue_file)]
  CONNECT QueueGeneration -> Preprocessing
  CONNECT Preprocessing -> Alignment
  CONNECT Alignment -> MergeByEntry
  CONNECT Alignment -> MergeByPAM

  SPHERE AlignmentSphere
    TASKS Preprocessing Alignment
    COMPENSATE Preprocessing WITH darwin.cleanup
    ON_ABORT abort_process
  END
END
'''


def build_align_chunk_template() -> ProcessTemplate:
    """Parse and validate the ``align_chunk`` subprocess template."""
    return parse_ocr(ALIGN_CHUNK_OCR)


def build_all_vs_all_template() -> ProcessTemplate:
    """Parse and validate the root ``all_vs_all`` template."""
    return parse_ocr(ALL_VS_ALL_OCR)


def install_all_vs_all(server: BioOperaServer,
                       darwin: DarwinEngine) -> None:
    """Register templates and programs on a server (idempotent templates;
    programs must not be already present)."""
    register_all_vs_all_programs(server.registry, darwin)
    server.define_template(build_align_chunk_template())
    server.define_template(build_all_vs_all_template())
