"""Command-line utilities for working with OCR process files.

Usage::

    python -m repro.tools check   process.ocr     # parse + validate
    python -m repro.tools format  process.ocr     # canonical pretty-print
    python -m repro.tools dot     process.ocr     # Graphviz DOT to stdout
    python -m repro.tools inspect process.ocr     # inventory: tasks, flows

Exit status is non-zero on syntax or validation errors, with the error
location on stderr — suitable for CI checks over a process library.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.model.dot import template_to_dot
from .core.model.process import ProcessTemplate
from .core.ocr.parser import parse_ocr_unchecked
from .core.ocr.printer import print_ocr
from .errors import OCRError, ReproError


def _load(path: str) -> ProcessTemplate:
    if path == "-":
        source = sys.stdin.read()
    else:
        with open(path) as fh:
            source = fh.read()
    return parse_ocr_unchecked(source)


def cmd_check(args) -> int:
    try:
        template = _load(args.file)
    except OCRError as exc:
        print(f"{args.file}: syntax error: {exc}", file=sys.stderr)
        return 1
    problems = template.validate()
    if problems:
        for problem in problems:
            print(f"{args.file}: {problem}", file=sys.stderr)
        return 2
    print(f"{args.file}: OK — process {template.name!r}, "
          f"{len(template.graph.tasks)} top-level tasks, "
          f"{len(template.graph.connectors)} connectors")
    return 0


def cmd_format(args) -> int:
    template = _load(args.file)
    sys.stdout.write(print_ocr(template))
    return 0


def cmd_dot(args) -> int:
    template = _load(args.file)
    sys.stdout.write(template_to_dot(template))
    return 0


def cmd_inspect(args) -> int:
    template = _load(args.file)
    print(f"process {template.name}")
    if template.description:
        print(f"  description: {template.description}")
    for param in template.parameters:
        flags = []
        if param.optional:
            flags.append("optional")
        if param.default is not None:
            flags.append(f"default={param.default!r}")
        suffix = f" ({', '.join(flags)})" if flags else ""
        print(f"  input  {param.name}{suffix}")
    for name, binding in sorted(template.outputs.items()):
        print(f"  output {name} = {binding.to_text()}")
    print("  tasks:")
    for path, task in template.graph.walk_tasks():
        detail = ""
        if hasattr(task, "program"):
            detail = f" -> {task.program}"
        elif hasattr(task, "template_name"):
            detail = f" -> subprocess {task.template_name}"
        print(f"    [{task.kind:<10}] {path}{detail}")
    programs = sorted(template.activity_programs())
    print(f"  external bindings ({len(programs)}):")
    for program in programs:
        print(f"    {program}")
    subs = sorted(template.subprocess_names())
    if subs:
        print(f"  subprocess templates required: {', '.join(subs)}")
    if template.spheres:
        for sphere in template.spheres:
            print(f"  sphere {sphere.name}: {', '.join(sphere.tasks)}")
    problems = template.validate()
    if problems:
        print(f"  INVALID ({len(problems)} problems):")
        for problem in problems:
            print(f"    {problem}")
        return 2
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.tools", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn in (("check", cmd_check), ("format", cmd_format),
                     ("dot", cmd_dot), ("inspect", cmd_inspect)):
        command = sub.add_parser(name)
        command.add_argument("file", help="OCR file path, or - for stdin")
        command.set_defaults(fn=fn)
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
