"""Configuration sweeps: factorial cells, CRN, Pareto + weighted ranking.

A sweep compares configuration cells — points in the cartesian product
of a few :class:`~repro.faults.chaos.CampaignConfig` axes (sync policy,
checkpoint interval, lease timing, quarantine, ...) — under *common
random numbers*: every cell runs the exact same seed set, so two cells
differ only in configuration, never in the drawn fault schedule. That is
the classic variance-reduction trick for paired comparison of
alternatives.

Each cell is then scored on three dependability axes:

* ``survival`` — fraction of runs with every invariant intact (higher
  is better);
* ``throughput`` — mean fault-free-wall / run-wall ratio (1.0 = the
  faults cost nothing; higher is better);
* ``recovery`` — mean server downtime per run in simulated seconds
  (lower is better).

Ranking uses both MCDM views DAVOS offers: the Pareto front (cells no
other cell beats on every axis) and a weighted-sum score over min-max
normalized metrics, so the report shows the undominated set *and* a
single defensible ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .chaos import CampaignConfig

#: default weighted-sum weights: survival dominates (it is the paper's
#: claim), throughput and recovery split the rest.
DEFAULT_WEIGHTS = {"survival": 0.6, "throughput": 0.25, "recovery": 0.15}

#: metric orientations: +1 = maximize, -1 = minimize.
METRIC_SENSE = {"survival": 1, "throughput": 1, "recovery": -1}


@dataclass(frozen=True)
class SweepAxis:
    """One swept CampaignConfig field and the values it takes."""

    name: str
    values: Tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))


def cells(axes: Sequence[SweepAxis],
          base: Optional[CampaignConfig] = None) -> List[CampaignConfig]:
    """Full factorial design: every combination of axis values.

    Cells come out in deterministic row-major order (first axis slowest),
    which fixes the campaign's canonical run order and therefore the
    journal layout.
    """
    configs = [base or CampaignConfig()]
    for axis in axes:
        configs = [
            config.replace(**{axis.name: value})
            for config in configs
            for value in axis.values
        ]
    return configs


@dataclass
class CellOutcome:
    """One swept cell's aggregated dependability metrics."""

    config: CampaignConfig
    runs: int = 0
    survived: int = 0
    metrics: Dict[str, float] = field(default_factory=dict)
    score: float = 0.0
    pareto: bool = False
    records: List[Dict] = field(default_factory=list)

    @property
    def cell(self) -> str:
        """The cell's stable label (journal/report key)."""
        return self.config.label()

    def to_dict(self) -> Dict:
        """JSON-safe summary for ``BENCH_chaos.json``."""
        return {
            "cell": self.cell,
            "config": self.config.to_dict(),
            "runs": self.runs,
            "survived": self.survived,
            "metrics": {k: round(v, 6) for k, v in self.metrics.items()},
            "score": round(self.score, 6),
            "pareto": self.pareto,
        }


def summarize_cell(config: CampaignConfig,
                   records: Sequence[Dict]) -> CellOutcome:
    """Aggregate one cell's run records into its three metrics."""
    outcome = CellOutcome(config=config, records=list(records))
    outcome.runs = len(records)
    outcome.survived = sum(1 for record in records if record["ok"])
    walls = [record["rel_throughput"] for record in records]
    downtimes = [record["recovery_time"] for record in records]
    outcome.metrics = {
        "survival": outcome.survived / outcome.runs if outcome.runs else 0.0,
        "throughput": sum(walls) / len(walls) if walls else 0.0,
        "recovery": sum(downtimes) / len(downtimes) if downtimes else 0.0,
    }
    return outcome


def dominates(a: Dict[str, float], b: Dict[str, float]) -> bool:
    """True when ``a`` is at least as good as ``b`` on every metric and
    strictly better on at least one (respecting each metric's sense)."""
    better_somewhere = False
    for name, sense in METRIC_SENSE.items():
        delta = (a[name] - b[name]) * sense
        if delta < 0:
            return False
        if delta > 0:
            better_somewhere = True
    return better_somewhere


def pareto_front(outcomes: Sequence[CellOutcome]) -> List[CellOutcome]:
    """Mark and return the undominated cells (stable order)."""
    front = []
    for candidate in outcomes:
        candidate.pareto = not any(
            dominates(other.metrics, candidate.metrics)
            for other in outcomes if other is not candidate
        )
        if candidate.pareto:
            front.append(candidate)
    return front


def weighted_scores(outcomes: Sequence[CellOutcome],
                    weights: Optional[Dict[str, float]] = None) -> None:
    """Assign min-max-normalized weighted-sum scores in place.

    Minimized metrics are inverted during normalization so that 1.0 is
    always "best". A metric that is constant across cells contributes its
    full weight to every cell (it cannot discriminate).
    """
    weights = weights or DEFAULT_WEIGHTS
    spans = {}
    for name in METRIC_SENSE:
        values = [outcome.metrics[name] for outcome in outcomes]
        spans[name] = (min(values), max(values)) if values else (0.0, 0.0)
    for outcome in outcomes:
        score = 0.0
        for name, sense in METRIC_SENSE.items():
            low, high = spans[name]
            if high == low:
                normalized = 1.0
            else:
                normalized = (outcome.metrics[name] - low) / (high - low)
                if sense < 0:
                    normalized = 1.0 - normalized
            score += weights.get(name, 0.0) * normalized
        outcome.score = score


def run_sweep(engine, configs: Sequence[CampaignConfig],
              seeds: Sequence[int],
              weights: Optional[Dict[str, float]] = None,
              log: Optional[Callable[[str], None]] = None
              ) -> List[CellOutcome]:
    """Run every cell over the same seed set and rank the outcomes.

    ``engine`` is a :class:`~repro.faults.campaign.CampaignEngine`; the
    common seed set is what makes cell-to-cell differences attributable
    to configuration rather than to luck of the fault draw. Returns
    outcomes sorted by weighted score (best first), with the Pareto
    front marked.
    """
    from .campaign import RunSpec

    seeds = list(seeds)
    outcomes = []
    for config in configs:
        records = engine.run([RunSpec(seed, config) for seed in seeds])
        outcome = summarize_cell(config, records)
        outcomes.append(outcome)
        if log:
            m = outcome.metrics
            log(f"  cell {outcome.cell}: survival "
                f"{m['survival']:.0%}, throughput {m['throughput']:.3f}, "
                f"recovery {m['recovery']:.0f}s")
    weighted_scores(outcomes, weights)
    pareto_front(outcomes)
    outcomes.sort(key=lambda o: (-o.score, o.cell))
    return outcomes
