"""Dependability campaign engine: parallel, statistical, resumable.

This module turns the single-threaded chaos loop into a managed
experiment platform in the DAVOS mold:

* **parallel execution** — seeded runs are farmed out to a pool of
  ``multiprocessing`` workers, each holding its own workload engine and
  per-configuration fault-free baseline. Runs are pure functions of
  ``(seed, config)``, so the aggregated results are byte-identical
  whatever the pool size.
* **per-run wall-clock timeouts** — a run that exceeds its budget is
  reaped (the worker is terminated and respawned) and recorded as a
  first-class ``hung`` failure instead of stalling the campaign. The
  reaped record still carries the generated fault plan, so a hang is as
  reproducible as any other failure.
* **crash-safe journal** — every completed run is appended to a JSONL
  journal (flush + fsync per line) *in canonical spec order*, so the
  journal is always a prefix of the campaign. An interrupted campaign
  re-opened on the same journal resumes after the prefix instead of
  re-running completed seeds.
* **iterative statistical sampling** — :func:`run_statistical` draws
  seed batches until every engaged fault category's Wilson-interval
  half-width is within the target epsilon (see :mod:`repro.faults.stats`).

Failing (and hung) runs additionally dump their plan JSON — one file per
run — into a ``failing_plans/`` directory for post-campaign triage and
``--rerun`` reproduction.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from . import stats
from .chaos import CampaignConfig

#: journal header magic (version-checked on resume).
JOURNAL_KIND = "chaos-campaign-journal"
JOURNAL_VERSION = 1

#: how long a reaped worker gets to die before we stop waiting (seconds).
_REAP_GRACE = 5.0


@dataclass(frozen=True)
class RunSpec:
    """One unit of campaign work: a seed under a configuration cell.

    ``hang`` is a test hook: the worker parks forever instead of running
    the campaign, which is how the timeout/reaping path is exercised
    without depending on a genuinely wedged workload.
    """

    seed: int
    config: CampaignConfig = CampaignConfig()
    hang: bool = False

    def key(self) -> Dict:
        """The identity a journal record must match to cover this spec."""
        return {"seed": self.seed, "cell": self.config.label()}


class JournalError(Exception):
    """The journal on disk does not belong to this campaign."""


class Journal:
    """Append-only JSONL results journal with a crash-tolerant loader.

    The first line is a header carrying campaign metadata; every other
    line is one run record. Lines are flushed and fsynced as written, and
    the loader ignores a torn final line (a crash mid-append), so a
    journal is always a clean prefix of the campaign's canonical run
    order.
    """

    def __init__(self, path: str, meta: Optional[Dict] = None):
        self.path = path
        self.records: List[Dict] = []
        meta = meta or {}
        if os.path.exists(path):
            self._load(meta)
            self._fh = open(path, "a", encoding="utf-8")
        else:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fh = open(path, "w", encoding="utf-8")
            self._write_line({
                "kind": JOURNAL_KIND,
                "version": JOURNAL_VERSION,
                "meta": meta,
            })

    def _load(self, meta: Dict) -> None:
        with open(self.path, encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise JournalError(f"{self.path}: empty journal")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(f"{self.path}: unreadable header") from exc
        if header.get("kind") != JOURNAL_KIND:
            raise JournalError(f"{self.path}: not a campaign journal")
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"{self.path}: journal version {header.get('version')!r}, "
                f"engine speaks {JOURNAL_VERSION}"
            )
        if header.get("meta") != meta:
            raise JournalError(
                f"{self.path}: journal belongs to a different campaign "
                f"({header.get('meta')!r} != {meta!r}); pass --fresh to "
                f"discard it"
            )
        for line in lines[1:]:
            try:
                self.records.append(json.loads(line))
            except json.JSONDecodeError:
                # Torn final line: the process died mid-append. Every
                # line before it was fsynced whole, so just drop it.
                break

    def _write_line(self, payload: Dict) -> None:
        self._fh.write(json.dumps(payload, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, record: Dict) -> None:
        """Durably append one run record."""
        self._write_line(record)
        self.records.append(record)

    def close(self) -> None:
        """Close the underlying file handle."""
        self._fh.close()


# ----------------------------------------------------------------------
# worker side

def _make_record(spec_dict: Dict, config: CampaignConfig, baseline: Dict,
                 result) -> Dict:
    """Reduce a CampaignResult to the JSON the journal stores."""
    wall = result.wall or 0.0
    record = {
        "seed": spec_dict["seed"],
        "cell": config.label(),
        "config": config.to_dict(),
        "ok": result.ok,
        "status": result.status,
        "categories": result.categories(),
        "crashes": result.crashes,
        "recoveries": result.recoveries,
        "recovery_time": round(result.recovery_time, 6),
        "wall": round(wall, 6),
        "events": result.events,
        "faults_fired": len(result.fired),
        # relative throughput: fault-free wall time over this run's wall
        # time (1.0 = no slowdown). The sweep ranks on its cell mean.
        "rel_throughput": round(baseline["wall"] / wall, 6) if wall else 0.0,
        "violations": list(result.violations),
    }
    if not result.ok:
        record["plan"] = result.plan
    return record


def _worker_main(worker_id: int, task_queue, result_queue,
                 darwin_size: int) -> None:
    """Worker loop: pull (index, spec), run the campaign, push the record.

    Each worker builds the workload engine once and caches one fault-free
    baseline per configuration cell; everything else is a pure function
    of the spec, which is what makes pool-size-independent results (and
    byte-identical journals) possible.
    """
    from .chaos import FaultPlan, default_darwin, fault_free_baseline, \
        run_campaign
    from ..cluster import uniform

    darwin = default_darwin(darwin_size)
    baselines: Dict[str, Dict] = {}
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, spec_dict = item
        config = CampaignConfig.from_dict(spec_dict["config"])
        cache_key = json.dumps(config.to_dict(), sort_keys=True)
        baseline = baselines.get(cache_key)
        if baseline is None:
            baseline = fault_free_baseline(darwin, config=config)
            baselines[cache_key] = baseline
        node_names = sorted(
            node.name for node in uniform(config.nodes, cpus=config.cpus)
        )
        plan = FaultPlan.generate(
            spec_dict["seed"], node_names,
            horizon=max(120.0, baseline["wall"] * 1.5),
            profile=config.profile,
        )
        # Announce the run before executing it: if this run hangs and is
        # reaped, the parent still knows its categories and plan, so the
        # hung record is attributable and reproducible.
        result_queue.put(("start", worker_id, index, {
            "categories": plan.categories(),
            "plan": plan.to_dict(),
        }))
        if spec_dict.get("hang"):
            while True:  # test hook: park until the parent reaps us
                time.sleep(60.0)
        result = run_campaign(spec_dict["seed"], darwin, baseline=baseline,
                              plan=plan, config=config)
        result_queue.put((
            "done", worker_id, index,
            _make_record(spec_dict, config, baseline, result),
        ))


# ----------------------------------------------------------------------
# parent side

class _Worker:
    """One pool slot: a process, its private task queue, and its lease."""

    def __init__(self, ctx, worker_id: int, result_queue, darwin_size: int):
        self.id = worker_id
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_queue, result_queue, darwin_size),
            daemon=True,
        )
        self.process.start()
        self.task: Optional[int] = None       # index of the assigned run
        self.deadline: Optional[float] = None
        self.started: Optional[Dict] = None   # last "start" payload

    def assign(self, index: int, spec_dict: Dict,
               timeout: Optional[float]) -> None:
        """Hand one run to this worker and start its timeout clock."""
        self.task = index
        self.started = None
        self.deadline = (time.monotonic() + timeout
                         if timeout is not None else None)
        self.task_queue.put((index, spec_dict))

    def finish(self) -> None:
        """Clear the lease after the worker reported a result."""
        self.task = None
        self.deadline = None
        self.started = None

    def stop(self) -> None:
        """Ask the worker to exit (graceful: sentinel, then join)."""
        try:
            self.task_queue.put(None)
        except ValueError:
            pass
        self.process.join(timeout=_REAP_GRACE)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=_REAP_GRACE)

    def kill(self) -> None:
        """Terminate the worker immediately (timeout/hang reaping)."""
        self.process.terminate()
        self.process.join(timeout=_REAP_GRACE)
        if self.process.is_alive() and hasattr(self.process, "kill"):
            self.process.kill()
            self.process.join(timeout=_REAP_GRACE)


class CampaignEngine:
    """Parallel, resumable executor for seeded fault-injection runs.

    Parameters
    ----------
    workers:
        pool size (1 = serial, but still isolated in a worker process so
        per-run timeouts apply either way).
    timeout:
        per-run wall-clock budget in seconds; ``None`` disables reaping.
    journal_path / journal_meta:
        when given, completed runs are durably journaled and a journal
        left by an interrupted campaign with matching meta is resumed.
    failing_dir:
        when given, every failed/hung run's plan is dumped there as one
        JSON file.
    """

    def __init__(self, workers: int = 1, timeout: Optional[float] = 300.0,
                 journal_path: Optional[str] = None,
                 journal_meta: Optional[Dict] = None,
                 failing_dir: Optional[str] = None,
                 darwin_size: int = 120,
                 log: Optional[Callable[[str], None]] = None):
        self.workers = max(1, int(workers))
        self.timeout = timeout
        self.darwin_size = darwin_size
        self.failing_dir = failing_dir
        self.log = log or (lambda line: None)
        self.journal = (Journal(journal_path, journal_meta)
                        if journal_path else None)
        self._consumed = 0           # journal records already matched
        self.executed = 0            # fresh runs this session
        self.resumed = 0             # runs satisfied from the journal
        self.hung = 0                # runs reaped by the timeout
        self._ctx = multiprocessing.get_context()
        self._result_queue = self._ctx.Queue()
        self._pool: List[_Worker] = []
        self._next_worker_id = 0

    # -- pool plumbing -------------------------------------------------

    def _spawn_worker(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_worker_id,
                         self._result_queue, self.darwin_size)
        self._next_worker_id += 1
        return worker

    def _ensure_pool(self) -> None:
        while len(self._pool) < self.workers:
            self._pool.append(self._spawn_worker())

    def close(self) -> None:
        """Shut the pool down and close the journal."""
        for worker in self._pool:
            worker.stop()
        self._pool = []
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "CampaignEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- journal resume ------------------------------------------------

    def _resume_prefix(self, specs: List[RunSpec]) -> List[Dict]:
        """Journal records covering a prefix of ``specs``, validated."""
        if self.journal is None:
            return []
        available = self.journal.records[self._consumed:]
        prefix: List[Dict] = []
        for spec, record in zip(specs, available):
            key = spec.key()
            if (record.get("seed"), record.get("cell")) \
                    != (key["seed"], key["cell"]):
                raise JournalError(
                    f"{self.journal.path}: journaled run "
                    f"(seed={record.get('seed')}, cell={record.get('cell')}) "
                    f"does not match campaign spec {key}; pass --fresh to "
                    f"discard the journal"
                )
            prefix.append(record)
        self._consumed += len(prefix)
        self.resumed += len(prefix)
        return prefix

    # -- failure plumbing ----------------------------------------------

    def _dump_failing(self, record: Dict) -> None:
        if self.failing_dir is None or record.get("ok"):
            return
        os.makedirs(self.failing_dir, exist_ok=True)
        cell = "".join(
            ch if ch.isalnum() else "-" for ch in record["cell"]
        ).strip("-")
        path = os.path.join(self.failing_dir,
                            f"seed{record['seed']:04d}__{cell}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({
                "seed": record["seed"],
                "cell": record["cell"],
                "config": record.get("config"),
                "status": record["status"],
                "violations": record.get("violations", []),
                "plan": record.get("plan"),
            }, fh, indent=2, sort_keys=True)

    def _hung_record(self, spec: RunSpec, started: Optional[Dict]) -> Dict:
        started = started or {}
        budget = (f"the {self.timeout:.0f}s wall-clock budget"
                  if self.timeout is not None else "its wall-clock budget")
        return {
            "seed": spec.seed,
            "cell": spec.config.label(),
            "config": spec.config.to_dict(),
            "ok": False,
            "status": "hung",
            "categories": started.get("categories", ["unknown"]),
            "crashes": 0,
            "recoveries": 0,
            "recovery_time": 0.0,
            "wall": 0.0,
            "events": 0,
            "faults_fired": 0,
            "rel_throughput": 0.0,
            "violations": [
                f"run exceeded {budget}; worker terminated and run "
                f"classified as hung"
            ],
            "plan": started.get("plan"),
        }

    # -- execution -----------------------------------------------------

    def run(self, specs: List[RunSpec]) -> List[Dict]:
        """Execute ``specs`` (resuming from the journal), in order.

        Returns one record per spec, in spec order. Fresh records are
        journaled in that same order as soon as every earlier record is
        known, preserving the journal's prefix property.
        """
        records: List[Optional[Dict]] = [None] * len(specs)
        for index, record in enumerate(self._resume_prefix(specs)):
            records[index] = record
        todo = [index for index, record in enumerate(records)
                if record is None]
        if todo:
            self._execute(specs, records, todo)
        assert all(record is not None for record in records)
        return records  # type: ignore[return-value]

    def _execute(self, specs: List[RunSpec], records: List[Optional[Dict]],
                 todo: List[int]) -> None:
        self._ensure_pool()
        pending = list(todo)          # canonical order
        next_journal = todo[0]        # first un-journaled position
        done = 0

        def _spec_dict(index: int) -> Dict:
            spec = specs[index]
            return {"seed": spec.seed, "config": spec.config.to_dict(),
                    "hang": spec.hang}

        def _flush_journal() -> None:
            nonlocal next_journal
            if self.journal is None:
                return
            while (next_journal < len(records)
                   and records[next_journal] is not None):
                self.journal.append(records[next_journal])
                self._consumed += 1
                next_journal += 1

        def _settle(index: int, record: Dict) -> None:
            nonlocal done
            records[index] = record
            self._dump_failing(record)
            done += 1
            _flush_journal()

        while done < len(todo):
            # hand work to idle workers
            for worker in self._pool:
                if worker.task is None and pending:
                    index = pending.pop(0)
                    worker.assign(index, _spec_dict(index), self.timeout)
            # drain results
            try:
                message = self._result_queue.get(timeout=0.05)
            except Exception:
                message = None
            if message is not None:
                kind, worker_id, index, payload = message
                worker = next((w for w in self._pool if w.id == worker_id),
                              None)
                if kind == "start":
                    if worker is not None and worker.task == index:
                        worker.started = payload
                elif kind == "done":
                    self.executed += 1
                    _settle(index, payload)
                    if worker is not None and worker.task == index:
                        worker.finish()
                continue
            # no result: check timeouts and worker health
            now = time.monotonic()
            for slot, worker in enumerate(self._pool):
                if worker.task is None:
                    continue
                index = worker.task
                timed_out = (worker.deadline is not None
                             and now > worker.deadline)
                died = not worker.process.is_alive()
                if not timed_out and not died:
                    continue
                started = worker.started
                worker.kill()
                self._pool[slot] = self._spawn_worker()
                record = self._hung_record(specs[index], started)
                if died and not timed_out:
                    record["status"] = "worker-died"
                    record["violations"] = [
                        "worker process died before reporting a result"
                    ]
                else:
                    self.hung += 1
                self.log(f"  reaped run seed={specs[index].seed} "
                         f"({record['status']})")
                _settle(index, record)


def run_statistical(engine: CampaignEngine, config: CampaignConfig,
                    epsilon: float, z: float = stats.Z_95,
                    batch: int = 24, max_runs: int = 400,
                    start_seed: int = 0,
                    log: Optional[Callable[[str], None]] = None
                    ) -> List[Dict]:
    """Iterative statistical sampling: batches until Wilson convergence.

    Draws seed batches through ``engine`` until every engaged fault
    category's Wilson-interval half-width is at most ``epsilon`` (at
    confidence ``z``), or ``max_runs`` runs have been spent — the report
    marks any still-unconverged categories. Returns all run records.
    """
    records: List[Dict] = []
    seed = start_seed
    while True:
        per_category = stats.aggregate(records)
        if stats.converged(per_category, epsilon, z):
            break
        if len(records) >= max_runs:
            if log:
                log(f"  budget exhausted at {len(records)} runs; "
                    f"unconverged: "
                    f"{', '.join(stats.unconverged(per_category, epsilon, z))}")
            break
        size = min(batch, max_runs - len(records))
        specs = [RunSpec(seed + offset, config) for offset in range(size)]
        records.extend(engine.run(specs))
        seed += size
        if log:
            remaining = stats.unconverged(
                stats.aggregate(records), epsilon, z)
            log(f"  {len(records)} runs; "
                f"{len(remaining)} categories above epsilon")
    return records
