"""Chaos campaigns: run a real workload under a seeded FaultPlan.

One campaign = one all-vs-all process instance on a simulated cluster,
disturbed by a :class:`~repro.faults.plan.FaultPlan` (cluster-level
disturbances scheduled through :class:`ScenarioScript` plus one-shot
crash-point actions armed in the registry), driven to completion through
however many injected crashes and recoveries it takes.

Crash protocol: an :class:`InjectedCrash` unwinding out of a kernel step
means "the server process died in that window". The driver marks the
server down, waits a seeded delay, and recovers from
``store.simulate_crash()`` — so records appended but never synced are
genuinely lost, exactly like a real crash. Recovery itself runs under the
same injector, so a ``recovery.replay`` action can kill the recovering
server and force a second recovery from the same durable log.

After every successful recovery, and once more at the end, the full
invariant catalog (:mod:`repro.faults.invariants`) runs; the campaign
additionally requires the final outputs to be byte-identical to a
fault-free run. Every randomized choice derives from the campaign seed,
so a failing campaign replays bit-for-bit from its recorded plan.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..bio import DarwinEngine, DatabaseProfile
from ..cluster import SimKernel, SimulatedCluster, uniform
from ..cluster.failures import ScenarioScript
from ..core.engine import BioOperaServer
from ..obs import ObservabilityHub
from ..processes import install_all_vs_all
from ..store.kvstore import MEMORY
from ..store.spaces import OperaStore
from . import invariants
from .plan import FaultPlan
from .points import FaultInjector, InjectedCrash, installed

#: quarantine policy active during campaigns (threshold, window, probe).
QUARANTINE = (3, 900.0, 300.0)

#: dispatch-lease policy active during campaigns (base seconds, cost
#: factor). Leases are what un-wedge a campaign whose completion report
#: was lost to sampled link loss with no detectable outage: the lease
#: expires, the renewal probe finds no live job, and the attempt is
#: safely re-dispatched.
LEASES = (900.0, 4.0)

#: view-checkpoint interval for campaign servers: small enough that the
#: campaign workload (tens of events fault-free, more under retries)
#: crosses it several times, so the ``obs.view.checkpoint`` and
#: ``store.checkpoint.*`` crash windows get exercised.
CHECKPOINT_INTERVAL = 20

#: WAL segment threshold for campaign stores: small enough that the
#: campaign workload rotates a handful of times, so the ``store.rotate``
#: crash window gets exercised.
SEGMENT_RECORDS = 24

#: wedge guards: a campaign that exceeds either has lost an invariant in a
#: way that stalls progress (the violation we report for it).
WALL_HORIZON = 2_000_000.0
MAX_EVENTS = 2_000_000


@dataclass(frozen=True)
class CampaignConfig:
    """One configuration cell: every knob a campaign build can turn.

    The defaults reproduce the classic campaign setup (group commit with
    a small buffer, tight checkpoint/rotation thresholds, leases and
    quarantine on). Sweeps derive cells via :func:`dataclasses.replace`,
    and :meth:`label` gives each cell a stable human-readable key used in
    journals, reports, and ``BENCH_chaos.json``.
    """

    nodes: int = 4
    cpus: int = 2
    granularity: int = 8
    profile: str = "mixed"
    #: shard count for ``profile="shard"`` campaigns (ignored by the
    #: single-server profiles, which is why label() only shows it there).
    shards: int = 4
    checkpoint_interval: int = CHECKPOINT_INTERVAL
    segment_records: int = SEGMENT_RECORDS
    sync_policy: str = "group"
    group_max_pending: int = 8
    leases: Optional[Tuple[float, float]] = LEASES
    quarantine: Optional[Tuple[int, float, float]] = QUARANTINE

    def replace(self, **changes) -> "CampaignConfig":
        """A copy of this config with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def label(self) -> str:
        """Stable short cell key, e.g. ``sync=group/8,ckpt=20,leases=on``."""
        sync = self.sync_policy
        if sync == "group":
            sync = f"group/{self.group_max_pending}"
        lease = ("off" if self.leases is None
                 else f"{self.leases[0]:g}x{self.leases[1]:g}")
        quar = "off" if self.quarantine is None else "on"
        cell = (f"sync={sync},ckpt={self.checkpoint_interval},"
                f"seg={self.segment_records},leases={lease},quar={quar},"
                f"profile={self.profile}")
        if self.profile in ("shard", "rebalance"):
            cell += f",shards={self.shards}"
        return cell

    def to_dict(self) -> Dict:
        """Serialize to a JSON-safe dict (tuples become lists)."""
        data = dataclasses.asdict(self)
        data["leases"] = list(self.leases) if self.leases else None
        data["quarantine"] = (list(self.quarantine)
                              if self.quarantine else None)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "CampaignConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        kwargs = dict(data)
        if kwargs.get("leases") is not None:
            kwargs["leases"] = tuple(kwargs["leases"])
        if kwargs.get("quarantine") is not None:
            kwargs["quarantine"] = tuple(kwargs["quarantine"])
        return cls(**kwargs)


def _resolve_config(config: Optional[CampaignConfig] = None,
                    nodes: Optional[int] = None,
                    cpus: Optional[int] = None,
                    granularity: Optional[int] = None,
                    profile: Optional[str] = None) -> CampaignConfig:
    """Fold legacy keyword overrides into a CampaignConfig."""
    config = config or CampaignConfig()
    overrides = {
        key: value
        for key, value in (("nodes", nodes), ("cpus", cpus),
                           ("granularity", granularity),
                           ("profile", profile))
        if value is not None
    }
    return config.replace(**overrides) if overrides else config


def default_darwin(size: int = 120) -> DarwinEngine:
    """The workload generator campaigns run (small modeled all-vs-all)."""
    profile = DatabaseProfile.synthetic("chaos", size, seed=5)
    return DarwinEngine(profile, mode="modeled", random_match_rate=2e-3,
                        sample_cap=200, seed=2)


@dataclass
class CampaignResult:
    """Outcome of one seeded campaign: status, violations, fault log."""

    seed: int
    status: str = "unknown"
    violations: List[str] = field(default_factory=list)
    plan: Dict = field(default_factory=dict)
    fired: List[Dict] = field(default_factory=list)
    executed: List[str] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    wall: float = 0.0
    events: int = 0
    #: total simulated seconds the server spent down (crash → recovered),
    #: summed across every outage; the sweep's "recovery time" metric.
    recovery_time: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the run completed with no invariant violations."""
        return self.status == "completed" and not self.violations

    def categories(self) -> List[str]:
        """Fault categories that actually engaged during the run."""
        names = set(self.executed)
        names.update(f"point:{entry['point']}" for entry in self.fired)
        return sorted(names)


def _build(darwin: DarwinEngine, kernel_seed: int,
           config: Optional[CampaignConfig] = None,
           nodes: Optional[int] = None, cpus: Optional[int] = None,
           granularity: Optional[int] = None):
    config = _resolve_config(config, nodes=nodes, cpus=cpus,
                             granularity=granularity)
    kernel = SimKernel(seed=kernel_seed)
    cluster = SimulatedCluster(kernel, uniform(config.nodes,
                                               cpus=config.cpus),
                               execution_noise=0.0)
    server = BioOperaServer(
        seed=kernel_seed,
        # Retained history keeps truncated WAL segments around so the
        # invariant catalog can check snapshot+suffix recovery against a
        # full-log replay, byte for byte, after every checkpoint.
        # Group commit by default (small batches) so every campaign
        # exercises the coalesced write+fsync windows; the dispatcher's
        # pre-submit barrier keeps node-visible work durable despite the
        # buffering. Sweeps override any of these knobs per cell.
        store=OperaStore(retain_history=True,
                         segment_records=config.segment_records,
                         sync_policy=config.sync_policy,
                         group_max_pending=config.group_max_pending),
        observability=ObservabilityHub(
            checkpoint_interval=config.checkpoint_interval),
    )
    server.attach_environment(cluster)
    if config.quarantine is not None:
        server.enable_quarantine(*config.quarantine)
    if config.leases is not None:
        server.enable_leases(*config.leases)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {
        "db_name": darwin.profile.name,
        "granularity": config.granularity,
    })
    return kernel, cluster, server, instance_id


def fault_free_baseline(darwin: DarwinEngine, nodes: Optional[int] = None,
                        cpus: Optional[int] = None,
                        granularity: Optional[int] = None,
                        config: Optional[CampaignConfig] = None) -> Dict:
    """Run the workload undisturbed; campaigns must match its outputs."""
    config = _resolve_config(config, nodes=nodes, cpus=cpus,
                             granularity=granularity)
    if config.profile in ("shard", "rebalance"):
        # Imported lazily: shard_campaign imports this module's config
        # and result types.
        from .shard_campaign import shard_baseline

        return shard_baseline(darwin, config)
    kernel, cluster, server, instance_id = _build(
        darwin, kernel_seed=101, config=config,
    )
    status = cluster.run_until_instance_done(instance_id)
    return {
        "status": status,
        "outputs": {instance_id: server.instance(instance_id).outputs},
        "wall": kernel.now,
    }


def _schedule_plan(plan: FaultPlan, cluster: SimulatedCluster,
                   executed: set, result: CampaignResult,
                   ensure_recovered, mark_down=lambda: None) -> None:
    """Translate the plan's scheduled disturbances into kernel events."""
    script = ScenarioScript(cluster)

    def noted(category, fn):
        """Record the category, then run the disturbance."""
        def run():
            """The wrapped disturbance callback."""
            executed.add(category)
            fn()
        return run

    for fault in plan.scheduled:
        category, time, params = fault.category, fault.time, fault.params
        if category == "node-crash":
            node = params["node"]
            script.at(time, f"chaos: crash {node}", noted(
                category,
                lambda n=node: cluster.nodes[n].up and cluster.crash_node(n),
            ))
            script.at(time + params["duration"], f"chaos: restore {node}",
                      lambda n=node: (not cluster.nodes[n].up
                                      and cluster.restore_node(n)))
        elif category == "mass-failure":
            names = params["nodes"]

            def crash_all(names=names):
                """Take the whole node set down at once."""
                for name in names:
                    if cluster.nodes[name].up:
                        cluster.crash_node(name)

            def restore_all(names=names):
                """Bring the mass-failed nodes back."""
                for name in names:
                    if not cluster.nodes[name].up:
                        cluster.restore_node(name)

            script.at(time, "chaos: mass failure", noted(category, crash_all))
            script.at(time + params["duration"], "chaos: mass restore",
                      restore_all)
        elif category == "network-outage":
            script.at(time, "chaos: network outage", noted(
                category,
                lambda: (not cluster.network.outage
                         and cluster.start_network_outage()),
            ))
            script.at(time + params["duration"], "chaos: outage over",
                      lambda: cluster.network.outage
                      and cluster.end_network_outage())
        elif category == "storage-full":
            script.at(time, "chaos: storage full", noted(
                category, lambda: cluster.set_storage_full(True)
            ))
            script.at(time + params["duration"], "chaos: storage freed",
                      lambda: cluster.set_storage_full(False))
        elif category == "io-error-burst":
            rate = params["rate"]
            script.at(time, "chaos: io errors", noted(
                category, lambda r=rate: cluster.set_job_failure_rate(r)
            ))
            script.at(time + params["duration"], "chaos: io errors over",
                      lambda: cluster.set_job_failure_rate(0.0))
        elif category == "load-burst":
            names, fraction = params["nodes"], params["load_fraction"]

            def start_load(names=names, fraction=fraction):
                """Begin the external-load burst."""
                for name in names:
                    cpus = cluster.nodes[name].cpus
                    cluster.set_external_load(name, cpus * fraction)

            def stop_load(names=names):
                """End the external-load burst."""
                for name in names:
                    cluster.set_external_load(name, 0.0)

            script.at(time, "chaos: load burst", noted(category, start_load))
            script.at(time + params["duration"], "chaos: load burst over",
                      stop_load)
        elif category == "partition":
            names = params["nodes"]
            direction = params.get("direction", "both")
            handle: Dict[str, int] = {}

            def cut(names=names, direction=direction, handle=handle):
                """Open the scheduled partition."""
                handle["id"] = cluster.start_partition(
                    names, direction=direction
                )

            def heal(handle=handle):
                """Heal the scheduled partition."""
                pid = handle.pop("id", None)
                if pid is not None:
                    cluster.heal_partition(pid)

            script.at(time, f"chaos: partition {direction}",
                      noted(category, cut))
            script.at(time + params["duration"], "chaos: partition heals",
                      heal)
        elif category == "net-loss":
            rate = params["rate"]
            script.at(time, "chaos: link loss", noted(
                category, lambda r=rate: cluster.set_link_loss("*", "*", r)
            ))
            script.at(time + params["duration"], "chaos: link loss over",
                      lambda: cluster.set_link_loss("*", "*", 0.0))
        elif category == "net-duplicate":
            rate = params["rate"]
            script.at(time, "chaos: duplication", noted(
                category, lambda r=rate: cluster.set_duplication(r)
            ))
            script.at(time + params["duration"], "chaos: duplication over",
                      lambda: cluster.set_duplication(0.0))
        elif category == "net-reorder":
            rate, extra = params["rate"], params.get("extra", 1.0)
            script.at(time, "chaos: reordering", noted(
                category,
                lambda r=rate, e=extra: cluster.set_reordering(r, e),
            ))
            script.at(time + params["duration"], "chaos: reordering over",
                      lambda: cluster.set_reordering(0.0))
        elif category == "server-crash":
            def crash_server():
                """Kill the server (recovery follows after the delay)."""
                if cluster.server.up:
                    cluster.crash_server()
                    result.crashes += 1
                    mark_down()

            script.at(time, "chaos: server crash",
                      noted(category, crash_server))
            script.at(time + params["recovery_after"],
                      "chaos: server recovery", ensure_recovered)
        else:
            result.violations.append(
                f"plan contains unknown category {category!r}"
            )


def run_campaign(seed: int, darwin: DarwinEngine,
                 baseline: Optional[Dict] = None,
                 plan: Optional[FaultPlan] = None,
                 nodes: Optional[int] = None, cpus: Optional[int] = None,
                 granularity: Optional[int] = None,
                 profile: Optional[str] = None,
                 config: Optional[CampaignConfig] = None,
                 trace: Optional[Callable[[str], None]] = None,
                 ) -> CampaignResult:
    """Run one seeded chaos campaign; returns its full accounting.

    ``trace`` (the ``--rerun`` repro mode) receives a line per injected
    crash, per recovery, and per invariant-catalog entry (pass/fail).
    """
    config = _resolve_config(config, nodes=nodes, cpus=cpus,
                             granularity=granularity, profile=profile)
    if config.profile in ("shard", "rebalance"):
        from .shard_campaign import run_shard_campaign

        return run_shard_campaign(seed, darwin, baseline=baseline,
                                  plan=plan, config=config, trace=trace)
    if baseline is None:
        baseline = fault_free_baseline(darwin, config=config)
    kernel, cluster, _server, instance_id = _build(
        darwin, kernel_seed=900 + seed * 13, config=config,
    )
    if plan is None:
        plan = FaultPlan.generate(
            seed, sorted(cluster.nodes),
            horizon=max(120.0, baseline["wall"] * 1.5),
            profile=config.profile,
        )
    result = CampaignResult(seed=seed, plan=plan.to_dict())
    executed: set = set()
    recovery_rng = kernel.rng("chaos-recovery")
    down = {"since": None}

    def mark_down():
        """Start the downtime clock (first crash of this outage)."""
        if down["since"] is None:
            down["since"] = kernel.now

    def run_checks(server, label, **check_kw):
        """Invariant catalog, flat or per-invariant when tracing."""
        if trace is None:
            return invariants.check_server(server, **check_kw)
        problems: List[str] = []
        for name, found in invariants.run_catalog(server, **check_kw):
            marker = "FAIL" if found else "ok  "
            trace(f"    {marker} {label}: {name}")
            for problem in found:
                trace(f"         - {problem}")
            problems.extend(found)
        return problems

    def ensure_recovered():
        """Restart the server from durable state if it is down."""
        current = cluster.server
        if current.up:
            return
        store = current.store
        if store.kv.path == MEMORY:
            # Records appended but never synced die with the process.
            store = store.simulate_crash()
        try:
            recovered = BioOperaServer.recover(
                store, current.registry, environment=cluster,
                policy=current.dispatcher.policy, seed=current.seed,
                observability=ObservabilityHub(
                    checkpoint_interval=config.checkpoint_interval),
                leases=current.leases,
            )
        except InjectedCrash as exc:
            # Recovery itself was killed; whatever half-recovered server
            # attach() left behind is down too. Try again from its store
            # (which holds everything the failed replay persisted).
            result.crashes += 1
            cluster.server.up = False
            if trace is not None:
                trace(f"[t={kernel.now:10.1f}] recovery killed at "
                      f"{exc.point} (crash {result.crashes})")
            kernel.schedule(recovery_rng.uniform(30.0, 300.0),
                            ensure_recovered, label="chaos: re-recover")
            return
        for key, value in current.metrics.items():
            recovered.metrics[key] = recovered.metrics.get(key, 0) + value
        if config.quarantine is not None:
            recovered.enable_quarantine(*config.quarantine)
        result.recoveries += 1
        if down["since"] is not None:
            result.recovery_time += kernel.now - down["since"]
            down["since"] = None
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] recovery {result.recoveries} "
                  f"complete; checking invariants")
        result.violations.extend(
            f"after recovery {result.recoveries}: {problem}"
            for problem in run_checks(
                recovered, f"recovery {result.recoveries}")
        )

    _schedule_plan(plan, cluster, executed, result, ensure_recovered,
                   mark_down=mark_down)
    injector = FaultInjector(plan.actions)
    with installed(injector):
        while True:
            live = cluster.server.instances.get(instance_id)
            if (cluster.server.up and live is not None and live.terminal):
                break
            if kernel.now > WALL_HORIZON or kernel.events_processed > MAX_EVENTS:
                result.violations.append(
                    f"wedged: no completion by t={kernel.now:.0f} after "
                    f"{kernel.events_processed} events"
                )
                break
            try:
                progressed = kernel.step()
            except InjectedCrash as exc:
                result.crashes += 1
                cluster.server.up = False
                mark_down()
                if trace is not None:
                    trace(f"[t={kernel.now:10.1f}] injected crash at "
                          f"{exc.point} (crash {result.crashes})")
                kernel.schedule(recovery_rng.uniform(30.0, 300.0),
                                ensure_recovered, label="chaos: recover")
                continue
            if not progressed:
                if not cluster.server.up:
                    ensure_recovered()
                    continue
                result.violations.append(
                    "wedged: event queue drained before completion"
                )
                break
        final_live = cluster.server.instances.get(instance_id)
        result.status = final_live.status if final_live is not None else "lost"
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] campaign over "
                  f"(status={result.status}); final invariant catalog")
        result.violations.extend(run_checks(
            cluster.server, "final",
            baseline_outputs=baseline["outputs"], final=True,
        ))
    result.fired = list(injector.fired)
    result.executed = sorted(executed)
    result.wall = kernel.now
    result.events = kernel.events_processed
    return result


def run_campaigns(seeds, darwin: Optional[DarwinEngine] = None,
                  baseline: Optional[Dict] = None,
                  profile: Optional[str] = None,
                  config: Optional[CampaignConfig] = None,
                  **build_kw) -> List[CampaignResult]:
    """Run many seeded campaigns against one shared baseline."""
    darwin = darwin or default_darwin()
    config = _resolve_config(config, profile=profile, **build_kw)
    if baseline is None:
        baseline = fault_free_baseline(darwin, config=config)
    return [
        run_campaign(seed, darwin, baseline=baseline, config=config)
        for seed in seeds
    ]
