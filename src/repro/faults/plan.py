"""FaultPlan: a seeded, serializable failure schedule for one campaign.

A plan has two halves:

* ``scheduled`` — cluster-level disturbances at absolute simulated times
  (node crashes, mass failures, network outages, storage-full windows,
  I/O-error bursts, load bursts, server crashes), executed through a
  :class:`~repro.cluster.failures.ScenarioScript`;
* ``actions`` — one-shot :class:`FaultAction` entries armed against the
  crash-point registry (:mod:`repro.faults.points`), firing on the n-th
  hit of a named point.

Plans are value objects: :meth:`FaultPlan.generate` derives one
deterministically from a seed, and ``to_dict``/``from_dict`` round-trip
through JSON so a failing campaign can be dumped and replayed bit-for-bit.
This module is pure (no engine/cluster imports) so the registry call sites
can be imported from anywhere without cycles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: cluster-level disturbance categories a generated plan can schedule.
SCHEDULED_CATEGORIES = (
    "node-crash",
    "mass-failure",
    "network-outage",
    "storage-full",
    "io-error-burst",
    "load-burst",
    "server-crash",
    "partition",
    "net-loss",
    "net-duplicate",
    "net-reorder",
    "shard-crash",
    "shard-partition",
    "shard-node-crash",
    "shard-drain",
    "shard-grow",
)

#: plan profiles: ``mixed`` draws from every category; ``partition``
#: draws only the network-fabric disturbances (partitions, loss,
#: duplication, reordering, outages) plus server crashes — the
#: split-brain/fencing stress mix; ``shard`` targets one shard of a
#: sharded control plane (crash, broker-link partition, node crash)
#: and asserts the blast radius stays inside that shard; ``rebalance``
#: drains one shard mid-campaign (optionally growing the plane first),
#: arming crashes inside the migration protocol's journaled windows, and
#: asserts no instance loses a byte across the move.
PROFILES = ("mixed", "partition", "shard", "rebalance")


@dataclass
class FaultAction:
    """One-shot directive against a fault point (see points.CATALOG)."""

    point: str
    kind: str
    at_hit: int = 1
    delay: float = 0.0           # for kind="delay": extra latency (seconds)
    torn_fraction: float = 0.5   # for kind="torn": record prefix written

    def to_dict(self) -> Dict:
        """Serialize to a JSON-safe dict."""
        return {
            "point": self.point,
            "kind": self.kind,
            "at_hit": self.at_hit,
            "delay": self.delay,
            "torn_fraction": self.torn_fraction,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultAction":
        """Rebuild an action from :meth:`to_dict` output."""
        return cls(
            point=data["point"],
            kind=data["kind"],
            at_hit=int(data.get("at_hit", 1)),
            delay=float(data.get("delay", 0.0)),
            torn_fraction=float(data.get("torn_fraction", 0.5)),
        )


@dataclass
class ScheduledFault:
    """One cluster-level disturbance at an absolute simulated time."""

    category: str
    time: float
    params: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Serialize to a JSON-safe dict."""
        return {
            "category": self.category,
            "time": self.time,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ScheduledFault":
        """Rebuild a fault from :meth:`to_dict` output."""
        return cls(
            category=data["category"],
            time=float(data["time"]),
            params=dict(data.get("params", {})),
        )


@dataclass
class FaultPlan:
    """Everything needed to reproduce one chaos campaign's failures."""

    seed: int
    scheduled: List[ScheduledFault] = field(default_factory=list)
    actions: List[FaultAction] = field(default_factory=list)

    def categories(self) -> List[str]:
        """Sorted distinct categories this plan covers (scheduled
        disturbances by name, point actions as ``point:<point>``)."""
        names = {fault.category for fault in self.scheduled}
        names.update(f"point:{action.point}" for action in self.actions)
        return sorted(names)

    def to_dict(self) -> Dict:
        """Serialize the whole plan to a JSON-safe dict."""
        return {
            "seed": self.seed,
            "scheduled": [fault.to_dict() for fault in self.scheduled],
            "actions": [action.to_dict() for action in self.actions],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        return cls(
            seed=int(data["seed"]),
            scheduled=[
                ScheduledFault.from_dict(f) for f in data.get("scheduled", ())
            ],
            actions=[
                FaultAction.from_dict(a) for a in data.get("actions", ())
            ],
        )

    # ------------------------------------------------------------------

    @classmethod
    def generate(cls, seed: int, node_names: Sequence[str],
                 horizon: float = 600.0,
                 profile: str = "mixed") -> "FaultPlan":
        """Draw a randomized failure schedule from the seed.

        ``horizon`` should roughly match the fault-free wall time of the
        workload so disturbances land while work is actually in flight;
        schedules landing after completion simply never run. ``profile``
        selects the draw mix (see :data:`PROFILES`).
        """
        if profile not in PROFILES:
            raise ValueError(f"unknown plan profile {profile!r}")
        mixed = profile == "mixed"
        rng = random.Random(f"fault-plan/{seed}")
        nodes = list(node_names)
        scheduled: List[ScheduledFault] = []

        def when(lo: float = 0.05, hi: float = 0.75) -> float:
            """A seeded time inside the campaign horizon."""
            return round(rng.uniform(lo * horizon, hi * horizon), 3)

        if profile == "shard":
            # One victim shard takes every disturbance, so the campaign
            # can require the *other* shards' event logs byte-identical
            # to a fault-free twin. "victim" is a fraction; the shard
            # campaign resolves it to ``int(victim * shards)`` so one
            # plan replays against any plane size. A shard crash is
            # always drawn (it is the profile's reason to exist); the
            # broker-link partition and a node crash inside the victim's
            # pool ride along probabilistically.
            victim = round(rng.random(), 6)
            scheduled.append(ScheduledFault("shard-crash", when(), {
                "victim": victim,
                "recovery_after": round(
                    rng.uniform(0.1, 0.6) * horizon, 3),
            }))
            if rng.random() < 0.5:
                scheduled.append(ScheduledFault("shard-partition", when(), {
                    "victim": victim,
                    "symmetric": rng.random() < 0.7,
                    "duration": round(
                        rng.uniform(0.15, 0.8) * horizon, 3),
                }))
            if rng.random() < 0.4:
                scheduled.append(ScheduledFault("shard-node-crash", when(), {
                    "victim": victim,
                    "node": round(rng.random(), 6),
                    "duration": round(
                        rng.uniform(0.2, 1.5) * horizon, 3),
                }))
            return cls(seed=seed, scheduled=scheduled, actions=[])

        if profile == "rebalance":
            # One shard is always drained mid-campaign ("victim" and
            # "target" are fractions the campaign resolves against the
            # plane size, like the shard profile); the plane may grow
            # first so drained instances can land on a fresh shard. The
            # dependability content is the armed crashes inside the
            # migration protocol's journaled windows — prepare/export/
            # commit crash the source shard, import/activate the target.
            victim = round(rng.random(), 6)
            if rng.random() < 0.5:
                scheduled.append(ScheduledFault("shard-grow", when(
                    0.05, 0.5), {"count": 1}))
            scheduled.append(ScheduledFault("shard-drain", when(
                0.15, 0.6), {"victim": victim}))
            if rng.random() < 0.35:
                scheduled.append(ScheduledFault("shard-crash", when(
                    0.6, 0.85), {
                    "victim": round(rng.random(), 6),
                    "recovery_after": round(
                        rng.uniform(0.05, 0.3) * horizon, 3),
                }))
            actions = []
            for point in ("shard.migrate.prepare", "shard.migrate.export",
                          "shard.migrate.import", "shard.migrate.commit",
                          "shard.migrate.activate"):
                if rng.random() < 0.45:
                    actions.append(FaultAction(
                        point, "crash", at_hit=rng.randint(1, 3)))
            return cls(seed=seed, scheduled=scheduled, actions=actions)

        if mixed and rng.random() < 0.7:
            scheduled.append(ScheduledFault("node-crash", when(), {
                "node": rng.choice(nodes),
                "duration": round(rng.uniform(0.2, 2.0) * horizon, 3),
            }))
        if mixed and rng.random() < 0.35:
            count = rng.randint(max(1, len(nodes) // 2), len(nodes))
            scheduled.append(ScheduledFault("mass-failure", when(), {
                "nodes": sorted(rng.sample(nodes, count)),
                "duration": round(rng.uniform(0.3, 1.5) * horizon, 3),
            }))
        if rng.random() < (0.5 if mixed else 0.4):
            scheduled.append(ScheduledFault("network-outage", when(), {
                "duration": round(rng.uniform(0.1, 1.2) * horizon, 3),
            }))
        if mixed and rng.random() < 0.35:
            scheduled.append(ScheduledFault("storage-full", when(), {
                "duration": round(rng.uniform(0.2, 1.0) * horizon, 3),
            }))
        if mixed and rng.random() < 0.4:
            scheduled.append(ScheduledFault("io-error-burst", when(), {
                "rate": round(rng.uniform(0.05, 0.35), 3),
                "duration": round(rng.uniform(0.3, 1.5) * horizon, 3),
            }))
        if mixed and rng.random() < 0.5:
            count = rng.randint(1, len(nodes))
            scheduled.append(ScheduledFault("load-burst", when(), {
                "nodes": sorted(rng.sample(nodes, count)),
                "load_fraction": round(rng.uniform(0.3, 0.9), 3),
                "duration": round(rng.uniform(0.3, 1.5) * horizon, 3),
            }))
        if rng.random() < (0.55 if mixed else 0.5):
            scheduled.append(ScheduledFault("server-crash", when(), {
                "recovery_after": round(rng.uniform(0.1, 0.6) * horizon, 3),
            }))
        # Network-fabric disturbances: per-link partitions with a drawn
        # direction (symmetric, half-open toward the server, half-open
        # toward the nodes), sampled loss, duplication, reordering.
        if rng.random() < (0.5 if mixed else 0.9):
            count = rng.randint(1, len(nodes))
            scheduled.append(ScheduledFault("partition", when(), {
                "nodes": sorted(rng.sample(nodes, count)),
                "direction": rng.choice(("both", "to-server", "to-nodes")),
                "duration": round(rng.uniform(0.15, 1.0) * horizon, 3),
            }))
        if rng.random() < (0.45 if mixed else 0.7):
            scheduled.append(ScheduledFault("net-loss", when(), {
                "rate": round(rng.uniform(0.02, 0.25), 3),
                "duration": round(rng.uniform(0.3, 1.2) * horizon, 3),
            }))
        if rng.random() < (0.45 if mixed else 0.7):
            scheduled.append(ScheduledFault("net-duplicate", when(), {
                "rate": round(rng.uniform(0.05, 0.5), 3),
                "duration": round(rng.uniform(0.3, 1.2) * horizon, 3),
            }))
        if rng.random() < (0.45 if mixed else 0.7):
            scheduled.append(ScheduledFault("net-reorder", when(), {
                "rate": round(rng.uniform(0.05, 0.5), 3),
                "extra": round(rng.uniform(0.5, 30.0), 3),
                "duration": round(rng.uniform(0.3, 1.2) * horizon, 3),
            }))

        actions: List[FaultAction] = []

        def maybe(prob, point, kind, hits, **extra):
            """Arm a crash-point action with the given probability."""
            if rng.random() < prob:
                actions.append(FaultAction(
                    point, kind, at_hit=rng.randint(*hits), **extra
                ))

        if mixed:
            maybe(0.3, "wal.append", "crash", (1, 40))
            maybe(0.25, "wal.append", "torn", (1, 40),
                  torn_fraction=round(rng.uniform(0.1, 0.9), 3))
            maybe(0.25, "kvstore.commit.pre-sync", "crash", (1, 50))
            maybe(0.25, "kvstore.commit.post-sync", "crash", (1, 50))
            # Group-commit windows: either side of the batched write+fsync
            # (campaign stores run with sync_policy="group", so flushes
            # happen every few commits).
            maybe(0.25, "store.group_commit.pre_sync", "crash", (1, 25))
            maybe(0.25, "store.group_commit.post_sync", "crash", (1, 25))
            maybe(0.25, "server.emit.pre-persist", "crash", (1, 40))
            maybe(0.25, "server.emit.post-persist", "crash", (1, 40))
            maybe(0.3, "server.dispatch.record", "crash", (1, 12))
            maybe(0.3, "dispatcher.submit", "crash", (1, 12))
            maybe(0.25, "navigator.navigate", "crash", (1, 30))
            maybe(0.3, "recovery.replay", "crash", (1, 2))
            maybe(0.25, "obs.view.checkpoint", "crash", (1, 6))
            maybe(0.25, "prov.checkpoint", "crash", (1, 6))
            # Log-lifecycle windows: rotation fires on segment-threshold
            # crossings, checkpoint points a handful of times per run (the
            # observability hub checkpoints every CHECKPOINT_INTERVAL
            # events), so hit numbers stay small.
            maybe(0.3, "store.rotate", "crash", (1, 8))
            maybe(0.25, "store.checkpoint.begin", "crash", (1, 4))
            maybe(0.25, "store.checkpoint.post-snapshot", "crash", (1, 4))
            maybe(0.25, "store.checkpoint.truncate", "crash", (1, 4))
            maybe(0.25, "store.checkpoint.post-truncate", "crash", (1, 4))
        maybe(0.4, "pec.report", "duplicate", (1, 15))
        maybe(0.4, "pec.report", "delay", (1, 15),
              delay=round(rng.uniform(10.0, 400.0), 3))
        maybe(0.3, "pec.report", "drop", (1, 15))
        maybe(0.4, "network.deliver", "drop", (1, 20))
        maybe(0.35, "network.deliver", "delay", (1, 20),
              delay=round(rng.uniform(5.0, 240.0), 3))
        maybe(0.35, "network.deliver", "duplicate", (1, 20))
        if mixed:
            for _ in range(rng.randint(0, 2)):
                actions.append(FaultAction(
                    "pec.program", "error", at_hit=rng.randint(1, 10)
                ))
        return cls(seed=seed, scheduled=scheduled, actions=actions)
