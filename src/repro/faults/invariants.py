"""Recovery invariants: what must hold after every crash + recovery.

The paper's dependability story is a set of implicit invariants — "no
results were lost", "processes resumed where the log said", "every TEU is
accounted for exactly once". This module makes them explicit and checkable
against a live :class:`~repro.core.engine.server.BioOperaServer`:

* **log-replayable** — every instance's event log replays without error
  and without time anomalies (:func:`recovery.verify_log`);
* **replay-equivalence** — a fresh replay of the durable log produces the
  same instance state (status, outputs, per-task status/attempts) as the
  live in-memory instance;
* **exactly-once accounting** — per task occurrence, each attempt is
  dispatched at most once and completes on a node at most once;
* **monotonic, contiguous log** — the persisted ``next_seq`` matches the
  number of events (no holes, no phantoms);
* **no leaked slots** — the awareness model's per-node assignments and the
  dispatcher's in-flight table are the same set, seen from both sides;
* **single-epoch acceptance** — event epochs are monotone per log (checked
  in ``verify_log``): once a failover's epoch appears, no write from a
  fenced older epoch is ever accepted, and every node-reported completion
  carries the epoch of its own dispatch (no cross-epoch or
  healed-partition double-apply);
* **no lease double-grant** — at most one live lease per task occurrence,
  every live lease backed by an in-flight job;
* **WAL integrity** — the KV store's checkpoint snapshot + WAL suffix
  replays to exactly the live state
  (:meth:`~repro.store.kvstore.KVStore.audit`);
* **bounded-recovery equivalence** — when the store retains truncated
  segments (chaos campaigns run with ``retain_history=True``), the
  snapshot + suffix reconstruction must be byte-identical, under the
  canonical codec, to replaying the entire log from record zero — proof
  that checkpoint-triggered truncation never changes recovery semantics
  (also inside :meth:`~repro.store.kvstore.KVStore.audit`).

``final=True`` adds end-of-campaign obligations: all instances completed,
queue and in-flight tables empty, and (when ``baseline_outputs`` is given)
outputs byte-identical to the fault-free run under the canonical codec.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.engine import events as ev
from ..core.engine.recovery import replay_instance, verify_log
from ..store import codec


def run_catalog(server, baseline_outputs: Optional[Dict] = None,
                final: bool = False) -> List:
    """Run the catalog invariant by invariant: ``(name, violations)`` pairs.

    The per-invariant grouping is what the chaos CLI's ``--rerun`` repro
    mode prints as a pass/fail trace; :func:`check_server` flattens the
    same pairs into the single violation list campaigns record.
    """
    staged = {
        name.split("/", 1)[1]
        for name, record in
        server.store.configuration.settings("migrate_in/").items()
        if isinstance(record, dict) and record.get("phase") == "staged"
    }
    # Staged migration imports are durable but deliberately not adopted
    # (recovery skips them the same way); they are judged by
    # migration_invariants, not the per-server catalog.
    instance_ids = [
        iid for iid in server.store.instances.instance_ids()
        if iid not in staged
    ]

    def each(check):
        """Apply a per-instance check across every persisted instance."""
        return [p for iid in instance_ids for p in check(server, iid)]

    named = [
        ("log-replayable/epoch-monotone", [
            f"{iid}: {anomaly}"
            for iid in instance_ids
            for anomaly in verify_log(server.store, iid, server._resolver)
        ]),
        ("replay-equivalence", each(_check_replay_equivalence)),
        ("exactly-once", each(_check_exactly_once)),
        ("contiguous-log", each(_check_log_contiguity)),
        ("view-equivalence", each(_check_view_equivalence)),
        ("prov-equivalence", _check_prov_equivalence(server)),
        ("slot-consistency", _check_slot_consistency(server)),
        ("leases", _check_leases(server)),
        ("wal-integrity", [f"store: {p}" for p in server.store.kv.audit()]),
    ]
    if final:
        named.append(("final-outputs", _check_final(server,
                                                    baseline_outputs)))
    return named


def check_server(server, baseline_outputs: Optional[Dict] = None,
                 final: bool = False) -> List[str]:
    """Run the full invariant catalog; returns violations (ideally [])."""
    return [
        problem
        for _name, problems in run_catalog(
            server, baseline_outputs=baseline_outputs, final=final)
        for problem in problems
    ]


def _check_replay_equivalence(server, instance_id: str) -> List[str]:
    live = server.instances.get(instance_id)
    if live is None:
        return [f"{instance_id}: persisted instance missing from memory"]
    try:
        twin = replay_instance(server.store, instance_id, server._resolver)
    except Exception as exc:  # noqa: BLE001 - report, not crash
        return [
            f"{instance_id}: replay failed: {type(exc).__name__}: {exc}"
        ]
    problems = []
    if twin.status != live.status:
        problems.append(
            f"{instance_id}: replay status {twin.status!r} != live "
            f"{live.status!r}"
        )
    if twin.event_count != live.event_count:
        problems.append(
            f"{instance_id}: replay saw {twin.event_count} events, live "
            f"applied {live.event_count}"
        )
    if codec.encode(twin.outputs) != codec.encode(live.outputs):
        problems.append(f"{instance_id}: replay outputs differ from live")
    live_states = sorted(
        (s.path, s.status, s.attempts) for s in live.iter_states()
    )
    twin_states = sorted(
        (s.path, s.status, s.attempts) for s in twin.iter_states()
    )
    if live_states != twin_states:
        diff = [
            pair for pair in zip(live_states, twin_states) if pair[0] != pair[1]
        ][:3]
        problems.append(
            f"{instance_id}: replayed task states diverge from live: {diff}"
        )
    return problems


def _check_exactly_once(server, instance_id: str) -> List[str]:
    """Per task occurrence: an attempt is dispatched at most once, and at
    most one node-reported completion lands per attempt."""
    problems = []
    status: Dict[str, str] = {}
    attempt: Dict[str, int] = {}
    dispatched_attempts = set()
    completed_attempts = set()
    dispatch_epoch: Dict[tuple, Optional[int]] = {}
    for event in server.store.instances.events(instance_id):
        kind = event["type"]
        path = event.get("path", "")
        if kind == ev.TASK_DISPATCHED:
            key = (path, event["attempt"])
            # Compensation tasks are re-queued verbatim after a crash, so
            # their attempt numbers legitimately repeat.
            if key in dispatched_attempts and not path.endswith("#comp"):
                problems.append(
                    f"{instance_id}: {path} attempt {event['attempt']} "
                    f"dispatched twice"
                )
            dispatched_attempts.add(key)
            dispatch_epoch[key] = event.get("epoch")
            status[path] = "dispatched"
            attempt[path] = event["attempt"]
        elif kind == ev.TASK_COMPLETED:
            if event.get("node"):
                # A node-reported completion must land on a live dispatch
                # ("failed" is also legal: an IGNORE handler completes a
                # failed task with its last node attached).
                if status.get(path) not in ("dispatched", "failed"):
                    problems.append(
                        f"{instance_id}: {path} completed from state "
                        f"{status.get(path)!r} (no live dispatch)"
                    )
                key = (path, attempt.get(path))
                if key in completed_attempts:
                    problems.append(
                        f"{instance_id}: {path} attempt {attempt.get(path)} "
                        f"completed twice"
                    )
                completed_attempts.add(key)
                # A completion must be accepted in the epoch that issued
                # its dispatch — a mismatch means a fenced server's report
                # crossed a healed partition and was applied anyway.
                issued = dispatch_epoch.get(key)
                accepted = event.get("epoch")
                if issued and accepted and issued != accepted:
                    problems.append(
                        f"{instance_id}: {path} attempt {attempt.get(path)} "
                        f"completed in epoch {accepted} but dispatched in "
                        f"epoch {issued}"
                    )
            status[path] = "completed"
        elif kind == ev.TASK_FAILED:
            status[path] = "failed"
        elif kind == ev.TASK_RESET:
            status.pop(path, None)
            attempt.pop(path, None)
    return problems


def _check_log_contiguity(server, instance_id: str) -> List[str]:
    recorded = server.store.instances.event_count(instance_id)
    actual = sum(1 for _ in server.store.instances.events(instance_id))
    if recorded != actual:
        return [
            f"{instance_id}: next_seq says {recorded} events, log holds "
            f"{actual} (hole or phantom)"
        ]
    return []


def _check_view_equivalence(server, instance_id: str) -> List[str]:
    """Every materialized view must answer byte-identically to a full
    rescan of the durable log (the observability tentpole's contract —
    checked here after every crash + recovery)."""
    hub = getattr(server.store, "observability", None)
    if hub is None:
        return []
    problems = []
    if not hub.views.in_sync(server.store, instance_id):
        problems.append(
            f"{instance_id}: view catalog cursor "
            f"{hub.views.cursors.get(instance_id, 0)} != event count "
            f"{server.store.instances.event_count(instance_id)}"
        )
        return problems
    from ..core.monitor import queries

    pairs = [
        ("node_usage",
         [u.__dict__ for u in queries.node_usage(server.store, instance_id)],
         [u.__dict__ for u in queries.node_usage_rescan(
             server.store, instance_id)]),
        ("event_histogram",
         queries.event_histogram(server.store, instance_id),
         queries.event_histogram_rescan(server.store, instance_id)),
        ("completions_over_time",
         queries.completions_over_time(server.store, instance_id, 50.0),
         queries.completions_over_time_rescan(
             server.store, instance_id, 50.0)),
        ("slowest_activities",
         queries.slowest_activities(server.store, instance_id, 10),
         queries.slowest_activities_rescan(server.store, instance_id, 10)),
        ("retry_hotspots",
         queries.retry_hotspots(server.store, instance_id, 2),
         queries.retry_hotspots_rescan(server.store, instance_id, 2)),
        ("wall_time_breakdown",
         queries.wall_time_breakdown(server.store, instance_id),
         queries.wall_time_breakdown_rescan(server.store, instance_id)),
    ]
    for name, viewed, rescanned in pairs:
        if codec.encode(viewed) != codec.encode(rescanned):
            problems.append(
                f"{instance_id}: view {name} diverges from full rescan"
            )
    return problems


def _check_prov_equivalence(server) -> List[str]:
    """The incrementally maintained provenance graph must equal — byte for
    byte under the canonical codec — a graph rebuilt from scratch off the
    durable lineage log (the provenance tentpole's contract, checked
    after every crash + recovery)."""
    hub = getattr(server.store, "observability", None)
    if hub is None or getattr(hub, "provenance", None) is None:
        return []
    view = hub.provenance
    if not view.in_sync(server.store):
        return [
            f"provenance cursor {view.cursor} != lineage count "
            f"{server.store.data.lineage_count()}"
        ]
    from ..prov.graph import ProvenanceGraph

    rebuilt = ProvenanceGraph.from_records(
        server.store.data.lineage_records())
    if codec.encode(view.graph.dump()) != codec.encode(rebuilt.dump()):
        return ["provenance graph diverges from full lineage rebuild"]
    return []


def _check_slot_consistency(server) -> List[str]:
    """The awareness model's node assignments and the dispatcher's
    in-flight table must describe the same set of jobs."""
    problems = []
    assigned: Dict[str, str] = {}
    for view in server.awareness.nodes():
        for job_id in view.assigned:
            if job_id in assigned:
                problems.append(
                    f"job {job_id} assigned to both {assigned[job_id]} "
                    f"and {view.name}"
                )
            assigned[job_id] = view.name
    for job_id, (_job, node) in server.dispatcher.in_flight.items():
        if assigned.pop(job_id, None) != node:
            problems.append(
                f"in-flight job {job_id} not assigned on node {node}"
            )
    for job_id, node in sorted(assigned.items()):
        problems.append(
            f"leaked slot: job {job_id} assigned on {node} but not in flight"
        )
    return problems


def _check_leases(server) -> List[str]:
    """At most one live lease per task occurrence, each backed by an
    in-flight job — and no double-grant was ever counted."""
    problems = []
    doubles = server.metrics.get("lease_double_grants", 0)
    if doubles:
        problems.append(f"lease double-granted {doubles} time(s)")
    holders: Dict[str, str] = {}
    for job_id, lease in server._leases.items():
        if job_id not in server.dispatcher.in_flight:
            problems.append(f"lease held for {job_id} with no in-flight job")
        other = holders.get(lease["key"])
        if other is not None:
            problems.append(
                f"two live leases for task {lease['key']}: "
                f"{other} and {job_id}"
            )
        holders[lease["key"]] = job_id
    return problems


def _check_final(server, baseline_outputs: Optional[Dict]) -> List[str]:
    problems = []
    for instance_id in sorted(server.instances):
        instance = server.instances[instance_id]
        if instance.status != "completed":
            problems.append(
                f"{instance_id}: final status {instance.status!r}, "
                f"expected 'completed'"
            )
        elif baseline_outputs is not None:
            expected = baseline_outputs.get(instance_id)
            if expected is not None and (
                    codec.encode(instance.outputs) != codec.encode(expected)):
                problems.append(
                    f"{instance_id}: final outputs differ from the "
                    f"fault-free baseline"
                )
    queued = server.dispatcher.queue_length()
    if queued:
        problems.append(f"{queued} jobs still queued after completion")
    if server.dispatcher.in_flight:
        problems.append(
            f"{len(server.dispatcher.in_flight)} jobs still in flight "
            f"after completion"
        )
    return problems
