"""Crash-point registry: named fault points woven into hot transitions.

The engine, store, and cluster layers call :func:`fire` at the narrow
windows where the paper's dependability claim is actually decided — between
a WAL append and its sync, between recording a dispatch and handing the job
to a node, in the middle of recovery replay. With no injector installed the
call is a cheap no-op; the chaos harness installs a :class:`FaultInjector`
carrying one-shot :class:`~repro.faults.plan.FaultAction` entries that fire
on a specific hit of a specific point.

What a firing action does depends on its kind:

* ``crash`` — raises :class:`InjectedCrash` (process dies in this window);
* ``torn`` — raises :class:`InjectedCrash` with a ``torn_fraction``; the
  WAL writes that fraction of the record before dying (torn write);
* ``error`` — raises :class:`~repro.errors.ActivityFailure` with reason
  ``injected-fault`` (a program-level failure, consumed by the PEC);
* ``drop`` / ``duplicate`` / ``delay`` — returned to the caller as a
  message directive (the PEC report path interprets them).

This module must stay import-light: it is imported by ``store.wal`` and
``core.engine.server``, so it may only depend on ``repro.errors``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from ..errors import ActivityFailure, ReproError

#: kinds that terminate the "process" in the current window.
CRASH_KINDS = ("crash", "torn")
#: kinds interpreted by message-sending call sites.
MESSAGE_KINDS = ("drop", "duplicate", "delay")

#: every fault point the code base exposes, with the action kinds that make
#: sense there. Keep in sync with docs/chaos.md's fault-point table.
CATALOG: Dict[str, tuple] = {
    # store layer
    "wal.append": ("crash", "torn"),
    "kvstore.commit.pre-sync": ("crash",),
    "kvstore.commit.post-sync": ("crash",),
    "store.group_commit.pre_sync": ("crash",),
    "store.group_commit.post_sync": ("crash",),
    "store.rotate": ("crash",),
    "store.checkpoint.begin": ("crash",),
    "store.checkpoint.post-snapshot": ("crash",),
    "store.checkpoint.truncate": ("crash",),
    "store.checkpoint.post-truncate": ("crash",),
    # engine layer
    "server.emit.pre-persist": ("crash",),
    "server.emit.post-persist": ("crash",),
    "server.dispatch.record": ("crash",),
    "dispatcher.submit": ("crash",),
    "navigator.navigate": ("crash",),
    "recovery.replay": ("crash",),
    # observability layer
    "obs.view.checkpoint": ("crash",),
    "prov.checkpoint": ("crash",),
    # shard migration windows (rebalance profile). prepare/export/commit
    # crash the SOURCE shard mid-move; import/activate crash the TARGET.
    "shard.migrate.prepare": ("crash",),
    "shard.migrate.export": ("crash",),
    "shard.migrate.import": ("crash",),
    "shard.migrate.commit": ("crash",),
    "shard.migrate.activate": ("crash",),
    # cluster layer
    "network.deliver": MESSAGE_KINDS,
    "pec.report": MESSAGE_KINDS,
    "pec.program": ("error",),
}


class InjectedCrash(ReproError):
    """The injected equivalent of the server process dying right here.

    Not an engine error: it must unwind *through* the engine untouched so
    the chaos driver (the only intended handler) sees exactly where the
    "process" died. ``torn_fraction`` is set for torn-write crashes; the
    WAL uses it to leave a partial record behind.
    """

    def __init__(self, point: str, torn_fraction: Optional[float] = None):
        super().__init__(f"injected crash at fault point {point!r}")
        self.point = point
        self.torn_fraction = torn_fraction


class FaultInjector:
    """Arms a set of one-shot fault actions against the point catalog.

    Every call to :func:`fire` counts one *hit* of its point; an action
    armed with ``at_hit=n`` fires on the n-th hit and is then disarmed.
    ``hits`` and ``fired`` survive for post-mortem accounting.
    """

    def __init__(self, actions=()):
        self._armed: Dict[str, List] = {}
        self.hits: Dict[str, int] = {}
        self.fired: List[Dict] = []
        for action in actions:
            self.arm(action)

    def arm(self, action) -> None:
        """Queue one more one-shot action for its fault point."""
        if action.point not in CATALOG:
            raise ReproError(f"unknown fault point {action.point!r}")
        if action.kind not in CATALOG[action.point]:
            raise ReproError(
                f"fault point {action.point!r} does not support kind "
                f"{action.kind!r}"
            )
        self._armed.setdefault(action.point, []).append(action)

    @property
    def pending(self) -> int:
        """Number of armed actions that have not fired yet."""
        return sum(len(actions) for actions in self._armed.values())

    def fire(self, point: str, **context):
        """Hit ``point``; trigger (and consume) an armed action if due."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        armed = self._armed.get(point)
        if not armed:
            return None
        for index, action in enumerate(armed):
            if action.at_hit == count:
                armed.pop(index)
                self.fired.append({
                    "point": point,
                    "kind": action.kind,
                    "hit": count,
                    "context": dict(context),
                })
                return self._enact(action)
        return None

    def _enact(self, action):
        if action.kind == "crash":
            raise InjectedCrash(action.point)
        if action.kind == "torn":
            raise InjectedCrash(action.point,
                                torn_fraction=action.torn_fraction)
        if action.kind == "error":
            raise ActivityFailure(
                "injected-fault", detail=f"fault point {action.point}"
            )
        return action  # message directive: the call site interprets it


#: the process-wide injector; ``None`` keeps every fire() a no-op.
_ACTIVE: Optional[FaultInjector] = None


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-wide active injector."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Deactivate any installed injector (fire() becomes a no-op)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None``."""
    return _ACTIVE


def fire(point: str, **context):
    """Hit a fault point. No-op (returns None) unless an injector is
    installed and an armed action matches this hit."""
    if _ACTIVE is None:
        return None
    return _ACTIVE.fire(point, **context)


@contextmanager
def installed(injector: FaultInjector):
    """Install an injector for the duration of a with-block."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()
