"""Chaos harness: crash-point fault injection + recovery invariants.

Import structure matters here: :mod:`repro.faults.points` is imported by
the store and engine modules hosting the fault points, so this package
``__init__`` re-exports only the import-light halves (``points``,
``plan``). The chaos driver (:mod:`repro.faults.chaos`) and the invariant
checker (:mod:`repro.faults.invariants`) import the cluster and engine
layers and must be imported explicitly.
"""

from .plan import (
    PROFILES,
    SCHEDULED_CATEGORIES,
    FaultAction,
    FaultPlan,
    ScheduledFault,
)
from .points import (
    CATALOG,
    FaultInjector,
    InjectedCrash,
    active,
    fire,
    install,
    installed,
    uninstall,
)

__all__ = [
    "CATALOG",
    "PROFILES",
    "SCHEDULED_CATEGORIES",
    "FaultAction",
    "FaultInjector",
    "FaultPlan",
    "InjectedCrash",
    "ScheduledFault",
    "active",
    "fire",
    "install",
    "installed",
    "uninstall",
]
