"""Statistical sampling for chaos campaigns: Wilson intervals, stop rule.

The fixed "48/50 survived" accounting of the original smoke loop says
nothing about how much evidence those 50 seeds actually carry. Following
the iterative-statistical-injection idea from DAVOS-style dependability
benchmarking, the campaign engine instead keeps drawing seed batches
until the *Wilson score interval* around each fault category's survival
rate is tight enough: sampling stops once every engaged category's
half-width drops below a target ``epsilon`` (or a run cap is hit, which
the report then flags as unconverged).

The Wilson interval is used instead of the normal (Wald) approximation
because campaign survival rates sit near 1.0, exactly where Wald
collapses to a zero-width interval after a clean batch; Wilson stays
honest there ("35/35 survived" still spans ~0.90-1.0 at 95%).

This module is pure (stdlib ``math`` only) so reports and tests can use
it without importing the engine stack.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: two-sided z for the default 95% confidence level.
Z_95 = 1.959963984540054


def wilson(successes: int, trials: int, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)`` bounds in [0, 1]. With zero trials the
    interval is the vacuous ``(0.0, 1.0)``.
    """
    if trials < 0 or successes < 0 or successes > trials:
        raise ValueError(f"bad binomial counts {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    n = float(trials)
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    spread = (z / denom) * math.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    # at p=0 (p=1) the exact lower (upper) bound is 0 (1); pin them so
    # float noise never reports e.g. low=3e-18 for a zero-survival count
    low = 0.0 if successes == 0 else max(0.0, center - spread)
    high = 1.0 if successes == trials else min(1.0, center + spread)
    return (low, high)


def half_width(successes: int, trials: int, z: float = Z_95) -> float:
    """Half the Wilson interval's width (the convergence criterion)."""
    low, high = wilson(successes, trials, z)
    return (high - low) / 2.0


@dataclass
class CategoryStats:
    """Survival evidence for one fault category."""

    category: str
    engaged: int = 0
    survived: int = 0

    def observe(self, ok: bool) -> None:
        """Fold in one campaign that engaged this category."""
        self.engaged += 1
        if ok:
            self.survived += 1

    @property
    def rate(self) -> float:
        """Point estimate of the survival rate (1.0 with no evidence)."""
        return self.survived / self.engaged if self.engaged else 1.0

    def interval(self, z: float = Z_95) -> Tuple[float, float]:
        """Wilson confidence bounds on the survival rate."""
        return wilson(self.survived, self.engaged, z)

    def half_width(self, z: float = Z_95) -> float:
        """Current Wilson half-width (1/2 with no evidence)."""
        return half_width(self.survived, self.engaged, z)

    def converged(self, epsilon: float, z: float = Z_95) -> bool:
        """True once the half-width is within the target epsilon."""
        return self.engaged > 0 and self.half_width(z) <= epsilon

    def to_dict(self, z: float = Z_95) -> Dict:
        """JSON-safe summary (`rate`, `ci_low`, `ci_high`, samples)."""
        low, high = self.interval(z)
        return {
            "category": self.category,
            "engaged": self.engaged,
            "survived": self.survived,
            "rate": round(self.rate, 6),
            "ci_low": round(low, 6),
            "ci_high": round(high, 6),
            "half_width": round(self.half_width(z), 6),
        }


def aggregate(records: Iterable) -> Dict[str, CategoryStats]:
    """Per-category survival stats over run records.

    Accepts anything with ``categories`` (iterable of names) and ``ok``
    (bool) — both :class:`~repro.faults.campaign.RunRecord` objects and
    plain journal dicts.
    """
    stats: Dict[str, CategoryStats] = {}
    for record in records:
        if isinstance(record, dict):
            categories, ok = record.get("categories", ()), record.get("ok")
        else:
            categories, ok = record.categories, record.ok
        for category in categories:
            entry = stats.get(category)
            if entry is None:
                entry = stats[category] = CategoryStats(category)
            entry.observe(bool(ok))
    return stats


def unconverged(stats: Dict[str, CategoryStats], epsilon: float,
                z: float = Z_95) -> List[str]:
    """Categories whose Wilson half-width still exceeds epsilon."""
    return sorted(
        name for name, entry in stats.items()
        if not entry.converged(epsilon, z)
    )


def converged(stats: Dict[str, CategoryStats], epsilon: float,
              z: float = Z_95) -> bool:
    """True when every observed category meets the epsilon target.

    An empty stats dict is *not* converged — no batch has engaged any
    fault yet, so there is no evidence to stop on.
    """
    return bool(stats) and not unconverged(stats, epsilon, z)
