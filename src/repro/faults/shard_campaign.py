"""Chaos campaigns against the sharded control plane (``profile="shard"``).

A shard campaign answers one question: **is the blast radius of a shard
failure really one shard?** The workload spreads multi-tenant
all-vs-all instances across every shard through the broker; the fault
plan then crashes one victim shard (optionally also cutting its broker
link and crashing one of its nodes) mid-run. Acceptance is stricter
than the single-server campaigns:

* the run must still complete every instance with outputs byte-identical
  to the fault-free baseline (the classic invariant), and
* every **non-victim** shard's durable event log must be byte-identical
  — same events, same order, same timestamps — to a fault-free *twin*
  run at the same kernel seed. A healthy shard is not allowed to even
  *notice* the victim's failure.

The twin comparison is what the per-shard RNG namespacing and the
jitter-free control fabric buy: without them, a victim's redeliveries
would perturb the shared random streams and shift healthy shards'
timings, turning "no interference" into an unfalsifiable claim.

Victim selection in a plan is a fraction (``int(victim * shards)``), so
one serialized plan replays against any plane size.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..bio import DarwinEngine
from ..cluster import SimKernel
from ..core.engine.library import ProgramRegistry
from ..processes.activities import register_all_vs_all_programs
from ..processes.all_vs_all import (build_align_chunk_template,
                                    build_all_vs_all_template)
from ..shard import ShardedControlPlane
from . import invariants
from .chaos import (MAX_EVENTS, WALL_HORIZON, CampaignConfig,
                    CampaignResult)
from .plan import FaultPlan

#: tenants driving the campaign workload, and instances per tenant.
TENANTS = 4
INSTANCES_PER_TENANT = 2


def _build_plane(darwin: DarwinEngine, kernel_seed: int,
                 config: CampaignConfig):
    """Assemble a fresh plane + kernel for one campaign run."""
    registry = ProgramRegistry()
    register_all_vs_all_programs(registry, darwin)
    kernel = SimKernel(seed=kernel_seed)
    plane = ShardedControlPlane(
        kernel,
        shards=config.shards,
        nodes_per_shard=config.nodes,
        cpus=config.cpus,
        seed=kernel_seed,
        registry=registry,
        templates=[build_align_chunk_template(),
                   build_all_vs_all_template()],
        store_options=dict(
            retain_history=True,
            segment_records=config.segment_records,
            sync_policy=config.sync_policy,
            group_max_pending=config.group_max_pending,
        ),
        checkpoint_interval=config.checkpoint_interval,
        leases=config.leases,
        quarantine=config.quarantine,
    )
    return kernel, plane


def _submit_workload(plane: ShardedControlPlane,
                     darwin: DarwinEngine,
                     config: CampaignConfig) -> List:
    """Queue the multi-tenant launches; returns the launch requests."""
    return [
        plane.launch(f"tenant{tenant}", "all_vs_all", {
            "db_name": darwin.profile.name,
            "granularity": config.granularity,
        })
        for tenant in range(TENANTS)
        for _ in range(INSTANCES_PER_TENANT)
    ]


def _workload_done(plane: ShardedControlPlane, requests: List) -> bool:
    """Every launch acked and every minted instance terminal?"""
    if any(request.status != "done" for request in requests):
        return False
    for request in requests:
        shard = plane.shard_of(request.result)
        if not shard.server.up:
            return False
        instance = shard.server.instances.get(request.result)
        if instance is None or not instance.terminal:
            return False
    return True


def _shard_logs(plane: ShardedControlPlane,
                index: int) -> Dict[str, str]:
    """One shard's durable event logs, canonically serialized."""
    server = plane.shards[index].server
    return {
        instance_id: json.dumps(
            list(server.store.instances.events(instance_id)),
            sort_keys=True,
        )
        for instance_id in server.store.instances.instance_ids()
    }


def shard_baseline(darwin: DarwinEngine, config: CampaignConfig) -> Dict:
    """Run the sharded workload undisturbed (the output oracle)."""
    kernel, plane = _build_plane(darwin, kernel_seed=101, config=config)
    requests = _submit_workload(plane, darwin, config)
    plane.run_until(lambda: _workload_done(plane, requests),
                    horizon=WALL_HORIZON, max_events=MAX_EVENTS)
    outputs = {
        request.result:
            plane.instance(request.result).outputs
        for request in requests
    }
    statuses = {plane.instance(r.result).status for r in requests}
    return {
        "status": ("completed" if statuses == {"completed"}
                   else sorted(statuses)[0]),
        "outputs": outputs,
        "wall": kernel.now,
    }


def _fault_free_twin(darwin: DarwinEngine, kernel_seed: int,
                     config: CampaignConfig) -> Dict[int, Dict[str, str]]:
    """The same kernel seed, no faults: per-shard canonical logs."""
    _kernel, plane = _build_plane(darwin, kernel_seed, config)
    requests = _submit_workload(plane, darwin, config)
    plane.run_until(lambda: _workload_done(plane, requests),
                    horizon=WALL_HORIZON, max_events=MAX_EVENTS)
    return {
        index: _shard_logs(plane, index)
        for index in range(config.shards)
    }


def run_shard_campaign(seed: int, darwin: DarwinEngine,
                       baseline: Optional[Dict] = None,
                       plan: Optional[FaultPlan] = None,
                       config: Optional[CampaignConfig] = None,
                       trace: Optional[Callable[[str], None]] = None,
                       ) -> CampaignResult:
    """Run one seeded shard campaign; returns its full accounting.

    The victim shard is resolved from the plan; every other shard's
    durable log must match a fault-free twin run byte for byte, and the
    final outputs must match the (seed-independent) baseline.
    """
    config = config or CampaignConfig(profile="shard")
    if baseline is None:
        baseline = shard_baseline(darwin, config)
    kernel_seed = 900 + seed * 13
    if plan is None:
        plan = FaultPlan.generate(
            seed, [f"s{i:02d}" for i in range(config.shards)],
            horizon=max(120.0, baseline["wall"] * 1.5),
            profile="shard",
        )
    result = CampaignResult(seed=seed, plan=plan.to_dict())
    twin_logs = _fault_free_twin(darwin, kernel_seed, config)
    kernel, plane = _build_plane(darwin, kernel_seed, config)
    requests = _submit_workload(plane, darwin, config)
    executed: set = set()
    victims: set = set()
    down = {"since": None}

    def resolve_victim(fraction: float) -> int:
        """Map a plan's victim fraction onto a shard index."""
        return min(config.shards - 1, int(fraction * config.shards))

    def crash_victim(index: int) -> None:
        """Scheduled shard crash (idempotent if already down)."""
        if not plane.shards[index].server.up:
            return
        executed.add("shard-crash")
        victims.add(index)
        plane.crash_shard(index)
        result.crashes += 1
        if down["since"] is None:
            down["since"] = kernel.now
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] shard {index} crashed")

    def recover_victim(index: int) -> None:
        """Scheduled shard failover + post-recovery invariant check."""
        if plane.shards[index].server.up:
            return
        recovered = plane.recover_shard(index)
        result.recoveries += 1
        if down["since"] is not None:
            result.recovery_time += kernel.now - down["since"]
            down["since"] = None
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] shard {index} recovered "
                  f"(epoch {recovered.epoch}); checking invariants")
        result.violations.extend(
            f"shard {index} after recovery: {problem}"
            for problem in invariants.check_server(recovered)
        )

    for fault in plan.scheduled:
        category, time, params = fault.category, fault.time, fault.params
        if category == "shard-crash":
            victim = resolve_victim(params["victim"])
            kernel.schedule(time, crash_victim, victim,
                            label=f"chaos: crash shard {victim}")
            kernel.schedule(time + params["recovery_after"],
                            recover_victim, victim,
                            label=f"chaos: recover shard {victim}")
        elif category == "shard-partition":
            victim = resolve_victim(params["victim"])
            handle: Dict[str, int] = {}

            def cut(index=victim, symmetric=params.get("symmetric", True),
                    handle=handle):
                """Open the broker↔victim partition."""
                executed.add("shard-partition")
                victims.add(index)
                handle["id"] = plane.partition_shard(
                    index, symmetric=bool(symmetric))

            def heal(handle=handle):
                """Heal the broker↔victim partition."""
                pid = handle.pop("id", None)
                if pid is not None:
                    plane.heal(pid)

            kernel.schedule(time, cut,
                            label=f"chaos: partition shard {victim}")
            kernel.schedule(time + params["duration"], heal,
                            label="chaos: partition heals")
        elif category == "shard-node-crash":
            victim = resolve_victim(params["victim"])
            cluster = plane.shards[victim].cluster
            names = sorted(cluster.nodes)
            node = names[min(len(names) - 1,
                             int(params["node"] * len(names)))]

            def crash_node(cluster=cluster, node=node, index=victim):
                """Crash one node inside the victim shard's pool."""
                if cluster.nodes[node].up:
                    executed.add("shard-node-crash")
                    victims.add(index)
                    cluster.crash_node(node)

            def restore_node(cluster=cluster, node=node):
                """Restore the victim shard's crashed node."""
                if not cluster.nodes[node].up:
                    cluster.restore_node(node)

            kernel.schedule(time, crash_node,
                            label=f"chaos: crash {node}")
            kernel.schedule(time + params["duration"], restore_node,
                            label=f"chaos: restore {node}")
        else:
            result.violations.append(
                f"plan contains unknown category {category!r}"
            )

    while True:
        if _workload_done(plane, requests):
            break
        if (kernel.now > WALL_HORIZON
                or kernel.events_processed > MAX_EVENTS):
            result.violations.append(
                f"wedged: no completion by t={kernel.now:.0f} after "
                f"{kernel.events_processed} events"
            )
            break
        if not kernel.step():
            if _workload_done(plane, requests):
                break
            result.violations.append(
                "wedged: event queue drained before completion"
            )
            break

    statuses = {
        plane.shard_of(r.result).server.instances[r.result].status
        for r in requests
        if r.status == "done"
        and r.result in plane.shard_of(r.result).server.instances
    }
    if any(r.status != "done" for r in requests):
        result.status = "lost"
    else:
        result.status = ("completed" if statuses == {"completed"}
                         else sorted(statuses)[0])

    # Classic invariants + baseline outputs, per shard.
    for index in range(config.shards):
        result.violations.extend(
            f"shard {index} final: {problem}"
            for problem in invariants.check_server(
                plane.shards[index].server,
                baseline_outputs=baseline["outputs"], final=True,
            )
        )
    # The shard-campaign-specific invariant: non-victim shards must not
    # have noticed anything — logs byte-identical to the twin run.
    for index in range(config.shards):
        if index in victims:
            continue
        if _shard_logs(plane, index) != twin_logs[index]:
            result.violations.append(
                f"shard {index} (non-victim) diverged from its "
                f"fault-free twin log"
            )
    result.executed = sorted(executed)
    result.wall = kernel.now
    result.events = kernel.events_processed
    return result
