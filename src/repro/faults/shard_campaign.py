"""Chaos campaigns against the sharded control plane (``profile="shard"``).

A shard campaign answers one question: **is the blast radius of a shard
failure really one shard?** The workload spreads multi-tenant
all-vs-all instances across every shard through the broker; the fault
plan then crashes one victim shard (optionally also cutting its broker
link and crashing one of its nodes) mid-run. Acceptance is stricter
than the single-server campaigns:

* the run must still complete every instance with outputs byte-identical
  to the fault-free baseline (the classic invariant), and
* every **non-victim** shard's durable event log must be byte-identical
  — same events, same order, same timestamps — to a fault-free *twin*
  run at the same kernel seed. A healthy shard is not allowed to even
  *notice* the victim's failure.

The twin comparison is what the per-shard RNG namespacing and the
jitter-free control fabric buy: without them, a victim's redeliveries
would perturb the shared random streams and shift healthy shards'
timings, turning "no interference" into an unfalsifiable claim.

Victim selection in a plan is a fraction (``int(victim * shards)``), so
one serialized plan replays against any plane size.

The ``rebalance`` profile reuses the same harness but disturbs the
*topology*: the plane may grow mid-campaign, one shard is always drained
(live-migrating its instances to router-picked siblings, then retiring),
and the plan arms crashes inside the migration protocol's journaled
windows (``shard.migrate.*`` — prepare/export/commit kill the source
shard, import/activate the target). Acceptance adds the migration
invariants (:func:`repro.shard.migration_invariants`: no half-moves, all
forwards resolve, copied logs digest-identical) and a per-request output
check against the baseline — exactly-once outcomes even when the
instance changed its id mid-flight. The twin comparison still applies,
to shards that were neither drained, grown, crashed, nor a migration
source/target.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from ..bio import DarwinEngine
from ..cluster import SimKernel
from ..core.engine.library import ProgramRegistry
from ..errors import EngineError
from ..processes.activities import register_all_vs_all_programs
from ..processes.all_vs_all import (build_align_chunk_template,
                                    build_all_vs_all_template)
from ..shard import ShardedControlPlane, migration_invariants
from . import invariants
from .chaos import (MAX_EVENTS, WALL_HORIZON, CampaignConfig,
                    CampaignResult)
from .plan import FaultPlan
from .points import FaultInjector, InjectedCrash, installed

#: tenants driving the campaign workload, and instances per tenant.
TENANTS = 4
INSTANCES_PER_TENANT = 2


def _build_plane(darwin: DarwinEngine, kernel_seed: int,
                 config: CampaignConfig):
    """Assemble a fresh plane + kernel for one campaign run."""
    registry = ProgramRegistry()
    register_all_vs_all_programs(registry, darwin)
    kernel = SimKernel(seed=kernel_seed)
    plane = ShardedControlPlane(
        kernel,
        shards=config.shards,
        nodes_per_shard=config.nodes,
        cpus=config.cpus,
        seed=kernel_seed,
        registry=registry,
        templates=[build_align_chunk_template(),
                   build_all_vs_all_template()],
        store_options=dict(
            retain_history=True,
            segment_records=config.segment_records,
            sync_policy=config.sync_policy,
            group_max_pending=config.group_max_pending,
        ),
        checkpoint_interval=config.checkpoint_interval,
        leases=config.leases,
        quarantine=config.quarantine,
    )
    return kernel, plane


def _submit_workload(plane: ShardedControlPlane,
                     darwin: DarwinEngine,
                     config: CampaignConfig) -> List:
    """Queue the multi-tenant launches; returns the launch requests."""
    return [
        plane.launch(f"tenant{tenant}", "all_vs_all", {
            "db_name": darwin.profile.name,
            "granularity": config.granularity,
        })
        for tenant in range(TENANTS)
        for _ in range(INSTANCES_PER_TENANT)
    ]


def _workload_done(plane: ShardedControlPlane, requests: List) -> bool:
    """Every launch acked and every minted instance terminal?

    Forward-chasing: a drained instance counts once its *migrated* copy
    is terminal on its new home. An id that cannot be resolved yet (a
    move in flight, its home crashed) simply means "not done".
    """
    if any(request.status != "done" for request in requests):
        return False
    for request in requests:
        try:
            owner, final_id = plane.resolve_instance(request.result)
        except EngineError:
            return False
        shard = plane.shards[owner]
        if not shard.server.up:
            return False
        instance = shard.server.instances.get(final_id)
        if instance is None or not instance.terminal:
            return False
    return True


def _shard_logs(plane: ShardedControlPlane,
                index: int) -> Dict[str, str]:
    """One shard's durable event logs, canonically serialized."""
    server = plane.shards[index].server
    return {
        instance_id: json.dumps(
            list(server.store.instances.events(instance_id)),
            sort_keys=True,
        )
        for instance_id in server.store.instances.instance_ids()
    }


def shard_baseline(darwin: DarwinEngine, config: CampaignConfig) -> Dict:
    """Run the sharded workload undisturbed (the output oracle)."""
    kernel, plane = _build_plane(darwin, kernel_seed=101, config=config)
    requests = _submit_workload(plane, darwin, config)
    plane.run_until(lambda: _workload_done(plane, requests),
                    horizon=WALL_HORIZON, max_events=MAX_EVENTS)
    outputs = {
        request.result:
            plane.instance(request.result).outputs
        for request in requests
    }
    statuses = {plane.instance(r.result).status for r in requests}
    return {
        "status": ("completed" if statuses == {"completed"}
                   else sorted(statuses)[0]),
        "outputs": outputs,
        # Keyed by request id, which survives migration re-prefixing —
        # the rebalance profile's exactly-once-across-the-move oracle.
        "outputs_by_request": {
            request.request_id: plane.instance(request.result).outputs
            for request in requests
        },
        "wall": kernel.now,
    }


def _fault_free_twin(darwin: DarwinEngine, kernel_seed: int,
                     config: CampaignConfig) -> Dict[int, Dict[str, str]]:
    """The same kernel seed, no faults: per-shard canonical logs."""
    _kernel, plane = _build_plane(darwin, kernel_seed, config)
    requests = _submit_workload(plane, darwin, config)
    plane.run_until(lambda: _workload_done(plane, requests),
                    horizon=WALL_HORIZON, max_events=MAX_EVENTS)
    return {
        index: _shard_logs(plane, index)
        for index in range(config.shards)
    }


def run_shard_campaign(seed: int, darwin: DarwinEngine,
                       baseline: Optional[Dict] = None,
                       plan: Optional[FaultPlan] = None,
                       config: Optional[CampaignConfig] = None,
                       trace: Optional[Callable[[str], None]] = None,
                       ) -> CampaignResult:
    """Run one seeded shard campaign; returns its full accounting.

    The victim shard is resolved from the plan; every other shard's
    durable log must match a fault-free twin run byte for byte, and the
    final outputs must match the (seed-independent) baseline.
    """
    config = config or CampaignConfig(profile="shard")
    if baseline is None:
        baseline = shard_baseline(darwin, config)
    kernel_seed = 900 + seed * 13
    if plan is None:
        plan = FaultPlan.generate(
            seed, [f"s{i:02d}" for i in range(config.shards)],
            horizon=max(120.0, baseline["wall"] * 1.5),
            profile=config.profile,
        )
    result = CampaignResult(seed=seed, plan=plan.to_dict())
    twin_logs = _fault_free_twin(darwin, kernel_seed, config)
    kernel, plane = _build_plane(darwin, kernel_seed, config)
    requests = _submit_workload(plane, darwin, config)
    executed: set = set()
    victims: set = set()
    #: shards whose timeline the campaign itself perturbed (drained,
    #: grown, crashed, or party to a migration) — exempt from the
    #: byte-identical twin comparison.
    participants: set = set()
    down = {"since": None}
    drain_state: Dict[str, Optional[int]] = {"victim": None}
    recovery_rng = kernel.rng("chaos-recovery")

    def resolve_victim(fraction: float) -> int:
        """Map a plan's victim fraction onto a shard index."""
        return min(config.shards - 1, int(fraction * config.shards))

    def crash_victim(index: int) -> None:
        """Scheduled shard crash (idempotent if already down)."""
        shard = plane.shards[index]
        if shard.retired or not shard.server.up:
            return
        executed.add("shard-crash")
        victims.add(index)
        plane.crash_shard(index)
        result.crashes += 1
        if down["since"] is None:
            down["since"] = kernel.now
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] shard {index} crashed")

    def recover_victim(index: int) -> None:
        """Scheduled shard failover + post-recovery invariant check."""
        if plane.shards[index].retired or plane.shards[index].server.up:
            return
        recovered = plane.recover_shard(index)
        result.recoveries += 1
        if down["since"] is not None:
            result.recovery_time += kernel.now - down["since"]
            down["since"] = None
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] shard {index} recovered "
                  f"(epoch {recovered.epoch}); checking invariants")
        result.violations.extend(
            f"shard {index} after recovery: {problem}"
            for problem in invariants.check_server(recovered)
        )

    def do_grow(count: int) -> None:
        """Scheduled plane growth; new launches hash onto the fresh
        shards (the campaign's are already minted, so growth mainly
        widens the drain's target pool)."""
        executed.add("shard-grow")
        added = plane.grow(count)
        participants.update(added)
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] plane grew: shards {added}")

    def ensure_drained() -> None:
        """Scheduled drain; re-entered after every mid-drain crash.

        A drain interrupted by an injected ``shard.migrate.*`` crash
        left the victim un-retired; once the crashed party recovers
        (``recover_shard`` runs ``migrator.resume()``), calling
        ``drain_shard`` again finishes the remaining moves.
        """
        index = drain_state["victim"]
        if index is None or plane.shards[index].retired:
            return
        if not plane.shards[index].server.up:
            kernel.schedule(30.0, ensure_drained,
                            label="chaos: drain awaits recovery")
            return
        executed.add("shard-drain")
        participants.add(index)
        moved = plane.drain_shard(index)
        if trace is not None:
            trace(f"[t={kernel.now:10.1f}] shard {index} drained and "
                  f"retired ({len(moved)} instance(s) moved)")

    for fault in plan.scheduled:
        category, time, params = fault.category, fault.time, fault.params
        if category == "shard-crash":
            victim = resolve_victim(params["victim"])
            kernel.schedule(time, crash_victim, victim,
                            label=f"chaos: crash shard {victim}")
            kernel.schedule(time + params["recovery_after"],
                            recover_victim, victim,
                            label=f"chaos: recover shard {victim}")
        elif category == "shard-partition":
            victim = resolve_victim(params["victim"])
            handle: Dict[str, int] = {}

            def cut(index=victim, symmetric=params.get("symmetric", True),
                    handle=handle):
                """Open the broker↔victim partition."""
                executed.add("shard-partition")
                victims.add(index)
                handle["id"] = plane.partition_shard(
                    index, symmetric=bool(symmetric))

            def heal(handle=handle):
                """Heal the broker↔victim partition."""
                pid = handle.pop("id", None)
                if pid is not None:
                    plane.heal(pid)

            kernel.schedule(time, cut,
                            label=f"chaos: partition shard {victim}")
            kernel.schedule(time + params["duration"], heal,
                            label="chaos: partition heals")
        elif category == "shard-node-crash":
            victim = resolve_victim(params["victim"])
            cluster = plane.shards[victim].cluster
            names = sorted(cluster.nodes)
            node = names[min(len(names) - 1,
                             int(params["node"] * len(names)))]

            def crash_node(cluster=cluster, node=node, index=victim):
                """Crash one node inside the victim shard's pool."""
                if cluster.nodes[node].up:
                    executed.add("shard-node-crash")
                    victims.add(index)
                    cluster.crash_node(node)

            def restore_node(cluster=cluster, node=node):
                """Restore the victim shard's crashed node."""
                if not cluster.nodes[node].up:
                    cluster.restore_node(node)

            kernel.schedule(time, crash_node,
                            label=f"chaos: crash {node}")
            kernel.schedule(time + params["duration"], restore_node,
                            label=f"chaos: restore {node}")
        elif category == "shard-drain":
            victim = resolve_victim(params["victim"])
            drain_state["victim"] = victim
            kernel.schedule(time, ensure_drained,
                            label=f"chaos: drain shard {victim}")
        elif category == "shard-grow":
            kernel.schedule(time, do_grow,
                            int(params.get("count", 1)),
                            label="chaos: grow plane")
        else:
            result.violations.append(
                f"plan contains unknown category {category!r}"
            )

    injector = FaultInjector(plan.actions)
    with installed(injector):
        while True:
            if _workload_done(plane, requests):
                break
            if (kernel.now > WALL_HORIZON
                    or kernel.events_processed > MAX_EVENTS):
                result.violations.append(
                    f"wedged: no completion by t={kernel.now:.0f} after "
                    f"{kernel.events_processed} events"
                )
                break
            try:
                progressed = kernel.step()
            except InjectedCrash as exc:
                # A shard.migrate.* window fired mid-drain. The protocol
                # convention: prepare/export/commit windows kill the
                # SOURCE shard, import/activate the TARGET — whichever
                # party's durable state the phase was mutating.
                result.crashes += 1
                current = plane.migrator.current or {}
                side = ("target" if exc.point.rsplit(".", 1)[-1]
                        in ("import", "activate") else "source")
                index = current.get(side, drain_state["victim"])
                participants.update(
                    i for i in (current.get("source"),
                                current.get("target"))
                    if i is not None)
                if trace is not None:
                    trace(f"[t={kernel.now:10.1f}] injected crash at "
                          f"{exc.point} (crash {result.crashes}): "
                          f"shard {index} down")
                if index is None:
                    continue
                shard = plane.shards[index]
                victims.add(index)
                if not shard.retired and shard.server.up:
                    plane.crash_shard(index)
                    if down["since"] is None:
                        down["since"] = kernel.now
                delay = recovery_rng.uniform(20.0, 120.0)
                kernel.schedule(delay, recover_victim, index,
                                label=f"chaos: recover shard {index}")
                kernel.schedule(delay + 1.0, ensure_drained,
                                label="chaos: resume drain")
                continue
            if not progressed:
                if _workload_done(plane, requests):
                    break
                result.violations.append(
                    "wedged: event queue drained before completion"
                )
                break
    result.fired = list(injector.fired)

    statuses = set()
    lost = any(r.status != "done" for r in requests)
    for request in requests:
        if request.status != "done":
            continue
        try:
            owner, final_id = plane.resolve_instance(request.result)
        except EngineError:
            lost = True
            continue
        instance = plane.shards[owner].server.instances.get(final_id)
        if instance is None:
            lost = True
        else:
            statuses.add(instance.status)
    if lost:
        result.status = "lost"
    else:
        result.status = ("completed" if statuses == {"completed"}
                         else sorted(statuses)[0])

    # Classic invariants + baseline outputs, per live shard (grown
    # shards included; a drained shard's empty, retired store is judged
    # by the migration invariants instead).
    for shard in plane.shards:
        if shard.retired:
            continue
        result.violations.extend(
            f"shard {shard.index} final: {problem}"
            for problem in invariants.check_server(
                shard.server,
                baseline_outputs=baseline["outputs"], final=True,
            )
        )
    # Migration protocol end-state: no half-moves, every forward
    # resolves, every copied log digest-identical to its source. A
    # no-op for campaigns that never migrated.
    result.violations.extend(
        f"migration: {problem}"
        for problem in migration_invariants(plane)
    )
    # Exactly-once outcomes across the move: per *request* (the handle
    # that survives re-prefixing), outputs must match the fault-free
    # baseline even when the instance changed id and shard mid-flight.
    by_request = baseline.get("outputs_by_request") or {}
    for request in requests:
        expected = by_request.get(request.request_id)
        if expected is None or request.status != "done":
            continue
        try:
            owner, final_id = plane.resolve_instance(request.result)
            outputs = plane.shards[owner].server.instances[final_id].outputs
        except (EngineError, KeyError):
            result.violations.append(
                f"{request.request_id}: result {request.result!r} "
                f"unresolvable at campaign end"
            )
            continue
        if (json.dumps(outputs, sort_keys=True)
                != json.dumps(expected, sort_keys=True)):
            result.violations.append(
                f"{request.request_id}: outputs diverged from the "
                f"fault-free baseline across the move"
            )
    # The blast-radius invariant: shards that were neither disturbed
    # nor party to a migration must not have noticed anything — logs
    # byte-identical to the twin run.
    for move in plane.migrator.completed:
        participants.add(move["source"])
        participants.add(move["target"])
    participants.update(victims)
    for index in range(config.shards):
        if index in participants:
            continue
        if _shard_logs(plane, index) != twin_logs[index]:
            result.violations.append(
                f"shard {index} (non-participant) diverged from its "
                f"fault-free twin log"
            )
    result.executed = sorted(executed)
    result.wall = kernel.now
    result.events = kernel.events_processed
    return result
