"""Dependability reports: ``BENCH_chaos.json`` + markdown campaign report.

Pulls the statistical survival table (rate ± Wilson CI per fault
category), the sweep ranking (Pareto front + weighted scores), the
parallel-speedup measurement, and the failure roster into one JSON
artifact and one human-readable markdown report. Pure formatting — no
engine imports — so it is cheap to unit-test.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Sequence

from . import stats


def _md_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """A GitHub-flavored markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend(
        "| " + " | ".join(str(cell) for cell in row) + " |" for row in rows
    )
    return "\n".join(lines)


def statistical_summary(records: Sequence[Dict],
                        epsilon: Optional[float] = None,
                        z: float = stats.Z_95) -> Dict:
    """Per-category survival with Wilson bounds, plus convergence state.

    ``epsilon=None`` means a fixed seed budget was used: the intervals
    are still reported, but there is no stop rule to converge on.
    """
    per_category = stats.aggregate(records)
    return {
        "epsilon": epsilon,
        "z": round(z, 6),
        "total_runs": len(records),
        "failed_runs": sum(1 for record in records if not record["ok"]),
        "converged": (stats.converged(per_category, epsilon, z)
                      if epsilon is not None else None),
        "unconverged": (stats.unconverged(per_category, epsilon, z)
                        if epsilon is not None else []),
        "categories": {
            name: entry.to_dict(z)
            for name, entry in sorted(per_category.items())
        },
    }


def sweep_summary(outcomes: Sequence, axes: Sequence,
                  seeds: Sequence[int],
                  weights: Optional[Dict[str, float]] = None) -> Dict:
    """The sweep's cells, Pareto front, and weighted ranking."""
    from .sweep import DEFAULT_WEIGHTS
    return {
        "axes": [
            {"name": axis.name, "values": [repr(v) for v in axis.values]}
            for axis in axes
        ],
        "seeds": list(seeds),
        "weights": dict(weights or DEFAULT_WEIGHTS),
        "cells": [outcome.to_dict() for outcome in outcomes],
        "pareto_front": [
            outcome.cell for outcome in outcomes if outcome.pareto
        ],
        "ranking": [outcome.cell for outcome in outcomes],
    }


def failure_roster(records: Sequence[Dict]) -> List[Dict]:
    """Compact list of every failed/hung run across the campaign."""
    return [
        {
            "seed": record["seed"],
            "cell": record["cell"],
            "status": record["status"],
            "violations": record.get("violations", []),
        }
        for record in records
        if not record["ok"]
    ]


def markdown_report(payload: Dict) -> str:
    """Render the whole campaign payload as a markdown report."""
    parts: List[str] = ["# Chaos dependability campaign report", ""]

    statistical = payload.get("statistical")
    if statistical:
        if statistical["epsilon"] is not None:
            headline = (
                f"Stop rule: per-category Wilson half-width ≤ "
                f"{statistical['epsilon']} at z={statistical['z']}; "
                f"{statistical['total_runs']} runs drawn, "
                f"{statistical['failed_runs']} failed, "
                + ("converged."
                   if statistical["converged"]
                   else "NOT converged: "
                        + ", ".join(statistical["unconverged"]) + ".")
            )
        else:
            headline = (
                f"Fixed budget: {statistical['total_runs']} runs, "
                f"{statistical['failed_runs']} failed "
                f"(Wilson intervals at z={statistical['z']})."
            )
        parts += [
            "## Statistical survival (Wilson intervals)",
            "",
            headline,
            "",
            _md_table(
                ("fault category", "engaged", "survived", "rate",
                 "95% CI", "half-width"),
                [
                    (name, c["engaged"], c["survived"],
                     f"{c['rate']:.3f}",
                     f"[{c['ci_low']:.3f}, {c['ci_high']:.3f}]",
                     f"{c['half_width']:.3f}")
                    for name, c in statistical["categories"].items()
                ],
            ),
            "",
        ]

    sweep = payload.get("sweep")
    if sweep:
        axes = ", ".join(
            f"{axis['name']}∈{{{', '.join(axis['values'])}}}"
            for axis in sweep["axes"]
        )
        parts += [
            "## Configuration sweep (common random numbers)",
            "",
            f"{len(sweep['cells'])} cells over {axes}; every cell ran the "
            f"same {len(sweep['seeds'])} seeds. Score = weighted sum over "
            f"min-max-normalized survival/throughput/recovery "
            f"({sweep['weights']}).",
            "",
            _md_table(
                ("rank", "cell", "survival", "throughput",
                 "recovery (s)", "score", "Pareto"),
                [
                    (rank + 1, cell["cell"],
                     f"{cell['metrics']['survival']:.0%}",
                     f"{cell['metrics']['throughput']:.3f}",
                     f"{cell['metrics']['recovery']:.0f}",
                     f"{cell['score']:.3f}",
                     "◆" if cell["pareto"] else "")
                    for rank, cell in enumerate(sweep["cells"])
                ],
            ),
            "",
            "Pareto front: " + ", ".join(sweep["pareto_front"]) + ".",
            "",
        ]

    parallel = payload.get("parallel")
    if parallel:
        parts += [
            "## Parallel execution",
            "",
            f"{parallel['runs']} runs: {parallel['serial_s']:.1f}s with 1 "
            f"worker vs {parallel['parallel_s']:.1f}s with "
            f"{parallel['workers']} workers — "
            f"{parallel['speedup']:.2f}× on a {parallel['cpu_count']}-core "
            f"host. (Speedup tracks physical cores; a 1-core host can only "
            f"show pool overhead.)",
            "",
        ]

    failures = payload.get("failures", [])
    if failures:
        parts += ["## Failing runs", ""]
        for failure in failures:
            parts.append(
                f"- seed {failure['seed']} [{failure['cell']}] "
                f"status={failure['status']}: "
                + "; ".join(failure["violations"][:3])
            )
        parts.append("")
    else:
        parts += ["## Failing runs", "", "None — every run survived with "
                  "all invariants intact.", ""]

    return "\n".join(parts)


def write_json(path: str, payload: Dict) -> None:
    """Write the JSON artifact (stable key order)."""
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def write_markdown(path: str, payload: Dict) -> str:
    """Render and write the markdown report; returns the text."""
    text = markdown_report(payload)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text
