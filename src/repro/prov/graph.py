"""Provenance graph: activities + datasets over the lineage stream.

Promotes the flat :class:`~repro.store.lineage.LineageRecord` stream into
the queryable ancestry/derivation graph the paper's conclusion promises
("lineage tracking is done automatically and all dependencies are
persistently recorded"): every record becomes one *activity* node (the
task attempt that ran, identified by its span) joined to the *entity*
nodes it used and generated. On top of the dataset-level queries of
:class:`~repro.store.lineage.LineageGraph` this adds:

* derivation paths (the chain of records connecting two datasets);
* a structural diff between two runs of the same template (instance
  prefixes are stripped, so homologous tasks line up);
* W3C PROV-JSON export/import (``entity`` / ``activity`` / ``used`` /
  ``wasGeneratedBy`` / ``wasDerivedFrom``), round-trippable.

The graph's canonical serialization (:meth:`ProvenanceGraph.dump`) is the
byte-identity anchor of the ``prov-equivalence`` chaos invariant: the
incrementally maintained view must dump exactly what a rebuild from the
durable lineage log dumps.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import StoreError
from ..store.lineage import LineageGraph, LineageRecord

#: PROV-JSON namespace prefix for every identifier this module mints.
PROV_PREFIX = "repro"
PROV_URI = "urn:repro:"


def _qual(local: str) -> str:
    """Qualify a local name into the repro PROV namespace."""
    return f"{PROV_PREFIX}:{local}"


def relative_dataset(dataset: str, instance_id: str) -> str:
    """Strip ``instance_id``'s prefix off a dataset name.

    Dataset names are instance-scoped (``<iid>/<task path>`` or
    ``<iid>/wb:<name>``); diffing two runs only makes sense on the
    instance-relative part.
    """
    prefix = f"{instance_id}/"
    if dataset.startswith(prefix):
        return dataset[len(prefix):]
    return dataset


class ProvenanceGraph:
    """Activity+entity graph folded from lineage records, in order.

    Folding is deterministic and order-sensitive in exactly the way
    :class:`LineageGraph` is (a re-derivation replaces the old record),
    so any two folds of the same record sequence — incremental or from
    scratch — produce byte-identical :meth:`dump` output.
    """

    def __init__(self, records: Iterable[LineageRecord] = ()):
        self.lineage = LineageGraph()
        #: (instance_id, task path) -> latest record for that task.
        self.activities: Dict[Tuple[str, str], LineageRecord] = {}
        #: instance_id -> task paths recorded, in first-recorded order.
        self._runs: Dict[str, List[str]] = {}
        for record in records:
            self.add(record)

    @classmethod
    def from_records(cls, raw_records: Iterable[Dict[str, Any]]
                     ) -> "ProvenanceGraph":
        """Build a graph from raw lineage dicts (the rescan path)."""
        return cls(LineageRecord.from_dict(r) for r in raw_records)

    def add(self, record: LineageRecord) -> None:
        """Fold one derivation; a re-derivation replaces the old one."""
        self.lineage.add(record)
        key = (record.instance_id, record.task)
        if key not in self.activities:
            self._runs.setdefault(record.instance_id, []).append(record.task)
        self.activities[key] = record

    def add_raw(self, record: Dict[str, Any]) -> None:
        """Fold one raw lineage dict (the incremental-view hot path)."""
        self.add(LineageRecord.from_dict(record))

    def __len__(self) -> int:
        return len(self.lineage)

    # -- canonical serialization (checkpoint + equivalence anchor) ---------

    def dump(self) -> Dict[str, Any]:
        """Canonical codec-safe snapshot: the records in graph order."""
        return {"records": [r.to_dict() for r in self.lineage.records]}

    @classmethod
    def load(cls, data: Optional[Dict[str, Any]]) -> "ProvenanceGraph":
        """Rebuild a graph from :meth:`dump` output."""
        return cls.from_records((data or {}).get("records", ()))

    # -- queries ------------------------------------------------------------

    def instance_ids(self) -> List[str]:
        """Sorted ids of every instance with recorded derivations."""
        return sorted(self._runs)

    def run_records(self, instance_id: str) -> List[LineageRecord]:
        """The instance's task records in first-recorded order."""
        return [
            self.activities[(instance_id, task)]
            for task in self._runs.get(instance_id, ())
        ]

    def run_steps(self, instance_id: str) -> List[Dict[str, Any]]:
        """The instance's derivation steps as operator-facing rows."""
        return [self._step(r) for r in self.run_records(instance_id)]

    def ancestry(self, dataset: str) -> List[Dict[str, Any]]:
        """The derivation steps ``dataset`` (transitively) came from.

        Rows are emitted in dependency order (furthest ancestor first)
        and include the queried dataset's own producer, if derived.
        """
        order: List[str] = []
        seen = set()

        def visit(current: str) -> None:
            """Post-order walk: ancestors land before their consumers."""
            if current in seen:
                return
            seen.add(current)
            record = self.lineage._producers.get(current)
            if record is None:
                return
            for inp in record.inputs:
                visit(inp)
            order.append(current)

        visit(dataset)
        rows = []
        emitted = set()
        for produced in order:
            record = self.lineage.producer(produced)
            if id(record) in emitted:
                continue
            emitted.add(id(record))
            rows.append(self._step(record))
        return rows

    def descendants(self, dataset: str) -> List[str]:
        """Sorted datasets that (transitively) depend on this one."""
        return sorted(self.lineage.descendants(dataset))

    def derivation_path(self, source: str,
                        target: str) -> List[Dict[str, Any]]:
        """The chain of derivation steps leading ``source`` → ``target``.

        Returns the shortest such chain (BFS over producer edges walked
        backwards from ``target``); raises :class:`StoreError` when no
        chain exists.
        """
        if source == target:
            return []
        parents: Dict[str, Tuple[str, LineageRecord]] = {}
        frontier = [target]
        seen = {target}
        found = False
        while frontier and not found:
            nxt: List[str] = []
            for current in frontier:
                record = self.lineage._producers.get(current)
                if record is None:
                    continue
                for inp in record.inputs:
                    if inp in seen:
                        continue
                    seen.add(inp)
                    parents[inp] = (current, record)
                    if inp == source:
                        found = True
                        break
                    nxt.append(inp)
                if found:
                    break
            frontier = nxt
        if not found:
            raise StoreError(
                f"no derivation path from {source!r} to {target!r}"
            )
        steps: List[Dict[str, Any]] = []
        current = source
        while current != target:
            current, record = parents[current]
            steps.append(self._step(record))
        return steps

    def _step(self, record: LineageRecord) -> Dict[str, Any]:
        """One derivation step as an operator-facing row."""
        return {
            "task": record.task,
            "instance_id": record.instance_id,
            "program": record.program,
            "inputs": list(record.inputs),
            "outputs": list(record.outputs),
            "span": record.span,
            "timestamp": record.timestamp,
        }

    # -- run diff -----------------------------------------------------------

    def diff_runs(self, run_a: str, run_b: str,
                  other: Optional["ProvenanceGraph"] = None
                  ) -> Dict[str, Any]:
        """Structural diff between two runs (``other`` may hold run_b).

        Tasks are matched by path; a matched task is *changed* when its
        program or its instance-relative input set differs. ``only_a`` /
        ``only_b`` list unmatched task paths. Both runs must have
        recorded derivations (a typed error beats a silently empty
        diff).
        """
        graph_b = other if other is not None else self
        records_a = {r.task: r for r in self.run_records(run_a)}
        records_b = {r.task: r for r in graph_b.run_records(run_b)}
        if not records_a:
            raise StoreError(f"no provenance recorded for run {run_a!r}")
        if not records_b:
            raise StoreError(f"no provenance recorded for run {run_b!r}")
        changed = []
        same = []
        for task in sorted(set(records_a) & set(records_b)):
            rec_a, rec_b = records_a[task], records_b[task]
            reasons = []
            if rec_a.program != rec_b.program:
                reasons.append(
                    f"program {rec_a.program!r} -> {rec_b.program!r}"
                )
            rel_a = [relative_dataset(i, run_a) for i in rec_a.inputs]
            rel_b = [relative_dataset(i, run_b) for i in rec_b.inputs]
            if rel_a != rel_b:
                reasons.append(f"inputs {rel_a} -> {rel_b}")
            if reasons:
                changed.append({"task": task, "reasons": reasons})
            else:
                same.append(task)
        return {
            "run_a": run_a,
            "run_b": run_b,
            "only_a": sorted(set(records_a) - set(records_b)),
            "only_b": sorted(set(records_b) - set(records_a)),
            "changed": changed,
            "unchanged": same,
        }

    # -- W3C PROV-JSON ------------------------------------------------------

    def to_prov_json(self,
                     instance_id: Optional[str] = None) -> Dict[str, Any]:
        """Export as a W3C PROV-JSON document.

        Datasets become ``entity`` nodes, task attempts (spans) become
        ``activity`` nodes, with ``used`` / ``wasGeneratedBy`` edges and
        a derived ``wasDerivedFrom`` closure (output ← each input).
        ``instance_id`` restricts the export to one run's records.
        Edge identifiers are indexed so :meth:`from_prov_json` can
        reconstruct the original record order exactly.
        """
        document: Dict[str, Any] = {
            "prefix": {PROV_PREFIX: PROV_URI},
            "entity": {},
            "activity": {},
            "used": {},
            "wasGeneratedBy": {},
            "wasDerivedFrom": {},
        }
        records = [
            r for r in self.lineage.records
            if instance_id is None or r.instance_id == instance_id
        ]
        for index, record in enumerate(records):
            activity = _qual(record.span or f"{record.instance_id}:"
                             f"{record.task}")
            document["activity"][activity] = {
                f"{PROV_PREFIX}:index": index,
                f"{PROV_PREFIX}:instance": record.instance_id,
                f"{PROV_PREFIX}:task": record.task,
                f"{PROV_PREFIX}:program": record.program,
                f"{PROV_PREFIX}:program_version": record.program_version,
                f"{PROV_PREFIX}:parameters": [
                    [k, v] for k, v in record.parameters
                ],
                f"{PROV_PREFIX}:timestamp": record.timestamp,
                f"{PROV_PREFIX}:memo_key": record.memo_key,
            }
            for pos, dataset in enumerate(record.inputs):
                entity = _qual(dataset)
                document["entity"].setdefault(entity, {})
                document["used"][f"_:u{index}.{pos}"] = {
                    "prov:activity": activity,
                    "prov:entity": entity,
                }
            for pos, dataset in enumerate(record.outputs):
                entity = _qual(dataset)
                document["entity"].setdefault(
                    entity, {})[f"{PROV_PREFIX}:instance"] = (
                        record.instance_id)
                document["wasGeneratedBy"][f"_:g{index}.{pos}"] = {
                    "prov:entity": entity,
                    "prov:activity": activity,
                }
                for ipos, source in enumerate(record.inputs):
                    document["wasDerivedFrom"][f"_:d{index}.{pos}.{ipos}"] = {
                        "prov:generatedEntity": entity,
                        "prov:usedEntity": _qual(source),
                    }
        return document

    @classmethod
    def from_prov_json(cls, document: Dict[str, Any]) -> "ProvenanceGraph":
        """Rebuild a graph from :meth:`to_prov_json` output."""
        strip = len(f"{PROV_PREFIX}:")

        def local(name: str) -> str:
            """Strip the document prefix, rejecting foreign identifiers."""
            if not name.startswith(f"{PROV_PREFIX}:"):
                raise StoreError(f"foreign PROV identifier {name!r}")
            return name[strip:]

        used: Dict[str, List[Tuple[int, str]]] = {}
        for edge in (document.get("used") or {}).values():
            activity = edge["prov:activity"]
            pos = len(used.setdefault(activity, []))
            used[activity].append((pos, local(edge["prov:entity"])))
        generated: Dict[str, List[Tuple[int, str]]] = {}
        for edge in (document.get("wasGeneratedBy") or {}).values():
            activity = edge["prov:activity"]
            pos = len(generated.setdefault(activity, []))
            generated[activity].append((pos, local(edge["prov:entity"])))
        activities = sorted(
            (document.get("activity") or {}).items(),
            key=lambda item: item[1].get(f"{PROV_PREFIX}:index", 0),
        )
        graph = cls()
        for name, attrs in activities:
            graph.add(LineageRecord(
                outputs=tuple(d for _, d in sorted(generated.get(name, ()))),
                inputs=tuple(d for _, d in sorted(used.get(name, ()))),
                program=attrs.get(f"{PROV_PREFIX}:program", ""),
                program_version=attrs.get(
                    f"{PROV_PREFIX}:program_version", "1"),
                parameters=tuple(
                    (k, v) for k, v in attrs.get(
                        f"{PROV_PREFIX}:parameters", ())
                ),
                instance_id=attrs.get(f"{PROV_PREFIX}:instance", ""),
                task=attrs.get(f"{PROV_PREFIX}:task", ""),
                timestamp=attrs.get(f"{PROV_PREFIX}:timestamp", 0.0),
                span=local(name),
                memo_key=attrs.get(f"{PROV_PREFIX}:memo_key", ""),
            ))
        return graph


def merge_prov_documents(documents: Iterable[Dict[str, Any]]
                         ) -> Dict[str, Any]:
    """Union several PROV-JSON documents (the cross-shard export path).

    Identifiers embed globally unique instance ids (shard prefixes), so
    the union is a plain key merge — but edge indices must be re-spaced
    so activity record order stays reconstructable after the merge.
    """
    merged: Dict[str, Any] = {
        "prefix": {PROV_PREFIX: PROV_URI},
        "entity": {},
        "activity": {},
        "used": {},
        "wasGeneratedBy": {},
        "wasDerivedFrom": {},
    }
    base = 0
    for document in documents:
        highest = -1
        for name, attrs in (document.get("activity") or {}).items():
            attrs = dict(attrs)
            index = int(attrs.get(f"{PROV_PREFIX}:index", 0))
            highest = max(highest, index)
            attrs[f"{PROV_PREFIX}:index"] = base + index
            merged["activity"][name] = attrs
        for section in ("entity",):
            for name, attrs in (document.get(section) or {}).items():
                merged[section].setdefault(name, {}).update(attrs)
        for section in ("used", "wasGeneratedBy", "wasDerivedFrom"):
            for edge_id, edge in (document.get(section) or {}).items():
                merged[section][f"{edge_id}@{base}"] = dict(edge)
        base += highest + 1
    return merged
