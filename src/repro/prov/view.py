"""Incremental provenance view: the lineage stream, folded live.

The :class:`ProvenanceView` mirrors PR 3's materialized views, but over
the *data space's lineage log* instead of the instance-space event logs:

* live application folds each durable lineage append exactly once,
  guarded by a single sequence cursor (re-delivered records below the
  cursor are skipped, a gap raises);
* :meth:`checkpoint` persists the graph state *and* the cursor in one KV
  transaction under ``obs/view/provenance``, with the ``prov.checkpoint``
  fault point fired first — a crash there leaves the view recoverable
  from its previous checkpoint;
* :meth:`bind` loads the durable checkpoint and catches up by replaying
  only the lineage suffix, then resumes live application.

The chaos invariant (``prov-equivalence`` in
:mod:`repro.faults.invariants`) holds the view's graph byte-identical,
under the canonical codec, to a graph rebuilt from scratch off the
durable lineage log — after every crash and recovery.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..errors import StoreError
from ..faults.points import fire
from .graph import ProvenanceGraph

#: KV key under which the provenance view checkpoint lives (the
#: ``obs/view/`` prefix keeps it alongside the event-log views').
CHECKPOINT_KEY = "obs/view/provenance"


class ProvenanceView:
    """The provenance graph, maintained incrementally with a cursor."""

    name = "provenance"

    def __init__(self):
        self.graph = ProvenanceGraph()
        #: next lineage sequence number to fold.
        self.cursor = 0
        self._store = None

    # -- binding & recovery -------------------------------------------------

    def bind(self, store) -> None:
        """Load the durable checkpoint, catch up, subscribe to appends."""
        self._store = store
        data = store.kv.get(CHECKPOINT_KEY)
        if data is not None:
            self.cursor = int(data.get("cursor", 0))
            self.graph = ProvenanceGraph.load(data.get("state"))
        else:
            self.cursor = 0
            self.graph = ProvenanceGraph()
        self.catch_up(store)
        store.data.subscribe(self.on_lineage)

    def unbind(self, store) -> None:
        """Stop receiving lineage appends from ``store``."""
        store.data.unsubscribe(self.on_lineage)
        if self._store is store:
            self._store = None

    def catch_up(self, store) -> None:
        """Fold the lineage suffix ``[cursor, count)`` from the log."""
        count = store.data.lineage_count()
        if self.cursor > count:
            raise StoreError(
                f"provenance checkpoint cursor {self.cursor} is ahead of "
                f"the durable lineage log ({count} records)"
            )
        for _seq, record in store.data.lineage_records_from(self.cursor):
            self.graph.add_raw(record)
        # Sequences tombstoned by shard migration yield nothing but still
        # count: the cursor lands on the log head, not the last record.
        self.cursor = count

    # -- live application (hot path) ----------------------------------------

    def on_lineage(self, seq: int, record: Dict[str, Any]) -> None:
        """Fold one durable lineage append (idempotent re-delivery)."""
        if seq < self.cursor:
            return
        if seq > self.cursor:
            raise StoreError(
                f"provenance view missed lineage records: got seq {seq}, "
                f"expected {self.cursor}"
            )
        self.graph.add_raw(record)
        self.cursor = seq + 1

    def resync(self, store) -> None:
        """Re-base on the durable log after out-of-band lineage writes.

        Shard migration copies lineage records into (and tombstones them
        out of) the log in bulk transactions that bypass
        ``append_lineage``'s subscription; the migrator calls this so the
        incremental graph and cursor describe the log again."""
        self.graph = ProvenanceGraph.from_records(
            store.data.lineage_records())
        self.cursor = store.data.lineage_count()

    def in_sync(self, store) -> bool:
        """True when the cursor matches the durable lineage count."""
        return self.cursor == store.data.lineage_count()

    # -- durability ----------------------------------------------------------

    def checkpoint(self, store=None) -> None:
        """Persist graph + cursor in one transaction.

        The ``prov.checkpoint`` fault point fires before the
        transaction: an injected crash loses nothing (the previous
        checkpoint plus the lineage suffix reconstructs the graph).
        """
        store = store if store is not None else self._store
        if store is None:
            raise StoreError("provenance view is not bound to a store")
        fire("prov.checkpoint", cursor=self.cursor)
        with store.kv.transaction() as txn:
            txn.put(CHECKPOINT_KEY, {
                "cursor": self.cursor,
                "state": self.graph.dump(),
            })

    # -- reads ---------------------------------------------------------------

    def rebuilt(self, store=None) -> ProvenanceGraph:
        """A from-scratch rebuild off the durable log (the oracle)."""
        store = store if store is not None else self._store
        if store is None:
            raise StoreError("provenance view is not bound to a store")
        return ProvenanceGraph.from_records(store.data.lineage_records())


def live_graph(store) -> Optional[ProvenanceGraph]:
    """The hub's in-sync provenance graph, or ``None`` to force a rescan.

    Mirrors ``queries._live_views``: the incremental graph answers only
    when it is attached *and* caught up with the durable lineage log;
    otherwise the caller falls back to :meth:`ProvenanceView.rebuilt`
    semantics (build from the records directly).
    """
    hub = getattr(store, "observability", None)
    view = getattr(hub, "provenance", None)
    if view is None or not view.in_sync(store):
        return None
    return view.graph


def provenance_graph(store) -> ProvenanceGraph:
    """The store's provenance graph: live view if in sync, else rebuilt."""
    graph = live_graph(store)
    if graph is not None:
        return graph
    return ProvenanceGraph.from_records(store.data.lineage_records())
