"""Smart re-execution: invalidate the downstream subgraph, replay the rest.

The paper's closing claim — "this makes it possible for the system to
recompute processes as data inputs or algorithms change" — becomes an
operator verb here: :func:`execute_rerun` launches a fresh instance of
the original template in which only the *invalidated* downstream
subgraph actually re-executes; every untouched ancestor is replayed from
the store's content-keyed memo cache (zero cost, virtual node
``"memo"``), and the rerun itself is recorded as new provenance linked
to the original run (``rerun/<new id>`` in the data space).

Invalidation is computed on the provenance graph:

* ``changed_inputs`` — the named launch parameters map to whiteboard
  datasets (``<iid>/wb:<name>``); everything transitively derived from
  them is stale;
* ``task_ids`` — the named task paths' outputs seed the stale set (the
  tasks themselves re-run, plus everything downstream).

Stale tasks' memo entries are deleted up front, so the set of re-executed
tasks equals the predicted invalidated subgraph exactly — which is what
:func:`rerun_report` verifies from the new instance's durable event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from ..errors import (
    InvalidStateError,
    MigratedInstanceError,
    StoreError,
    UnknownInstanceError,
)
from .graph import ProvenanceGraph
from .view import provenance_graph


def require_instance(store, instance_id: str) -> Dict[str, Any]:
    """The instance's durable meta, or a *typed* error — never silence.

    Unknown ids raise :class:`UnknownInstanceError`; ids whose local copy
    was tombstoned by a committed shard migration raise
    :class:`MigratedInstanceError` carrying the forwarding target, so a
    plane-level caller can chase it like the console does.
    """
    meta = store.instances.meta(instance_id)
    if meta is not None:
        return meta
    forward = store.configuration.setting(f"forward/{instance_id}")
    if isinstance(forward, dict) and forward.get("to"):
        raise MigratedInstanceError(
            f"instance {instance_id!r} migrated to {forward['to']!r}",
            forwarded_to=forward["to"],
        )
    raise UnknownInstanceError(
        f"no provenance: unknown instance {instance_id!r}"
    )


@dataclass
class RerunPlan:
    """The minimal invalidated subgraph for one rerun request."""

    original_id: str
    template_name: str
    inputs: Dict[str, Any]
    changed_inputs: Dict[str, Any] = field(default_factory=dict)
    task_ids: List[str] = field(default_factory=list)
    #: datasets transitively invalidated by the change.
    invalidated: List[str] = field(default_factory=list)
    #: original-run task paths that must re-execute.
    stale_tasks: List[str] = field(default_factory=list)
    #: original-run task paths eligible for memo replay.
    memo_tasks: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Codec-safe summary (recorded as the rerun's run record)."""
        return {
            "original_id": self.original_id,
            "template_name": self.template_name,
            "changed_inputs": sorted(self.changed_inputs),
            "task_ids": list(self.task_ids),
            "invalidated": list(self.invalidated),
            "stale_tasks": list(self.stale_tasks),
            "memo_tasks": list(self.memo_tasks),
        }


@dataclass
class RerunHandle:
    """A launched rerun: the new instance id plus its plan."""

    new_instance_id: str
    plan: RerunPlan


def _launch_inputs(store, instance_id: str) -> Dict[str, Any]:
    """The original launch's template name and inputs, from the log."""
    for event in store.instances.events(instance_id):
        if event["type"] != "instance_created":
            break
        return {
            "template_name": event["template_name"],
            "inputs": dict(event["inputs"]),
        }
    raise StoreError(
        f"instance {instance_id!r} has no instance_created event"
    )


def plan_rerun(store, instance_id: str,
               changed_inputs: Optional[Dict[str, Any]] = None,
               task_ids: Optional[Iterable[str]] = None,
               graph: Optional[ProvenanceGraph] = None) -> RerunPlan:
    """Compute the minimal invalidated subgraph for a rerun request."""
    require_instance(store, instance_id)
    if not changed_inputs and not task_ids:
        raise InvalidStateError(
            "rerun needs changed_inputs and/or task_ids — an unchanged "
            "rerun would replay everything from the memo cache"
        )
    graph = graph if graph is not None else provenance_graph(store)
    launch = _launch_inputs(store, instance_id)
    changed_inputs = dict(changed_inputs or {})
    task_ids = sorted(task_ids or ())
    seeds: List[str] = [
        f"{instance_id}/wb:{name}" for name in sorted(changed_inputs)
    ]
    invalidated: set = set()
    for task in task_ids:
        record = graph.activities.get((instance_id, task))
        if record is None:
            raise StoreError(
                f"no provenance recorded for task {task!r} of "
                f"{instance_id!r}"
            )
        # The forced task's own outputs are stale, and so is everything
        # derived from them.
        invalidated.update(record.outputs)
        seeds.extend(record.outputs)
    for seed in seeds:
        invalidated.update(graph.lineage.descendants(seed))
    stale_tasks = sorted({
        record.task
        for record in graph.run_records(instance_id)
        if invalidated.intersection(record.outputs)
    })
    memo_tasks = sorted(
        record.task
        for record in graph.run_records(instance_id)
        if record.task not in stale_tasks
    )
    return RerunPlan(
        original_id=instance_id,
        template_name=launch["template_name"],
        inputs=launch["inputs"],
        changed_inputs=changed_inputs,
        task_ids=list(task_ids),
        invalidated=sorted(invalidated),
        stale_tasks=stale_tasks,
        memo_tasks=memo_tasks,
    )


def execute_rerun(server, instance_id: str,
                  changed_inputs: Optional[Dict[str, Any]] = None,
                  task_ids: Optional[Iterable[str]] = None,
                  request_key: Optional[str] = None) -> RerunHandle:
    """Plan and launch a smart rerun; returns the handle.

    Memoization is enabled on the server (persisted, like the lease
    policy), stale tasks' cache entries are invalidated, and the new
    instance launches with the original inputs overlaid by
    ``changed_inputs``. The caller drives the environment to completion
    exactly as for any launch; :func:`rerun_report` then audits the
    memo-vs-executed split from the durable log.
    """
    store = server.store
    plan = plan_rerun(store, instance_id,
                      changed_inputs=changed_inputs, task_ids=task_ids,
                      graph=provenance_graph(store))
    if not server.memoize:
        server.enable_memoization()
    graph = provenance_graph(store)
    for task in plan.stale_tasks:
        record = graph.activities.get((instance_id, task))
        if record is not None and record.memo_key:
            store.data.memo_delete(record.memo_key)
    inputs = dict(plan.inputs)
    inputs.update(plan.changed_inputs)
    new_id = server.launch(plan.template_name, inputs,
                           request_key=request_key)
    summary = plan.to_dict()
    summary["rerun_id"] = new_id
    store.data.record_run(f"rerun/{new_id}", summary)
    return RerunHandle(new_instance_id=new_id, plan=plan)


def rerun_report(store, new_instance_id: str) -> Dict[str, Any]:
    """Audit a finished rerun from its durable event log.

    ``replayed`` are task paths completed from the memo cache (virtual
    node ``"memo"``), ``executed`` those dispatched to real nodes. The
    recorded plan rides along so callers can verify *executed == the
    predicted stale set* — the acceptance bar for minimality.
    """
    require_instance(store, new_instance_id)
    replayed: set = set()
    executed: set = set()
    for event in store.instances.events(new_instance_id):
        if event["type"] != "task_dispatched":
            continue
        path = event.get("path", "")
        if path.endswith("#comp"):
            continue
        if event.get("node") == "memo":
            replayed.add(path)
        else:
            executed.add(path)
    record = store.data.run(f"rerun/{new_instance_id}") or {}
    return {
        "rerun_id": new_instance_id,
        "original_id": record.get("original_id", ""),
        "replayed": sorted(replayed),
        "executed": sorted(executed - replayed),
        "memo_hits": len(replayed),
        "memo_misses": len(executed - replayed),
        "plan": record,
    }
