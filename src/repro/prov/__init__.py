"""Provenance: the lineage log promoted to a queryable graph.

The store has recorded a :class:`~repro.store.lineage.LineageRecord` for
every completed task since the first PR; this package turns that durable
stream into the operator-facing surface the paper promises — "all
dependencies are persistently recorded":

* :mod:`repro.prov.graph` — :class:`ProvenanceGraph`: ancestry,
  descendants, derivation paths, run diffs, and W3C PROV-JSON
  import/export (plus cross-shard document merging);
* :mod:`repro.prov.view` — :class:`ProvenanceView`: the graph
  materialized incrementally off the lineage log with a durable
  checkpoint, crash-equivalent to a from-scratch rebuild;
* :mod:`repro.prov.rerun` — smart re-execution: compute the minimal
  invalidated subgraph for changed inputs or forced task reruns, replay
  everything else from the content-keyed memo cache.

See ``docs/provenance.md`` for the operator runbook.
"""

from .graph import (
    PROV_PREFIX,
    PROV_URI,
    ProvenanceGraph,
    merge_prov_documents,
    relative_dataset,
)
from .rerun import (
    RerunHandle,
    RerunPlan,
    execute_rerun,
    plan_rerun,
    rerun_report,
    require_instance,
)
from .view import (
    CHECKPOINT_KEY,
    ProvenanceView,
    live_graph,
    provenance_graph,
)

__all__ = [
    "PROV_PREFIX",
    "PROV_URI",
    "ProvenanceGraph",
    "merge_prov_documents",
    "relative_dataset",
    "RerunHandle",
    "RerunPlan",
    "execute_rerun",
    "plan_rerun",
    "rerun_report",
    "require_instance",
    "CHECKPOINT_KEY",
    "ProvenanceView",
    "live_graph",
    "provenance_graph",
]
