"""Program Execution Client: BioOpera's per-node agent.

"The PEC is a small software component present at each node responsible for
running application programs on behalf of the BioOpera server... This
client also performs additional activities like monitoring the load at the
node and reporting failures to the BioOpera server" (paper, Section 3.2).

In the simulation the PEC:

* accepts dispatched jobs, runs their program (producing outputs and a CPU
  cost), and occupies the node for the corresponding simulated duration;
* reports completion/failure back through the network (reports sent during
  an outage are lost — the paper's "TEUs failed to report" case);
* watches the node's external load through an
  :class:`~repro.core.monitor.adaptive.AdaptiveMonitor` and notifies the
  server only of significant changes.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, Optional

from ..core.engine.dispatcher import JobRequest
from ..core.engine.library import ProgramContext
from ..core.monitor.adaptive import AdaptiveMonitor, MonitorConfig
from ..errors import ActivityFailure
from ..faults.points import fire
from .network import Network, SERVER
from .node import SimNode


class PEC:
    """One Program Execution Client, co-located with its node."""

    #: report retransmission schedule: a report that cannot be sent (network
    #: outage) is retried with capped exponential backoff plus seeded
    #: jitter, then dropped — short glitches recover quickly, long outages
    #: lose results (the paper's "TEUs failed to report" case) without the
    #: whole cluster retrying in lock-step. Retry ``k`` (0-based) waits
    #: ``min(RETRY_CAP, RETRY_BASE * 2**k) * (1 + U(0, RETRY_JITTER))``.
    REPORT_RETRIES = 3
    RETRY_BASE = 60.0
    RETRY_CAP = 960.0
    RETRY_JITTER = 0.25

    def __init__(self, node: SimNode, network: Network, cluster,
                 monitor_config: Optional[MonitorConfig] = None,
                 report_retries: Optional[int] = None,
                 retry_base: Optional[float] = None,
                 retry_cap: Optional[float] = None,
                 retry_jitter: Optional[float] = None):
        self.node = node
        self.network = network
        self.cluster = cluster  # SimulatedCluster (owner)
        self.monitor = AdaptiveMonitor(monitor_config)
        self.report_retries = (self.REPORT_RETRIES if report_retries is None
                               else report_retries)
        self.retry_base = self.RETRY_BASE if retry_base is None else retry_base
        self.retry_cap = self.RETRY_CAP if retry_cap is None else retry_cap
        self.retry_jitter = (self.RETRY_JITTER if retry_jitter is None
                             else retry_jitter)
        self.jobs_run = 0
        self.jobs_failed = 0
        self.reports_lost = 0
        #: job ids whose report is waiting for a retransmission slot; the
        #: server must not treat these as lost when the node reconnects.
        self.pending_reports: set = set()
        #: highest server epoch seen on any dispatch; lower-epoch dispatches
        #: come from a deposed server and are rejected (fencing).
        self.highest_epoch_seen = 0
        self.stale_dispatches_rejected = 0
        self.duplicate_dispatches_ignored = 0

    def retry_delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jitter included."""
        base = min(self.retry_cap, self.retry_base * (2.0 ** attempt))
        jitter = self.cluster.rng("pec-retry").random()
        return base * (1.0 + self.retry_jitter * jitter)

    def max_retry_span(self) -> float:
        """Worst-case seconds between first send attempt and giving up."""
        return sum(
            min(self.retry_cap, self.retry_base * (2.0 ** k))
            * (1.0 + self.retry_jitter)
            for k in range(self.report_retries)
        )

    def _send_report(self, fn, *args, label: str = "",
                     retries_left: Optional[int] = None,
                     job_id: str = "") -> None:
        if retries_left is None:
            retries_left = self.report_retries
        directive = fire("pec.report", label=label)
        if directive is not None:
            if directive.kind == "delay":
                # The report dawdles in a queue somewhere; same retry
                # budget once it actually moves.
                if job_id:
                    self.pending_reports.add(job_id)

                def later():
                    self._send_report(fn, *args, label=label,
                                      retries_left=retries_left,
                                      job_id=job_id)

                self.cluster.kernel.schedule(
                    directive.delay, later, label=f"delayed:{label}"
                )
                return
            if directive.kind == "duplicate":
                # An extra copy arrives too; the server's staleness checks
                # must shrug the duplicate off.
                self.network.send(fn, *args, label=f"{label}#dup",
                                  src=self.node.name, dst=SERVER)
            elif directive.kind == "drop":
                self._report_undelivered(fn, args, label, retries_left,
                                         job_id)
                return

        def undelivered():
            self._report_undelivered(fn, args, label, retries_left, job_id)

        # Every failure to reach the server — a send-time cut (False
        # return), a mid-flight kill, sampled loss — feeds the same
        # retransmission/backoff path through ``on_dropped``.
        sent = self.network.send(fn, *args, label=label,
                                 src=self.node.name, dst=SERVER,
                                 on_dropped=undelivered)
        if sent:
            self.pending_reports.discard(job_id)
        else:
            undelivered()

    def _report_undelivered(self, fn, args, label: str, retries_left: int,
                            job_id: str) -> None:
        """A report did not reach the server; retry on the backoff
        schedule or account it lost."""
        if retries_left <= 0 or not self.node.up:
            self.reports_lost += 1
            self.pending_reports.discard(job_id)
            obs = getattr(self.cluster.server, "obs", None)
            if obs is not None:
                obs.metrics.inc("pec_reports_lost")
            return
        if job_id:
            self.pending_reports.add(job_id)

        def retry():
            self._send_report(fn, *args, label=label,
                              retries_left=retries_left - 1, job_id=job_id)

        attempt = self.report_retries - retries_left
        self.cluster.kernel.schedule(
            self.retry_delay(attempt), retry, label=f"retry:{label}"
        )

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------

    def receive_job(self, job: JobRequest) -> None:
        """A dispatch message arrived from the server."""
        if not self.node.up:
            # The dispatch raced a crash; the failure detector will tell
            # the server this node is gone.
            return
        server = self.cluster.server
        obs = getattr(server, "obs", None)
        if obs is not None:
            obs.metrics.inc("pec_jobs_received")
        if job.epoch and job.epoch < self.highest_epoch_seen:
            # Fencing: a dispatch issued by a deposed server (stale epoch)
            # must not run — the new server owns this task occurrence.
            self.stale_dispatches_rejected += 1
            if obs is not None:
                obs.metrics.inc("pec_stale_dispatches_rejected")
            return
        if job.epoch:
            self.highest_epoch_seen = max(self.highest_epoch_seen, job.epoch)
        if self.node.has_job(job.job_id) or job.job_id in self.pending_reports:
            # A duplicated delivery of a dispatch already running here (or
            # already finished and waiting to report) must not double-run.
            self.duplicate_dispatches_ignored += 1
            if obs is not None:
                obs.metrics.inc("pec_duplicate_dispatches")
            return
        ctx = ProgramContext(
            instance_id=job.instance_id,
            task_path=job.task_path,
            attempt=job.attempt,
            node=self.node.name,
            seed=server.seed,
        )
        try:
            fire("pec.program", job=job.job_id, node=self.node.name)
            result = server.registry.run(job.program, job.inputs, ctx)
        except ActivityFailure as failure:
            self._report_failure(job, failure.reason, failure.detail)
            return
        except Exception:  # program bug
            self._report_failure(
                job, "program-error", traceback.format_exc(limit=3)
            )
            return
        # Occupy the node for the work the program costed out (perturbed by
        # mean-1 lognormal noise — real executions never hit the estimate
        # exactly). The payload carries everything needed to report on
        # completion.
        work = max(1e-6, result.cost) * self.cluster.execution_noise_factor()
        self.node.start_job(
            job.job_id,
            work=work,
            payload={"job": job, "outputs": result.outputs},
        )
        self.jobs_run += 1

    def job_finished(self, job_id: str, payload: Dict[str, Any],
                     cpu_consumed: float) -> None:
        """Node callback: the simulated work is done; report upstream."""
        job: JobRequest = payload["job"]
        # Stamp the node-local finish time before the report travels (the
        # span's report_delay is exactly the gap this stamp opens).
        self.cluster.note_job_finished(job_id)
        if (self.cluster.job_failure_rate > 0.0
                and self.cluster.rng("io-errors").random()
                < self.cluster.job_failure_rate):
            self._report_failure(job, "io-error", "file system instability")
            return
        if self.cluster.storage_full:
            # Results cannot be written to shared storage (Figure 5 ev. 5).
            self._report_failure(job, "disk-full",
                                 "shared storage out of space")
            return
        self._send_report(
            self.cluster.deliver_completion, job, payload["outputs"],
            cpu_consumed, self.node.name,
            label=f"done:{job_id}", job_id=job_id,
        )

    def _report_failure(self, job: JobRequest, reason: str,
                        detail: str) -> None:
        self.jobs_failed += 1
        self._send_report(
            self.cluster.deliver_failure, job, reason, self.node.name,
            detail, label=f"fail:{job.job_id}", job_id=job.job_id,
        )

    # ------------------------------------------------------------------
    # Load monitoring
    # ------------------------------------------------------------------

    def load_changed(self) -> None:
        """Called when the node's external load changes; reports upstream
        only if the adaptive monitor finds the change significant."""
        capacity = max(1, self.node.cpus)
        _interval, report = self.monitor.observe(
            self.node.external_load / capacity
        )
        if report is not None:
            self._send_load_report(report * capacity)

    def _send_load_report(self, load: float, retries_left: int = 2) -> None:
        """Send a load report; a dropped send retries once or twice with
        the node's *current* load (stale samples are worthless)."""
        def undelivered():
            if retries_left > 0 and self.node.up:
                self.cluster.kernel.schedule(
                    self.retry_delay(0),
                    lambda: self._send_load_report(
                        self.node.external_load, retries_left - 1),
                    label=f"retry-load:{self.node.name}",
                )

        sent = self.network.send(
            self.cluster.deliver_load_report, self.node.name, load,
            label=f"load:{self.node.name}",
            src=self.node.name, dst=SERVER, on_dropped=undelivered,
        )
        if not sent:
            undelivered()
