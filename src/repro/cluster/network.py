"""LAN model: delivery latency, jitter, and outages.

The paper's clusters hang off "an ordinary Ethernet 10 Mbit network" that
failed outright more than once (Figure 5 event 3, Figure 6's two planned
outages). Messages here are kernel callbacks delivered after a sampled
latency; during an outage messages are **dropped** — whatever a PEC tried
to report is simply lost, which is how two TEUs "failed to report their
results to the BioOpera server" in the paper's run.
"""

from __future__ import annotations

from typing import Any, Callable

from .simulation import SimKernel


class Network:
    """Best-effort message fabric on the simulation kernel."""

    def __init__(self, kernel: SimKernel, base_latency: float = 0.05,
                 jitter: float = 0.02):
        self.kernel = kernel
        self.base_latency = base_latency
        self.jitter = jitter
        self.outage = False
        self._rng = kernel.rng("network")
        self.messages_sent = 0
        self.messages_dropped = 0

    def latency(self) -> float:
        return self.base_latency + self._rng.random() * self.jitter

    def send(self, fn: Callable, *args: Any, label: str = "") -> bool:
        """Deliver ``fn(*args)`` after network latency.

        Returns False (and drops the message) during an outage.
        """
        self.messages_sent += 1
        if self.outage:
            self.messages_dropped += 1
            return False
        self.kernel.schedule(self.latency(), fn, *args,
                             label=label or getattr(fn, "__name__", "msg"))
        return True

    def start_outage(self) -> None:
        self.outage = True

    def end_outage(self) -> None:
        self.outage = False
