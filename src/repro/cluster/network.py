"""LAN model: a per-link fault fabric with latency, partitions, and loss.

The paper's clusters hang off "an ordinary Ethernet 10 Mbit network" that
failed outright more than once (Figure 5 event 3, Figure 6's two planned
outages). Messages here are kernel callbacks delivered after a sampled
latency between two named **endpoints** — the server (:data:`SERVER`), the
standby monitor (:data:`STANDBY`), and each node by name.

Failure modes the fabric can inject, per directed link:

* **partitions** — directed cuts between arbitrary endpoint sets
  (:meth:`Network.partition`); a symmetric cut models a switch failure, an
  asymmetric one the half-open links real Ethernet produces;
* **asymmetric loss** — per-link drop probability (:meth:`Network.set_loss`);
* **duplication** — a message occasionally arrives twice
  (:meth:`Network.set_duplication`);
* **reordering** — a message occasionally dawdles long enough to arrive
  after its successors (:meth:`Network.set_reordering`);
* **outages** — the legacy whole-fabric cut (:meth:`Network.start_outage`).

Link state is re-checked **at delivery time**, so a cut that starts while
a message is in flight kills it (``inflight_killed``) instead of letting
it tunnel through the partition. A send that is dropped — at send time or
in flight — invokes its ``on_dropped`` callback so callers can feed the
retransmission path; a ``False`` return only covers send-time drops.

Every randomized feature draws from its own seeded kernel stream and is
short-circuited when disabled, so enabling none of them leaves existing
seeded runs bit-identical.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..faults.points import fire
from .simulation import SimKernel

#: endpoint name of the BioOpera server.
SERVER = "server"
#: endpoint name of the hot-standby monitor.
STANDBY = "standby"
#: wildcard endpoint matching any source or destination.
ANY = "*"


class Network:
    """Best-effort message fabric on the simulation kernel."""

    def __init__(self, kernel: SimKernel, base_latency: float = 0.05,
                 jitter: float = 0.02, rng_namespace: str = ""):
        self.kernel = kernel
        self.base_latency = base_latency
        self.jitter = jitter
        self.outage = False
        #: prefix for this fabric's kernel RNG streams. Two fabrics on
        #: one kernel (a sharded control plane) must not share streams:
        #: one shard's traffic would perturb another shard's latency
        #: draws, and a crashed shard could change a healthy shard's
        #: event times. The default "" keeps single-fabric runs
        #: bit-identical to their pre-namespace seeds.
        self.rng_namespace = rng_namespace
        self._rng = kernel.rng(rng_namespace + "network")
        #: partition id -> list of (src set, dst set) directed cut rules.
        self._partitions: Dict[int, List[Tuple[FrozenSet[str],
                                               FrozenSet[str]]]] = {}
        self._partition_ids = itertools.count(1)
        #: (src, dst) -> drop probability; endpoints may be :data:`ANY`.
        self._loss: Dict[Tuple[str, str], float] = {}
        self.duplicate_rate = 0.0
        self.reorder_rate = 0.0
        #: extra in-flight seconds a reordered message dawdles (uniform).
        self.reorder_extra = 1.0
        #: optional MetricsRegistry mirror for the counters below.
        self.metrics = None
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        #: messages that were in flight when their link was cut.
        self.inflight_killed = 0

    # ------------------------------------------------------------------
    # Link state
    # ------------------------------------------------------------------

    def partition(self, sources, destinations, symmetric: bool = True) -> int:
        """Cut every (src, dst) link in ``sources × destinations``.

        Returns a partition id for :meth:`heal`. ``symmetric=True`` also
        cuts the reverse direction; endpoint sets may contain :data:`ANY`.
        """
        srcs, dsts = frozenset(sources), frozenset(destinations)
        rules = [(srcs, dsts)]
        if symmetric:
            rules.append((dsts, srcs))
        pid = next(self._partition_ids)
        self._partitions[pid] = rules
        return pid

    def heal(self, partition_id: int) -> None:
        self._partitions.pop(partition_id, None)

    def heal_all(self) -> None:
        self._partitions.clear()

    def is_cut(self, src: str, dst: str) -> bool:
        """Is the directed link ``src -> dst`` unusable right now?"""
        if self.outage:
            return True
        for rules in self._partitions.values():
            for srcs, dsts in rules:
                if ((ANY in srcs or src in srcs)
                        and (ANY in dsts or dst in dsts)):
                    return True
        return False

    def set_loss(self, src: str, dst: str, probability: float) -> None:
        """Set the directed link's drop probability (0 removes the rule)."""
        if probability > 0.0:
            self._loss[(src, dst)] = min(1.0, probability)
        else:
            self._loss.pop((src, dst), None)

    def loss_probability(self, src: str, dst: str) -> float:
        if not self._loss:
            return 0.0
        return max(
            self._loss.get(pair, 0.0)
            for pair in ((src, dst), (ANY, dst), (src, ANY), (ANY, ANY))
        )

    def set_duplication(self, rate: float) -> None:
        self.duplicate_rate = max(0.0, min(1.0, rate))

    def set_reordering(self, rate: float,
                       extra: Optional[float] = None) -> None:
        self.reorder_rate = max(0.0, min(1.0, rate))
        if extra is not None:
            self.reorder_extra = max(0.0, extra)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def latency(self) -> float:
        return self.base_latency + self._rng.random() * self.jitter

    def _count(self, counter: str, metric: str) -> None:
        setattr(self, counter, getattr(self, counter) + 1)
        if self.metrics is not None:
            self.metrics.inc(metric)

    def send(self, fn: Callable, *args: Any, label: str = "",
             src: str = SERVER, dst: str = SERVER,
             on_dropped: Optional[Callable[[], None]] = None) -> bool:
        """Deliver ``fn(*args)`` after network latency on ``src -> dst``.

        Returns False (and drops the message) when the link is unusable at
        send time. A message the fabric loses *after* the send — a cut
        that starts mid-flight, sampled loss, an injected drop — still
        returns True; ``on_dropped`` is the only signal for those, so
        callers needing reliability must pass it.
        """
        self._count("messages_sent", "net_messages_sent")
        directive = fire("network.deliver", label=label, src=src, dst=dst)
        if self.is_cut(src, dst):
            self._count("messages_dropped", "net_messages_dropped")
            return False
        if self._loss and (
                self.kernel.rng(self.rng_namespace + "network-loss").random()
                < self.loss_probability(src, dst)):
            self._count("messages_dropped", "net_messages_dropped")
            return False
        delay = self.latency()
        if directive is not None and directive.kind == "delay":
            delay += directive.delay
        if directive is not None and directive.kind == "duplicate" or (
                self.duplicate_rate > 0.0
                and self.kernel.rng(self.rng_namespace + "network-dup")
                .random() < self.duplicate_rate):
            self._count("messages_duplicated", "net_messages_duplicated")
            self.kernel.schedule(
                self.latency(), self._deliver, fn, args, src, dst,
                on_dropped, False, label=f"{label or 'msg'}#dup",
            )
        reorder_rng = self.kernel.rng(self.rng_namespace + "network-reorder")
        if (self.reorder_rate > 0.0
                and reorder_rng.random() < self.reorder_rate):
            self._count("messages_reordered", "net_messages_reordered")
            delay += reorder_rng.random() * self.reorder_extra
        forced_drop = directive is not None and directive.kind == "drop"
        self.kernel.schedule(
            delay, self._deliver, fn, args, src, dst, on_dropped,
            forced_drop, label=label or getattr(fn, "__name__", "msg"),
        )
        return True

    def _deliver(self, fn: Callable, args: tuple, src: str, dst: str,
                 on_dropped: Optional[Callable[[], None]],
                 forced_drop: bool) -> None:
        # Link state is re-checked at delivery time: a message in flight
        # when the cut starts dies inside the fabric.
        if forced_drop or self.is_cut(src, dst):
            self._count("messages_dropped", "net_messages_dropped")
            self._count("inflight_killed", "net_inflight_killed")
            if on_dropped is not None:
                on_dropped()
            return
        fn(*args)

    # ------------------------------------------------------------------
    # Whole-fabric outage (legacy scenario API)
    # ------------------------------------------------------------------

    def start_outage(self) -> None:
        self.outage = True

    def end_outage(self) -> None:
        self.outage = False

    def health(self) -> Dict[str, int]:
        """Counter snapshot for the operator console."""
        return {
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_reordered": self.messages_reordered,
            "inflight_killed": self.inflight_killed,
            "partitions_active": len(self._partitions),
        }
