"""Availability/utilization traces — the raw data of Figures 5 and 6.

The trace records ``(time, available_cpus, busy_cpus)`` at every change
point in the simulated cluster (event-driven, so it is exact, not
sampled). :meth:`ClusterTrace.series` resamples the piecewise-constant
signal onto a regular grid for plotting/reporting, and
:meth:`ClusterTrace.integrals` computes CPU-time areas (the basis for
utilization percentages in the experiment write-ups).
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class ClusterTrace:
    """Event-driven recorder of cluster availability and utilization."""

    def __init__(self, cluster):
        self.cluster = cluster
        #: change points: (time, available, busy)
        self.samples: List[Tuple[float, float, float]] = []
        #: labelled scenario events for figure annotations: (time, label)
        self.annotations: List[Tuple[float, str]] = []

    def record(self, force: bool = False) -> None:
        t = self.cluster.kernel.now
        available = float(self.cluster.available_cpus())
        busy = float(self.cluster.busy_cpus())
        if self.samples and not force:
            last_t, last_a, last_b = self.samples[-1]
            if last_a == available and abs(last_b - busy) < 1e-9:
                return
            if last_t == t:
                self.samples[-1] = (t, available, busy)
                return
        self.samples.append((t, available, busy))

    def annotate(self, label: str, time: Optional[float] = None) -> None:
        self.annotations.append(
            (self.cluster.kernel.now if time is None else time, label)
        )

    # ------------------------------------------------------------------
    # Post-processing
    # ------------------------------------------------------------------

    def series(self, step: float,
               until: Optional[float] = None
               ) -> List[Tuple[float, float, float]]:
        """Resample to a regular grid of period ``step`` (zero-order hold)."""
        if not self.samples:
            return []
        end = until if until is not None else self.samples[-1][0]
        grid: List[Tuple[float, float, float]] = []
        index = 0
        current = (0.0, 0.0)
        t = 0.0
        while t <= end + 1e-9:
            while (index < len(self.samples)
                   and self.samples[index][0] <= t + 1e-9):
                current = self.samples[index][1:]
                index += 1
            grid.append((t, current[0], current[1]))
            t += step
        return grid

    def integrals(self, until: Optional[float] = None) -> Tuple[float, float]:
        """(available, busy) CPU-seconds areas under the trace."""
        if not self.samples:
            return 0.0, 0.0
        end = until if until is not None else self.samples[-1][0]
        area_available = 0.0
        area_busy = 0.0
        for index, (t, available, busy) in enumerate(self.samples):
            t_next = (self.samples[index + 1][0]
                      if index + 1 < len(self.samples) else end)
            span = max(0.0, min(t_next, end) - t)
            area_available += available * span
            area_busy += busy * span
        return area_available, area_busy

    def utilization_fraction(self, until: Optional[float] = None) -> float:
        available, busy = self.integrals(until)
        return busy / available if available > 0 else 0.0

    def max_available(self) -> float:
        return max((a for _t, a, _b in self.samples), default=0.0)

    def max_busy(self) -> float:
        return max((b for _t, _a, b in self.samples), default=0.0)

    def daily_series(self) -> List[Tuple[float, float, float]]:
        return self.series(step=86400.0)
