"""SimulatedCluster: the discrete-event execution environment.

This is the reproduction's stand-in for the paper's physical clusters. It
implements the engine's :class:`~repro.core.engine.environment.\
ExecutionEnvironment` interface on top of the simulation kernel:

* dispatch messages reach per-node PECs after server overhead plus network
  latency ("each alignment requires ... a few seconds to schedule,
  distribute, initiate");
* jobs occupy node CPUs for their costed work, slowed by external load
  (nice mode) and heterogeneous node speeds;
* failures are first-class: node crashes (with a failure-detector delay
  before the server notices), network outages (reports get lost), shared
  storage filling up, server crashes with store-based recovery, and
  mid-run hardware upgrades;
* an availability/utilization trace is recorded at every change point —
  the raw data behind Figures 5 and 6.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..core.engine.dispatcher import JobRequest
from ..core.engine.environment import ExecutionEnvironment
from ..core.engine.server import BioOperaServer
from ..core.monitor.adaptive import MonitorConfig
from ..errors import ClusterError
from .network import Network, SERVER
from .node import NodeSpec, SimNode
from .pec import PEC
from .simulation import SimKernel
from .trace import ClusterTrace


class SimulatedCluster(ExecutionEnvironment):
    """A cluster of simulated nodes driving a BioOpera server."""

    def __init__(
        self,
        kernel: SimKernel,
        specs: Sequence[NodeSpec],
        base_latency: float = 0.05,
        jitter: float = 0.02,
        dispatch_overhead: float = 2.0,
        detection_delay: float = 120.0,
        execution_noise: float = 0.15,
        monitor_config: Optional[MonitorConfig] = None,
        report_retries: Optional[int] = None,
        report_retry_base: Optional[float] = None,
        report_retry_cap: Optional[float] = None,
        report_retry_jitter: Optional[float] = None,
        rng_namespace: str = "",
    ):
        self.kernel = kernel
        #: prefix for every kernel RNG stream this cluster draws from.
        #: Sharded control planes run several clusters on one kernel;
        #: namespacing keeps one shard's draws from perturbing another
        #: shard's, so a crashed shard cannot change a healthy shard's
        #: event times. "" preserves existing single-cluster seeds.
        self.rng_namespace = rng_namespace
        self.network = Network(kernel, base_latency, jitter,
                               rng_namespace=rng_namespace)
        self.dispatch_overhead = dispatch_overhead
        self.detection_delay = detection_delay
        #: sigma of the mean-1 lognormal execution-time noise. Real runs
        #: never hit the costed time exactly (cache effects, I/O, paging);
        #: this variance is what makes coarse partitions suffer stragglers
        #: ("the CPU time for TEUs will always differ", paper Sec. 5.3).
        self.execution_noise = execution_noise
        self.server: Optional[BioOperaServer] = None
        self.storage_full = False
        #: probability a finishing job reports an I/O error instead of its
        #: result (the paper's "file system instability caused the rate of
        #: failed TEUs to increase slightly").
        self.job_failure_rate = 0.0
        self.nodes: Dict[str, SimNode] = {}
        self.pecs: Dict[str, PEC] = {}
        for spec in specs:
            node = SimNode(kernel, spec, self._node_job_done)
            self.nodes[spec.name] = node
            self.pecs[spec.name] = PEC(
                node, self.network, self, monitor_config,
                report_retries=report_retries,
                retry_base=report_retry_base,
                retry_cap=report_retry_cap,
                retry_jitter=report_retry_jitter,
            )
        self.trace = ClusterTrace(self)
        self._outage_detection = None
        #: partition id -> (node names, direction) for cluster-level cuts.
        self._partitions: Dict[int, tuple] = {}
        #: cancelled job ids whose dispatch message may still be in flight.
        self._cancelled_jobs: set = set()
        #: node-local finish times (job_id -> kernel time), consumed once
        #: by the tracing layer to compute per-span report delays.
        self._job_finish_times: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # ExecutionEnvironment interface
    # ------------------------------------------------------------------

    def attach(self, server: BioOperaServer) -> None:
        self.server = server
        server.clock = lambda: self.kernel.now
        obs = getattr(server, "obs", None)
        self.network.metrics = obs.metrics if obs is not None else None
        for node in self.nodes.values():
            if not server.awareness.has_node(node.name):
                server.register_node(
                    node.name, node.cpus, node.speed, node.spec.tags
                )
            if not node.up:
                server.awareness.node_down(node.name, self.kernel.now)

    def submit(self, job: JobRequest, node_name: str) -> None:
        if node_name not in self.nodes:
            raise ClusterError(f"no such node {node_name!r}")
        self.kernel.schedule(
            self.dispatch_overhead, self._send_job, job, node_name,
            label=f"dispatch:{job.job_id}",
        )

    def _send_job(self, job: JobRequest, node_name: str) -> None:
        delivered = self.network.send(
            self._deliver_job, job, node_name, label=f"job:{job.job_id}",
            src=SERVER, dst=node_name,
            on_dropped=lambda: self._note_dispatch_lost(job, node_name),
        )
        if not delivered:
            self._note_dispatch_lost(job, node_name)

    def _note_dispatch_lost(self, job: JobRequest, node_name: str) -> None:
        # Dispatch lost to a cut link — at send time or in flight. If the
        # cut outlives the failure detector the node-down path re-queues
        # the job; for shorter glitches this timeout reports the loss
        # directly (the server's staleness checks make a duplicate report
        # harmless).
        self.kernel.schedule(
            self.detection_delay, self._dispatch_lost, job, node_name,
            label=f"dispatch-lost:{job.job_id}",
        )

    def _dispatch_lost(self, job: JobRequest, node_name: str) -> None:
        if self.server is not None and self.server.up:
            self.server.on_job_failed(
                job.job_id, "network-outage", node_name,
                detail="dispatch message lost",
                epoch=job.epoch or None,
            )

    def _deliver_job(self, job: JobRequest, node_name: str) -> None:
        if job.job_id in self._cancelled_jobs:
            self._cancelled_jobs.discard(job.job_id)
            return
        self.pecs[node_name].receive_job(job)
        self.trace.record()

    def execution_noise_factor(self) -> float:
        """Sample a mean-1 lognormal work multiplier."""
        sigma = self.execution_noise
        if sigma <= 0:
            return 1.0
        rng = self.rng("execution-noise")
        return rng.lognormvariate(-sigma * sigma / 2.0, sigma)

    def rng(self, name: str):
        """This cluster's namespaced kernel RNG stream ``name``."""
        return self.kernel.rng(self.rng_namespace + name)

    def cancel(self, job_id: str) -> None:
        for node in self.nodes.values():
            if node.kill_job(job_id):
                self.trace.record()
                return
        # Not running anywhere yet: the dispatch message is still in
        # flight. Blacklist it so delivery drops it instead of starting a
        # zombie job.
        self._cancelled_jobs.add(job_id)

    def step(self) -> bool:
        return self.kernel.step()

    def schedule(self, delay: float, fn, *args, label: str = ""):
        """Engine-facing timer hook (lease expiries); returns a
        cancellable kernel event."""
        return self.kernel.schedule(delay, fn, *args, label=label)

    def job_alive(self, node_name: str, job_id: str) -> bool:
        """Lease renewal probe: is the job's holder reachable and still
        working on it (or waiting to retransmit its report)?"""
        node = self.nodes.get(node_name)
        if node is None or not node.up:
            return False
        if (self.network.is_cut(SERVER, node_name)
                or self.network.is_cut(node_name, SERVER)):
            return False
        return (node.has_job(job_id)
                or job_id in self.pecs[node_name].pending_reports)

    def schedule_probe(self, node_name: str, delay: float) -> None:
        """Probe a quarantined node after ``delay`` seconds. The probe
        succeeds only if it can actually reach a healthy node; while the
        network is out or the node is down it keeps rescheduling itself,
        so a quarantined node is only re-admitted once genuinely
        reachable."""
        def probe():
            server = self.server
            if server is None or not server.up:
                return  # quarantine state died with the server
            if (not self.nodes[node_name].up
                    or self.network.is_cut(SERVER, node_name)
                    or self.network.is_cut(node_name, SERVER)):
                self.kernel.schedule(delay, probe,
                                     label=f"probe:{node_name}")
                return
            server.on_probe_result(node_name, ok=True)

        self.kernel.schedule(delay, probe, label=f"probe:{node_name}")

    # ------------------------------------------------------------------
    # Upstream delivery (called via the network)
    # ------------------------------------------------------------------

    def deliver_completion(self, job: JobRequest, outputs: Dict[str, Any],
                           cost: float, node_name: str) -> None:
        self.trace.record()
        if self.server is not None and self.server.up:
            self.server.on_job_completed(job.job_id, outputs, cost,
                                         node_name, epoch=job.epoch or None)

    def deliver_failure(self, job: JobRequest, reason: str, node_name: str,
                        detail: str) -> None:
        self.trace.record()
        if self.server is not None and self.server.up:
            self.server.on_job_failed(job.job_id, reason, node_name,
                                      detail=detail,
                                      epoch=job.epoch or None)

    def deliver_load_report(self, node_name: str, load: float) -> None:
        if self.server is not None and self.server.up:
            self.server.on_load_report(node_name, load)

    def _node_job_done(self, node: SimNode, job_id: str,
                       payload: Dict[str, Any], cpu_consumed: float) -> None:
        self.pecs[node.name].job_finished(job_id, payload, cpu_consumed)
        self.trace.record()

    def note_job_finished(self, job_id: str) -> None:
        """PEC callback: stamp a job's node-local finish time."""
        self._job_finish_times[job_id] = self.kernel.now

    def job_finish_time(self, job_id: str) -> Optional[float]:
        """Consume (pop) a job's node-local finish stamp, if recorded."""
        return self._job_finish_times.pop(job_id, None)

    # ------------------------------------------------------------------
    # Failure & reconfiguration API (used by scenario scripts and tests)
    # ------------------------------------------------------------------

    def crash_node(self, name: str) -> List[str]:
        """Take a node down hard; lost jobs are detected after a delay."""
        lost = self.nodes[name].crash()
        self.trace.record()
        self.kernel.schedule(
            self.detection_delay, self._notify_node_down, name,
            label=f"detect-down:{name}",
        )
        return lost

    def _notify_node_down(self, name: str) -> None:
        if self.server is not None and self.server.up:
            if self.nodes[name].up:
                return  # recovered before detection fired
            self.server.on_node_down(name)

    def restore_node(self, name: str) -> None:
        node = self.nodes[name]
        node.restore()
        self.trace.record()
        self._announce_node_up(name)

    def _announce_node_up(self, name: str) -> None:
        """Send the node's (re)join announcement; a cut link retries until
        it gets through (or the node goes down again)."""
        def retry():
            if self.nodes[name].up:
                self._announce_node_up(name)

        def undelivered():
            self.kernel.schedule(self.detection_delay, retry,
                                 label=f"re-announce:{name}")

        sent = self.network.send(self._notify_node_up, name,
                                 label=f"node-up:{name}",
                                 src=name, dst=SERVER,
                                 on_dropped=undelivered)
        if not sent:
            undelivered()

    def _notify_node_up(self, name: str) -> None:
        if self.server is not None and self.server.up and self.nodes[name].up:
            alive = set(self.nodes[name].running_jobs())
            alive |= self.pecs[name].pending_reports
            self.server.on_node_up(name, running=alive)

    def upgrade_node(self, name: str, cpus: Optional[int] = None,
                     speed: Optional[float] = None) -> None:
        self.nodes[name].upgrade(cpus=cpus, speed=speed)
        self.trace.record()
        if self.server is not None and self.server.up:
            self.server.on_node_reconfigured(name, cpus=cpus, speed=speed)

    def set_external_load(self, name: str, load: float) -> None:
        self.nodes[name].set_external_load(load)
        self.pecs[name].load_changed()
        self.trace.record()

    def start_network_outage(self) -> None:
        self.network.start_outage()
        self.trace.record()
        self._outage_detection = self.kernel.schedule(
            self.detection_delay, self._notify_outage,
            label="detect-outage",
        )

    def _notify_outage(self) -> None:
        if not self.network.outage:
            return
        if self.server is not None and self.server.up:
            for name in sorted(self.nodes):
                self.server.on_node_down(name)

    def end_network_outage(self) -> None:
        self.network.end_outage()
        if self._outage_detection is not None:
            self._outage_detection.cancel()
            self._outage_detection = None
        self.trace.record()
        for name, node in sorted(self.nodes.items()):
            if node.up:
                self._notify_node_up(name)

    def start_partition(self, nodes: Optional[Sequence[str]] = None,
                        direction: str = "both") -> int:
        """Cut the links between the server and a node subset.

        ``direction`` is ``"both"`` (symmetric cut), ``"to-server"`` (node
        reports vanish, dispatches still arrive — the half-open link that
        produces zombie workers), or ``"to-nodes"`` (dispatches vanish,
        reports still arrive). Returns a partition id for
        :meth:`heal_partition`.
        """
        names = tuple(sorted(nodes if nodes is not None else self.nodes))
        if direction == "both":
            pid = self.network.partition({SERVER}, set(names),
                                         symmetric=True)
        elif direction == "to-server":
            pid = self.network.partition(set(names), {SERVER},
                                         symmetric=False)
        elif direction == "to-nodes":
            pid = self.network.partition({SERVER}, set(names),
                                         symmetric=False)
        else:
            raise ClusterError(f"unknown partition direction {direction!r}")
        self._partitions[pid] = (names, direction)
        self.trace.record()
        if direction in ("both", "to-server"):
            # The server stops hearing from these nodes; after the failure
            # detector's delay it declares them down. A "to-nodes" cut is
            # invisible to the detector (reports keep flowing) — only the
            # dispatch-lost timeouts and leases cover it.
            self.kernel.schedule(self.detection_delay,
                                 self._notify_partition, pid,
                                 label="detect-partition")
        return pid

    def _notify_partition(self, pid: int) -> None:
        entry = self._partitions.get(pid)
        if entry is None:
            return  # healed before detection fired
        names, _direction = entry
        if self.server is not None and self.server.up:
            for name in names:
                self.server.on_node_down(name)

    def heal_partition(self, pid: int) -> None:
        entry = self._partitions.pop(pid, None)
        if entry is None:
            return
        self.network.heal(pid)
        self.trace.record()
        names, direction = entry
        if direction in ("both", "to-server"):
            for name in names:
                if self.nodes[name].up:
                    self._announce_node_up(name)

    def heal_all_partitions(self) -> None:
        for pid in list(self._partitions):
            self.heal_partition(pid)

    def set_duplication(self, rate: float) -> None:
        self.network.set_duplication(rate)

    def set_reordering(self, rate: float, extra: Optional[float] = None
                       ) -> None:
        self.network.set_reordering(rate, extra)

    def set_link_loss(self, src: str, dst: str, probability: float) -> None:
        self.network.set_loss(src, dst, probability)

    def set_storage_full(self, full: bool) -> None:
        self.storage_full = full
        self.trace.record()

    def set_job_failure_rate(self, rate: float) -> None:
        self.job_failure_rate = max(0.0, min(1.0, rate))

    def crash_server(self) -> None:
        if self.server is None:
            raise ClusterError("no server attached")
        self.server.crash()
        self.trace.record()

    def recover_server(self, store=None) -> BioOperaServer:
        """Rebuild the server from its durable store and re-attach it.

        ``store`` overrides the store to recover from — the chaos harness
        passes ``old.store.simulate_crash()`` so records appended but never
        synced are lost, exactly as a real crash would lose them.
        """
        if self.server is None:
            raise ClusterError("no server attached")
        old = self.server
        # Lease and quarantine policy are NOT inherited from the dead
        # process's in-memory object: recover() re-derives both from the
        # durable store, which is the only state a shard-local recovery
        # (or a recovery on another host) can rely on.
        self.server = BioOperaServer.recover(
            store if store is not None else old.store,
            old.registry, environment=self,
            policy=old.dispatcher.policy, seed=old.seed,
        )
        # Cumulative counters survive the crash (they describe the run,
        # not the server process).
        for key, value in old.metrics.items():
            self.server.metrics[key] = self.server.metrics.get(key, 0) + value
        self.trace.record()
        return self.server

    # ------------------------------------------------------------------
    # Metrics & run helpers
    # ------------------------------------------------------------------

    def available_cpus(self) -> int:
        if self.network.outage:
            return 0
        return sum(
            node.available_cpus() for name, node in self.nodes.items()
            if not (self.network.is_cut(SERVER, name)
                    or self.network.is_cut(name, SERVER))
        )

    def busy_cpus(self) -> float:
        return sum(node.utilization() for node in self.nodes.values())

    def total_cpus(self) -> int:
        return sum(node.cpus for node in self.nodes.values())

    def lost_compute_seconds(self) -> float:
        """CPU-seconds of partial progress discarded by crashes and kills."""
        return sum(node.cpu_lost for node in self.nodes.values())

    def run_until_instance_done(self, instance_id: str,
                                horizon: float = 400 * 86400.0) -> str:
        """Advance the simulation until the instance is terminal.

        Stops early (raising) if the event queue drains while the instance
        is still running — that indicates a wedged system, which tests want
        to know about loudly.
        """
        while True:
            instance = (self.server.instances.get(instance_id)
                        if self.server else None)
            if instance is not None and instance.terminal:
                self.trace.record(force=True)
                return instance.status
            if self.kernel.now > horizon:
                raise ClusterError(
                    f"simulation horizon {horizon} reached; instance "
                    f"{instance_id} still {instance.status if instance else 'unknown'}"
                )
            if not self.kernel.step():
                raise ClusterError(
                    f"event queue drained but instance {instance_id} is "
                    f"still not terminal (wedged?)"
                )
