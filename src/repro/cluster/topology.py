"""The paper's three clusters (Section 5.1), reconstructed.

The scan's digits are partly illegible; the reconstruction below is fixed
by the legible anchors — the granularity discussion expects the optimum to
coincide with "the number of processors, which is in this case 15" for
ik-sun; Figure 5's availability line "ranges between 0 and 33"; Figure 6
runs from 8 to 16 processors after a "second processor was added to each
node" — and is documented per cluster:

* **linneus** — "15 two-processor PCs (400 MHz, 512 MB) running Red Hat
  Linux and 1 Sun SparcStation with 3 CPUs (336 MHz)" → 33 CPUs total,
  matching Table 1's shared-run maximum. The Sparc is slower (tagged
  ``refine`` so scenarios can pin refinement stages to it, as the paper
  pinned refinement to its slower machines).
* **ik_sun** — 5 Sun machines with 3 CPUs each (270 MHz) → the 15 CPUs of
  the granularity study.
* **ik_linux** — 8 two-processor PCs (500 MHz), of which initially only one
  processor per node is enabled; day 25 of the second run upgrades each
  node to both processors (8 → 16 CPUs).

Speeds are relative to the cost model's 1.0 baseline (≈ a 400 MHz PC).
"""

from __future__ import annotations

from typing import List

from .node import NodeSpec


def linneus() -> List[NodeSpec]:
    """The main shared cluster: 15 dual PCs + one 3-CPU Sparc = 33 CPUs."""
    specs = [
        NodeSpec(name=f"linneus{i:02d}", cpus=2, speed=1.0, os="linux",
                 memory_mb=512)
        for i in range(1, 16)
    ]
    specs.append(NodeSpec(name="linneus-sparc", cpus=3, speed=0.6,
                          os="solaris", memory_mb=1024, tags=("refine",)))
    return specs


def ik_sun() -> List[NodeSpec]:
    """The granularity-study cluster: 5 Suns, 15 CPUs, exclusive use.

    Mean speed 1.0 (the cost model is calibrated to make ik-sun CPU time
    the paper's unit); per-node spread reflects machines of slightly
    different ages — one of the reasons "the CPU time for TEUs will always
    differ".
    """
    speeds = [1.10, 1.05, 1.00, 0.95, 0.90]
    return [
        NodeSpec(name=f"ik-sun{i}", cpus=3, speed=speeds[i - 1],
                 os="solaris", memory_mb=320)
        for i in range(1, 6)
    ]


def ik_linux(initial_cpus: int = 1) -> List[NodeSpec]:
    """The non-shared cluster: 8 dual PCs, initially one CPU enabled."""
    return [
        NodeSpec(name=f"ik-linux{i}", cpus=initial_cpus, speed=1.25,
                 os="linux", memory_mb=512)
        for i in range(1, 9)
    ]


def uniform(count: int, cpus: int = 1, speed: float = 1.0,
            prefix: str = "node") -> List[NodeSpec]:
    """A homogeneous cluster for tests and ablations."""
    return [
        NodeSpec(name=f"{prefix}{i:03d}", cpus=cpus, speed=speed)
        for i in range(1, count + 1)
    ]
