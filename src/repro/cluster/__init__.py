"""Simulated cluster substrate: DES kernel, nodes, network, PECs, failures."""

from .environment import SimulatedCluster
from .failures import DAY, HOUR, ScenarioScript
from .network import ANY, SERVER, STANDBY, Network
from .node import NodeSpec, SimNode
from .pec import PEC
from .simulation import Event, SimKernel, format_duration
from .topology import ik_linux, ik_sun, linneus, uniform
from .trace import ClusterTrace

__all__ = [
    "SimKernel",
    "Event",
    "format_duration",
    "NodeSpec",
    "SimNode",
    "Network",
    "ANY",
    "SERVER",
    "STANDBY",
    "PEC",
    "SimulatedCluster",
    "ClusterTrace",
    "ScenarioScript",
    "DAY",
    "HOUR",
    "linneus",
    "ik_sun",
    "ik_linux",
    "uniform",
]
