"""Deterministic discrete-event simulation kernel.

Everything time-dependent in the reproduction — the BioOpera server, the
program execution clients, external load, failures, upgrades — runs as
callbacks on one :class:`SimKernel`. The kernel is deliberately tiny: a
binary heap of timestamped events plus a family of seeded random streams.

Determinism rules:

* ties in time are broken by (priority, insertion sequence), so two runs
  with the same seed produce identical schedules;
* every source of randomness draws from ``kernel.rng(name)``, a stream
  seeded by ``(seed, name)``, so adding a new random consumer does not
  perturb existing streams.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class _HeapEntry:
    time: float
    priority: int
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "label", "_kernel")

    def __init__(self, time, fn, args, label="", kernel=None):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.label = label
        self._kernel = kernel  # set while the event sits in a kernel heap

    def cancel(self):
        """Prevent the callback from firing. Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._kernel is not None:
                self._kernel._note_cancelled()

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        name = self.label or getattr(self.fn, "__name__", "fn")
        return f"<Event {name} at t={self.time:.3f} ({state})>"


class SimKernel:
    """Event-driven simulation clock.

    Parameters
    ----------
    seed:
        Master seed for all random streams.
    """

    def __init__(self, seed=0):
        self.seed = seed
        self._now = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._rngs: dict[str, random.Random] = {}
        self._running = False
        self._events_processed = 0
        #: cancelled events still occupying heap slots; compacted away once
        #: they dominate the heap, so long runs with heavy cancellation
        #: (kill-and-restart migration, outage timers) stay O(log live).
        self._stale = 0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    # -- randomness ----------------------------------------------------------

    def rng(self, name: str) -> random.Random:
        """Return the named random stream, creating it on first use."""
        stream = self._rngs.get(name)
        if stream is None:
            stream = random.Random(f"{self.seed}/{name}")
            self._rngs[name] = stream
        return stream

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, fn: Callable, *args: Any,
                 priority: int = 0, label: str = "") -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        return self.schedule_at(self._now + delay, fn, *args,
                                priority=priority, label=label)

    def schedule_at(self, time: float, fn: Callable, *args: Any,
                    priority: int = 0, label: str = "") -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, fn, args, label=label, kernel=self)
        heapq.heappush(
            self._heap, _HeapEntry(time, priority, next(self._seq), event)
        )
        return event

    # -- cancelled-event bookkeeping ------------------------------------------

    def _note_cancelled(self) -> None:
        self._stale += 1
        if self._stale > 64 and self._stale * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries in bulk and restore the heap invariant."""
        self._heap = [e for e in self._heap if not e.event.cancelled]
        heapq.heapify(self._heap)
        self._stale = 0

    def _release(self, event: Event) -> None:
        """An entry left the heap: stop accounting for its cancellation."""
        event._kernel = None
        if event.cancelled:
            self._stale -= 1

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Run the next pending event. Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            self._release(entry.event)
            if entry.event.cancelled:
                continue
            self._now = entry.time
            self._events_processed += 1
            entry.event.fn(*entry.event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events in order until the heap drains or limits are hit.

        Returns the simulation time when execution stopped. ``until`` is an
        inclusive horizon: events at exactly ``until`` still run.
        """
        if self._running:
            raise SimulationError("kernel is already running (re-entrant run)")
        self._running = True
        processed = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.event.cancelled:
                    heapq.heappop(self._heap)
                    self._release(entry.event)
                    continue
                if until is not None and entry.time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                heapq.heappop(self._heap)
                self._release(entry.event)
                self._now = entry.time
                self._events_processed += 1
                processed += 1
                entry.event.fn(*entry.event.args)
        finally:
            self._running = False
        if until is not None and self._now < until and not self._pending_before(until):
            self._now = until
        return self._now

    def run_until_idle(self, idle_check: Callable[[], bool],
                       check_every: float, horizon: float) -> float:
        """Run until ``idle_check()`` returns True, polling the condition.

        The condition is evaluated after every event; ``horizon`` bounds the
        run so a wedged system cannot loop forever.
        """
        while self._now <= horizon:
            if idle_check():
                return self._now
            if not self.step():
                return self._now
        raise SimulationError(f"horizon {horizon} reached before idle")

    def _pending_before(self, time: float) -> bool:
        return any(
            not entry.event.cancelled and entry.time <= time
            for entry in self._heap
        )

    @property
    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return len(self._heap) - self._stale


def format_duration(seconds: float) -> str:
    """Render a duration like the paper's tables: ``38d 3h 22m``."""
    seconds = max(0.0, float(seconds))
    days, rest = divmod(int(round(seconds)), 86400)
    hours, rest = divmod(rest, 3600)
    minutes, secs = divmod(rest, 60)
    if days:
        return f"{days}d {hours}h {minutes}m"
    if hours:
        return f"{hours}h {minutes}m {secs}s"
    if minutes:
        return f"{minutes}m {secs}s"
    return f"{secs}s"
