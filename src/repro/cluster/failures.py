"""Scenario scripting: scheduled failures, load patterns, and operations.

The paper's failures "were not injected but part of the everyday operation
of the systems"; ours are *scripted* so runs are reproducible. A
:class:`ScenarioScript` schedules cluster operations at absolute simulated
times and records an annotation for each — the numbered event markers of
Figures 5 and 6.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from .environment import SimulatedCluster

DAY = 86400.0
HOUR = 3600.0


class ScenarioScript:
    """Schedules labelled operations against a simulated cluster."""

    def __init__(self, cluster: SimulatedCluster):
        self.cluster = cluster
        self.kernel = cluster.kernel

    def at(self, time: float, label: str, fn: Callable, *args: Any) -> None:
        """Run ``fn(*args)`` at simulated ``time`` and annotate the trace."""
        def wrapper():
            self.cluster.trace.annotate(label)
            fn(*args)

        self.kernel.schedule_at(time, wrapper, label=label)

    # -- convenience wrappers -------------------------------------------------

    def node_crash(self, time: float, node: str, duration: float,
                   label: str = "") -> None:
        label = label or f"node {node} failure"
        self.at(time, label, self.cluster.crash_node, node)
        self.at(time + duration, f"{label} repaired",
                self.cluster.restore_node, node)

    def mass_failure(self, time: float, nodes: Sequence[str],
                     duration: float, label: str = "cluster failure") -> None:
        def crash_all():
            for node in nodes:
                self.cluster.crash_node(node)

        def restore_all():
            for node in nodes:
                self.cluster.restore_node(node)

        self.at(time, label, crash_all)
        self.at(time + duration, f"{label} over", restore_all)

    def network_outage(self, time: float, duration: float,
                       label: str = "network outage") -> None:
        self.at(time, label, self.cluster.start_network_outage)
        self.at(time + duration, f"{label} over",
                self.cluster.end_network_outage)

    def storage_full(self, time: float, duration: float,
                     label: str = "disk space shortage") -> None:
        self.at(time, label, self.cluster.set_storage_full, True)
        self.at(time + duration, "disk space freed",
                self.cluster.set_storage_full, False)

    def server_maintenance(self, time: float, duration: float,
                           label: str = "server maintenance") -> None:
        self.at(time, label, self.cluster.crash_server)
        self.at(time + duration, "server restarted",
                self.cluster.recover_server)

    def server_crash(self, time: float, recovery_after: float,
                     label: str = "server crash") -> None:
        self.at(time, label, self.cluster.crash_server)
        self.at(time + recovery_after, "server recovered",
                self.cluster.recover_server)

    def upgrade_all(self, time: float, cpus: Optional[int] = None,
                    speed: Optional[float] = None,
                    label: str = "hardware upgrade") -> None:
        def upgrade():
            for node in sorted(self.cluster.nodes):
                self.cluster.upgrade_node(node, cpus=cpus, speed=speed)

        self.at(time, label, upgrade)

    def suspend_instance(self, time: float, instance_id: str,
                         label: str = "manual suspend") -> None:
        self.at(time, label,
                lambda: self.cluster.server.suspend(instance_id, label))

    def resume_instance(self, time: float, instance_id: str,
                        label: str = "manual resume") -> None:
        self.at(time, label,
                lambda: self.cluster.server.resume(instance_id))

    # -- external load patterns ---------------------------------------------------

    def load_burst(self, time: float, duration: float,
                   nodes: Sequence[str], load_fraction: float,
                   label: str = "cluster busy with other jobs") -> None:
        """Other users occupy ``load_fraction`` of each node's CPUs."""
        def start():
            for node in nodes:
                cpus = self.cluster.nodes[node].cpus
                self.cluster.set_external_load(node, cpus * load_fraction)

        def stop():
            for node in nodes:
                self.cluster.set_external_load(node, 0.0)

        self.at(time, label, start)
        self.at(time + duration, f"{label} over", stop)

    def background_load(self, start: float, end: float,
                        nodes: Sequence[str], mean_fraction: float,
                        change_every: float = 4 * HOUR,
                        seed_stream: str = "background-load") -> None:
        """Fluctuating everyday multi-user load on a shared cluster.

        Each node's external load is redrawn around ``mean_fraction`` every
        ``change_every`` seconds (exponential spacing), producing the
        plateaus-and-bursts profile adaptive monitoring exploits.
        """
        rng = self.kernel.rng(seed_stream)

        def redraw(node: str):
            if self.kernel.now >= end:
                self.cluster.set_external_load(node, 0.0)
                return
            node_obj = self.cluster.nodes[node]
            fraction = min(1.0, max(0.0, rng.gauss(mean_fraction,
                                                   mean_fraction / 2)))
            self.cluster.set_external_load(node, node_obj.cpus * fraction)
            self.kernel.schedule(rng.expovariate(1.0 / change_every),
                                 redraw, node, label=f"load:{node}")

        for node in nodes:
            self.kernel.schedule_at(
                start + rng.random() * change_every, redraw, node,
                label=f"load-start:{node}",
            )
