"""Simulated cluster nodes: CPU slots, speed, external load, crashes.

A node executes BioOpera jobs *nice* (at lower priority than other users'
work, as in the paper's shared-cluster run): each job needs one CPU's worth
of attention, and the node's ``external_load`` — CPUs' worth of
higher-priority demand — is served first. With ``k`` BioOpera jobs on a
node of ``cpus`` CPUs and external load ``x``, every job progresses at rate
``speed * min(1, max(0, cpus - x) / k)`` work-seconds per second.

Progress is tracked analytically: on every change (job arrival/completion,
load change, upgrade, crash) the node integrates progress since the last
change and reschedules each job's completion event. This keeps the
discrete-event simulation exact with O(changes) events, no ticking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import NodeDownError
from .simulation import Event, SimKernel


@dataclass
class NodeSpec:
    """Static description of a node (what the configuration space holds)."""

    name: str
    cpus: int
    speed: float = 1.0
    os: str = "linux"
    memory_mb: int = 512
    tags: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cpus": self.cpus,
            "speed": self.speed,
            "os": self.os,
            "memory_mb": self.memory_mb,
            "tags": list(self.tags),
        }


class _RunningJob:
    __slots__ = ("job_id", "work_remaining", "payload", "completion_event",
                 "started_at", "cpu_consumed")

    def __init__(self, job_id: str, work: float, payload: Any, now: float):
        self.job_id = job_id
        self.work_remaining = float(work)
        self.payload = payload
        self.completion_event: Optional[Event] = None
        self.started_at = now
        self.cpu_consumed = 0.0  # node-CPU seconds actually burned


class SimNode:
    """Runtime state of one node in the simulated cluster."""

    def __init__(self, kernel: SimKernel, spec: NodeSpec,
                 on_job_done: Callable[["SimNode", str, Any, float], None]):
        self.kernel = kernel
        self.spec = spec
        self.name = spec.name
        self.cpus = spec.cpus
        self.speed = spec.speed
        self.up = True
        self.external_load = 0.0
        self._jobs: Dict[str, _RunningJob] = {}
        self._last_update = kernel.now
        self._on_job_done = on_job_done
        #: CPU-seconds of partial progress discarded by crashes/kills.
        self.cpu_lost = 0.0

    # ------------------------------------------------------------------
    # Rate mechanics
    # ------------------------------------------------------------------

    def _available(self) -> float:
        if not self.up:
            return 0.0
        return max(0.0, self.cpus - self.external_load)

    def _rate_per_job(self) -> float:
        """Work-seconds per sim-second each running job receives."""
        count = len(self._jobs)
        if count == 0 or not self.up:
            return 0.0
        return self.speed * min(1.0, self._available() / count)

    def _integrate(self) -> None:
        """Apply progress accrued since the last change point."""
        now = self.kernel.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._jobs:
            return
        rate = self._rate_per_job()
        if rate <= 0:
            return
        share = min(1.0, self._available() / len(self._jobs))
        for job in self._jobs.values():
            job.work_remaining -= rate * elapsed
            job.cpu_consumed += share * elapsed

    def _reschedule(self) -> None:
        rate = self._rate_per_job()
        for job in self._jobs.values():
            if job.completion_event is not None:
                job.completion_event.cancel()
                job.completion_event = None
            if rate <= 0:
                continue  # stalled until conditions change
            delay = max(0.0, job.work_remaining) / rate
            job.completion_event = self.kernel.schedule(
                delay, self._complete, job.job_id,
                label=f"{self.name}:{job.job_id}",
            )

    def _change(self) -> None:
        self._integrate()
        self._reschedule()

    # ------------------------------------------------------------------
    # Job lifecycle
    # ------------------------------------------------------------------

    def start_job(self, job_id: str, work: float, payload: Any) -> None:
        if not self.up:
            raise NodeDownError(f"node {self.name} is down")
        self._integrate()
        self._jobs[job_id] = _RunningJob(job_id, work, payload,
                                         self.kernel.now)
        self._reschedule()

    def _complete(self, job_id: str) -> None:
        self._integrate()
        job = self._jobs.pop(job_id, None)
        self._reschedule()
        if job is None:
            return
        self._on_job_done(self, job_id, job.payload, job.cpu_consumed)

    def kill_job(self, job_id: str) -> bool:
        """Abandon a running job (cancellation or preemptive kill)."""
        self._integrate()
        job = self._jobs.pop(job_id, None)
        if job is not None:
            if job.completion_event is not None:
                job.completion_event.cancel()
            self.cpu_lost += job.cpu_consumed
        self._reschedule()
        return job is not None

    def running_jobs(self) -> List[str]:
        return sorted(self._jobs)

    def has_job(self, job_id: str) -> bool:
        return job_id in self._jobs

    # ------------------------------------------------------------------
    # Environment changes
    # ------------------------------------------------------------------

    def set_external_load(self, load: float) -> None:
        self._integrate()
        self.external_load = max(0.0, min(float(load), float(self.cpus)))
        self._reschedule()

    def crash(self) -> List[str]:
        """Take the node down; running jobs are lost. Returns their ids."""
        self._integrate()
        lost = sorted(self._jobs)
        for job in self._jobs.values():
            if job.completion_event is not None:
                job.completion_event.cancel()
            self.cpu_lost += job.cpu_consumed
        self._jobs.clear()
        self.up = False
        return lost

    def restore(self) -> None:
        self.up = True
        self._last_update = self.kernel.now

    def upgrade(self, cpus: Optional[int] = None,
                speed: Optional[float] = None) -> None:
        """Hardware change (paper: one-to-two-processor upgrade mid-run)."""
        self._integrate()
        if cpus is not None:
            self.cpus = cpus
        if speed is not None:
            self.speed = speed
        self._reschedule()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def utilization(self) -> float:
        """CPUs currently doing BioOpera work."""
        if not self.up or not self._jobs:
            return 0.0
        return min(float(len(self._jobs)), self._available())

    def available_cpus(self) -> int:
        return self.cpus if self.up else 0

    def __repr__(self):
        state = "up" if self.up else "DOWN"
        return (
            f"<SimNode {self.name} {state} jobs={len(self._jobs)} "
            f"ext={self.external_load:.1f}/{self.cpus}>"
        )
