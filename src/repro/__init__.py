"""BioOpera reproduction: dependable process support for virtual laboratories.

Reimplementation of the system described in G. Alonso, W. Bausch,
C. Pautasso, M. Hallett, A. Kahn, "Dependable Computing in Virtual
Laboratories" (ETH TR 349 / ICDE 2001). See DESIGN.md for the system
inventory and EXPERIMENTS.md for the reproduced evaluation.

Quickstart::

    from repro import (BioOperaServer, InlineEnvironment, DarwinEngine,
                       DatabaseProfile, install_all_vs_all)
    from repro.workloads import datasets

    db = datasets.small_database()
    darwin = DarwinEngine(DatabaseProfile.from_database(db),
                          database=db, mode="real")
    server = BioOperaServer()
    env = InlineEnvironment()
    server.attach_environment(env)
    install_all_vs_all(server, darwin)
    instance_id = server.launch("all_vs_all", {"db_name": db.name})
    env.run_instance(instance_id)
    print(server.instance(instance_id).outputs)
"""

from .bio import (
    CostModel,
    DarwinEngine,
    DatabaseProfile,
    MatrixFamily,
    Sequence,
    SequenceDatabase,
    default_family,
    sw_align,
    sw_score,
)
from .cluster import (
    NodeSpec,
    ScenarioScript,
    SimKernel,
    SimulatedCluster,
    format_duration,
)
from .core.engine import (
    BioOperaServer,
    InlineEnvironment,
    ProgramContext,
    ProgramRegistry,
    ProgramResult,
)
from .core.engine.operator_console import OperatorConsole
from .core.engine.standby import StandbyMonitor, attach_standby
from .core.model import (
    Activity,
    Binding,
    Block,
    ParallelTask,
    ProcessTemplate,
    SubprocessTask,
    TaskGraph,
)
from .core.monitor.adaptive import AdaptiveMonitor, MonitorConfig
from .core.ocr import parse_ocr, print_ocr
from .core.planning import drain_plan, outage_impact
from .errors import ReproError
from .obs import ObservabilityHub, TaskSpan, TraceCollector
from .processes import install_all_vs_all, install_tower
from .store import LineageGraph, LineageRecord, OperaStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    # process model & language
    "ProcessTemplate",
    "TaskGraph",
    "Activity",
    "Block",
    "ParallelTask",
    "SubprocessTask",
    "Binding",
    "parse_ocr",
    "print_ocr",
    # engine
    "BioOperaServer",
    "InlineEnvironment",
    "ProgramRegistry",
    "ProgramContext",
    "ProgramResult",
    "OperatorConsole",
    "StandbyMonitor",
    "attach_standby",
    # monitoring & planning
    "AdaptiveMonitor",
    "MonitorConfig",
    "ObservabilityHub",
    "TaskSpan",
    "TraceCollector",
    "outage_impact",
    "drain_plan",
    # store
    "OperaStore",
    "LineageRecord",
    "LineageGraph",
    # cluster
    "SimKernel",
    "SimulatedCluster",
    "NodeSpec",
    "ScenarioScript",
    "format_duration",
    # bio
    "Sequence",
    "SequenceDatabase",
    "DatabaseProfile",
    "CostModel",
    "DarwinEngine",
    "MatrixFamily",
    "default_family",
    "sw_score",
    "sw_align",
    # processes
    "install_all_vs_all",
    "install_tower",
]
