"""Exception hierarchy for the BioOpera reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class. Sub-hierarchies mirror the package
layout: model / OCR language / engine / store / cluster / bio / planning.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Process model
# --------------------------------------------------------------------------

class ModelError(ReproError):
    """A process template or one of its parts is malformed."""


class ValidationError(ModelError):
    """A process template failed structural validation."""

    def __init__(self, problems):
        self.problems = list(problems)
        super().__init__(
            "process validation failed:\n  " + "\n  ".join(self.problems)
        )


class BindingError(ModelError):
    """A data binding refers to a name that cannot be resolved."""


class ConditionError(ModelError):
    """An activation condition is malformed or failed to evaluate."""


# --------------------------------------------------------------------------
# OCR language
# --------------------------------------------------------------------------

class OCRError(ReproError):
    """Base class for OCR (Opera Canonical Representation) errors."""


class OCRSyntaxError(OCRError):
    """The OCR source text could not be tokenized or parsed."""

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")


class OCRCompileError(OCRError):
    """The OCR program parsed but could not be compiled to a template."""


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------

class EngineError(ReproError):
    """Base class for runtime engine errors."""


class UnknownInstanceError(EngineError):
    """An operation referred to a process instance the server does not know."""


class MigratedInstanceError(UnknownInstanceError):
    """The instance was migrated off this shard (tombstoned source copy).

    Raised instead of a silent empty result when a provenance (or other
    store-scoped) query names an id whose local copy was tombstoned by a
    committed shard migration. ``forwarded_to`` carries the forwarding
    record's target so callers with plane access (the sharded console)
    can chase it the way ``ShardedControlPlane.resolve_instance`` does.
    """

    def __init__(self, message, forwarded_to=""):
        super().__init__(message)
        self.forwarded_to = forwarded_to


class UnknownShardError(EngineError):
    """An instance id names a shard that is not part of the plane.

    Raised instead of silently hash-routing a prefixed id whose owner
    shard was removed (shrink) or never existed — callers with access to
    forwarding records (``ShardedControlPlane.resolve_instance``) can
    chase a migrated id before surfacing this to the operator.
    """


class UnknownTemplateError(EngineError):
    """An operation referred to a template not present in the template space."""


class InvalidStateError(EngineError):
    """An operation is not legal in the current instance or task state."""


class DispatchError(EngineError):
    """The dispatcher could not place a job on any node."""


class ActivityFailure(EngineError):
    """An activity failed at runtime.

    ``reason`` is a short machine-readable failure class (for example
    ``"node-crash"``, ``"disk-full"``, ``"program-error"``) used by failure
    handlers to decide how to react.
    """

    def __init__(self, reason, detail=""):
        self.reason = reason
        self.detail = detail
        message = f"activity failed ({reason})"
        if detail:
            message += f": {detail}"
        super().__init__(message)


# --------------------------------------------------------------------------
# Persistent store
# --------------------------------------------------------------------------

class StoreError(ReproError):
    """Base class for persistence errors."""


class CodecError(StoreError):
    """A value could not be serialized or deserialized."""


class CorruptLogError(StoreError):
    """The write-ahead log contains an undecodable (non-torn-tail) record."""


# --------------------------------------------------------------------------
# Simulated cluster
# --------------------------------------------------------------------------

class ClusterError(ReproError):
    """Base class for cluster-simulation errors."""


class NodeDownError(ClusterError):
    """A job was sent to (or running on) a node that is down."""


class DiskFullError(ClusterError):
    """Shared storage ran out of space (Figure 5, event class 5)."""


class SimulationError(ClusterError):
    """The discrete-event kernel was misused (time travel, re-run, ...)."""


# --------------------------------------------------------------------------
# Bioinformatics substrate
# --------------------------------------------------------------------------

class BioError(ReproError):
    """Base class for errors from the Darwin-substitute substrate."""


class AlignmentError(BioError):
    """Alignment inputs were invalid (empty sequence, bad alphabet, ...)."""


class MatrixError(BioError):
    """A scoring-matrix request was invalid."""


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------

class PlanningError(ReproError):
    """A what-if planning query was invalid."""
