"""Adaptive load monitoring (paper, Section 3.4).

"BioOpera examines the workload of the available machines using an
*adaptive monitoring* technique... processors which display a constant
workload over a long period of time do not have to be monitored as closely
as processors having a variable workload."

Two cut-offs drive the algorithm exactly as the paper describes:

1. **Sampling cut-off** — the PEC compares the last recorded load with the
   current load; if the change falls below the cut-off, the interval before
   the next sample grows, otherwise it shrinks.
2. **Reporting cut-off** — the PEC notifies the server only when the load
   has moved beyond a second cut-off since the last report.

The paper's measurement: an adaptive strategy discarding ~90% of samples
induces ≈3% average per-sample error in the server's view of the load
curve. :func:`simulate_monitoring` reproduces that experiment on synthetic
load traces (benchmark M1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class MonitorConfig:
    """Tuning knobs for the two-cut-off algorithm."""

    min_interval: float = 15.0
    max_interval: float = 960.0
    base_interval: float = 30.0       # the fixed-rate baseline's period
    sampling_cutoff: float = 0.02     # load fraction: grow vs shrink interval
    report_cutoff: float = 0.05      # load fraction: notify the server
    grow_factor: float = 2.0
    shrink_factor: float = 0.25


class AdaptiveMonitor:
    """Stateful per-node sampler implementing the two-cut-off scheme."""

    def __init__(self, config: Optional[MonitorConfig] = None):
        self.config = config or MonitorConfig()
        self.interval = self.config.base_interval
        self.last_sample: Optional[float] = None
        self.last_reported: Optional[float] = None
        self.samples_taken = 0
        self.reports_sent = 0

    def observe(self, load: float) -> Tuple[float, Optional[float]]:
        """Record one sample of the (0..1 normalized) load.

        Returns ``(next_interval, report)`` where ``report`` is the value to
        send to the server, or None when the change is below the reporting
        cut-off (the sample is discarded locally).
        """
        cfg = self.config
        self.samples_taken += 1
        if self.last_sample is None:
            # First observation: report it, keep the base interval.
            self.last_sample = load
            self.last_reported = load
            self.reports_sent += 1
            return self.interval, load
        change = abs(load - self.last_sample)
        self.last_sample = load
        if change < cfg.sampling_cutoff:
            self.interval = min(cfg.max_interval,
                                self.interval * cfg.grow_factor)
        else:
            self.interval = max(cfg.min_interval,
                                self.interval * cfg.shrink_factor)
        report: Optional[float] = None
        if (self.last_reported is None
                or abs(load - self.last_reported) >= cfg.report_cutoff):
            report = load
            self.last_reported = load
            self.reports_sent += 1
        return self.interval, report

    @property
    def discard_fraction(self) -> float:
        if self.samples_taken == 0:
            return 0.0
        return 1.0 - self.reports_sent / self.samples_taken


# ---------------------------------------------------------------------------
# Offline evaluation (benchmark M1)
# ---------------------------------------------------------------------------

@dataclass
class MonitoringRun:
    """Result of replaying a monitor over a load trace."""

    strategy: str
    samples_taken: int
    reports_sent: int
    mean_error: float          # mean |server view - truth| per truth point
    max_error: float
    network_messages: int

    @property
    def discard_fraction(self) -> float:
        if self.samples_taken == 0:
            return 0.0
        return 1.0 - self.reports_sent / self.samples_taken


def synthetic_load_trace(duration: float, step: float = 1.0, seed: int = 0,
                         volatility: float = 0.01,
                         jump_rate: float = 0.001) -> List[Tuple[float, float]]:
    """A plausible cluster-node load curve in [0, 1].

    A mean-reverting random walk punctuated by job-arrival/departure jumps:
    long quiet plateaus (where adaptive monitoring wins) with bursts of
    change (where it shrinks its interval).
    """
    rng = random.Random(f"load-trace/{seed}")
    trace: List[Tuple[float, float]] = []
    load = rng.uniform(0.1, 0.6)
    target = load
    t = 0.0
    while t <= duration:
        if rng.random() < jump_rate:
            target = rng.uniform(0.0, 1.0)
        load += 0.15 * (target - load) + rng.gauss(0.0, volatility)
        load = min(1.0, max(0.0, load))
        trace.append((t, load))
        t += step
    return trace


def _view_error(trace: List[Tuple[float, float]],
                reports: List[Tuple[float, float]]) -> Tuple[float, float]:
    """Compare the server's piecewise-constant view against the truth."""
    if not reports:
        return 1.0, 1.0
    total = 0.0
    worst = 0.0
    report_index = 0
    current = reports[0][1]
    for t, truth in trace:
        while (report_index + 1 < len(reports)
               and reports[report_index + 1][0] <= t):
            report_index += 1
            current = reports[report_index][1]
        error = abs(current - truth)
        total += error
        worst = max(worst, error)
    return total / len(trace), worst


def simulate_monitoring(trace: List[Tuple[float, float]],
                        config: Optional[MonitorConfig] = None,
                        strategy: str = "adaptive") -> MonitoringRun:
    """Replay a monitoring strategy over a load trace.

    ``strategy``:

    * ``"adaptive"`` — the two-cut-off algorithm;
    * ``"fixed"`` — sample every ``base_interval`` seconds, report every
      sample (the naive baseline the paper improves on);
    * ``"fixed-threshold"`` — fixed sampling, report only significant
      changes (isolates the contribution of the reporting cut-off).
    """
    config = config or MonitorConfig()
    monitor = AdaptiveMonitor(config)
    duration = trace[-1][0]
    step = trace[1][0] - trace[0][0] if len(trace) > 1 else 1.0

    def truth_at(time: float) -> float:
        index = min(len(trace) - 1, max(0, int(time / step)))
        return trace[index][1]

    reports: List[Tuple[float, float]] = []
    samples = 0
    t = 0.0
    if strategy == "adaptive":
        while t <= duration:
            _interval, report = monitor.observe(truth_at(t))
            if report is not None:
                reports.append((t, report))
            samples = monitor.samples_taken
            t += monitor.interval
        sent = monitor.reports_sent
    elif strategy in ("fixed", "fixed-threshold"):
        last_reported: Optional[float] = None
        while t <= duration:
            samples += 1
            value = truth_at(t)
            significant = (
                last_reported is None
                or abs(value - last_reported) >= config.report_cutoff
            )
            if strategy == "fixed" or significant:
                reports.append((t, value))
                last_reported = value
            t += config.base_interval
        sent = len(reports)
    else:
        raise ValueError(f"unknown monitoring strategy {strategy!r}")
    mean_error, max_error = _view_error(trace, reports)
    return MonitoringRun(
        strategy=strategy,
        samples_taken=samples,
        reports_sent=sent,
        mean_error=mean_error,
        max_error=max_error,
        network_messages=sent,
    )
