"""Analytical queries over the persistent instance space.

"The fact that the process state is persistently stored in a database also
offers significant advantages for monitoring and querying purposes"
(paper, Section 3.2). These queries answer the operator analytics behind
questions like *which nodes did the work*, *where did the time go*, and
*what kept failing*.

Two execution paths, one contract
---------------------------------

Each query reads from the store's attached
:class:`~repro.obs.ObservabilityHub`'s materialized views when they are in
sync with the durable log — an O(answer) read, independent of the
event-log length — and otherwise falls back to a full event-log rescan.
The rescan implementations (``*_rescan``) are kept public: they are the
differential-test oracle, and both paths share the same merge/ranking
helpers so their results are **byte-identical** (same float grouping, same
deterministic tie-breakers).

All single-instance queries validate the instance id against the instance
space and raise :class:`~repro.errors.StoreError` on unknown ids — a KV
prefix scan over a typo'd id silently yields nothing, which used to make
"no such instance" indistinguishable from "no events yet".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...errors import StoreError
from ...obs.views import (
    is_activity_completion,
    merge_node_usage_chunks,
    rank_path_costs,
    rank_retry_hotspots,
)
from ...store.spaces import OperaStore
from ..engine.events import (
    INFRASTRUCTURE_REASONS,
    INSTANCE_RESUMED,
    INSTANCE_SUSPENDED,
    TASK_DISPATCHED,
    TASK_FAILED,
)


@dataclass
class NodeUsage:
    """Per-node accounting derived from completion events."""

    node: str
    activities: int = 0
    cpu_seconds: float = 0.0
    failures: int = 0

    @property
    def cpu_per_activity(self) -> float:
        return self.cpu_seconds / self.activities if self.activities else 0.0


# ---------------------------------------------------------------------------
# Path selection
# ---------------------------------------------------------------------------


def _require_instance(store: OperaStore, instance_id: str) -> None:
    if store.instances.meta(instance_id) is None:
        raise StoreError(f"unknown instance {instance_id!r}")


def _live_views(store: OperaStore, instance_id: Optional[str] = None):
    """The store's view catalog, if attached and caught up; else None."""
    hub = getattr(store, "observability", None)
    if hub is None:
        return None
    views = hub.views
    if instance_id is not None:
        return views if views.in_sync(store, instance_id) else None
    for iid in store.instances.instance_ids():
        if not views.in_sync(store, iid):
            return None
    return views


# ---------------------------------------------------------------------------
# node_usage
# ---------------------------------------------------------------------------


def node_usage(store: OperaStore,
               instance_id: Optional[str] = None) -> List[NodeUsage]:
    """CPU and activity counts per node (descending by CPU, then name)."""
    if instance_id is not None:
        _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return node_usage_rescan(store, instance_id)
    instance_ids = ([instance_id] if instance_id
                    else store.instances.instance_ids())
    merged = merge_node_usage_chunks(
        views.node_usage.chunk(iid) for iid in instance_ids
    )
    return [NodeUsage(row[0], row[1], row[2], row[3]) for row in merged]


def node_usage_rescan(store: OperaStore,
                      instance_id: Optional[str] = None) -> List[NodeUsage]:
    """Full event-log scan (the differential oracle for :func:`node_usage`)."""
    if instance_id is not None:
        _require_instance(store, instance_id)
    instance_ids = ([instance_id] if instance_id
                    else store.instances.instance_ids())
    chunks = []
    for iid in instance_ids:
        per: Dict[str, List] = {}
        for event in store.instances.events(iid):
            # Filter on type *before* creating the node's entry: a
            # task_dispatched event also carries a node, and folding it
            # used to materialize phantom all-zero rows for nodes whose
            # dispatched work had not produced an outcome yet.
            kind = event["type"]
            if kind not in ("task_completed", "task_failed"):
                continue
            node = event.get("node")
            if not node:
                continue
            entry = per.get(node)
            if entry is None:
                entry = per[node] = [0, 0.0, 0]
            if kind == "task_completed":
                entry[0] += 1
                entry[1] += event.get("cost", 0.0)
            else:
                entry[2] += 1
        chunks.append([[node, e[0], e[1], e[2]] for node, e in per.items()])
    merged = merge_node_usage_chunks(chunks)
    return [NodeUsage(row[0], row[1], row[2], row[3]) for row in merged]


# ---------------------------------------------------------------------------
# event_histogram
# ---------------------------------------------------------------------------


def event_histogram(store: OperaStore,
                    instance_id: str) -> Dict[str, int]:
    """Event counts by type for one instance."""
    _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return event_histogram_rescan(store, instance_id)
    return views.event_histogram.read(instance_id)


def event_histogram_rescan(store: OperaStore,
                           instance_id: str) -> Dict[str, int]:
    _require_instance(store, instance_id)
    histogram: Dict[str, int] = {}
    for event in store.instances.events(instance_id):
        histogram[event["type"]] = histogram.get(event["type"], 0) + 1
    return histogram


# ---------------------------------------------------------------------------
# completions_over_time
# ---------------------------------------------------------------------------


def completions_over_time(store: OperaStore, instance_id: str,
                          bucket: float) -> List[Tuple[float, int]]:
    """Progress curve: completed activities per time bucket.

    Counts every activity completion by event type — a zero-cost completed
    task is still progress (the old ``event.get("cost")`` truthiness filter
    silently dropped them from the curve).
    """
    _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return completions_over_time_rescan(store, instance_id, bucket)
    return views.completions.read(instance_id, bucket)


def completions_over_time_rescan(store: OperaStore, instance_id: str,
                                 bucket: float) -> List[Tuple[float, int]]:
    _require_instance(store, instance_id)
    buckets: Dict[int, int] = {}
    for event in store.instances.events(instance_id):
        if is_activity_completion(event):
            index = int(event["time"] // bucket)
            buckets[index] = buckets.get(index, 0) + 1
    return [(index * bucket, count)
            for index, count in sorted(buckets.items())]


# ---------------------------------------------------------------------------
# slowest_activities
# ---------------------------------------------------------------------------


def slowest_activities(store: OperaStore, instance_id: str,
                       top: int = 10) -> List[Tuple[str, float]]:
    """The activities that consumed the most CPU (paths, descending).

    Includes zero-cost completions (cost defaults to 0.0) so a path's
    presence in the ranking reflects that it *ran*, not that it was
    expensive — the old cost-truthiness filter hid free tasks entirely.
    """
    _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return slowest_activities_rescan(store, instance_id, top)
    return rank_path_costs(views.path_cost.read(instance_id), top)


def slowest_activities_rescan(store: OperaStore, instance_id: str,
                              top: int = 10) -> List[Tuple[str, float]]:
    _require_instance(store, instance_id)
    costs: Dict[str, float] = {}
    for event in store.instances.events(instance_id):
        if is_activity_completion(event):
            path = event["path"]
            costs[path] = costs.get(path, 0.0) + event.get("cost", 0.0)
    return rank_path_costs(costs, top)


# ---------------------------------------------------------------------------
# retry_hotspots
# ---------------------------------------------------------------------------


def retry_hotspots(store: OperaStore, instance_id: str,
                   minimum: int = 2) -> List[Tuple[str, Dict[str, int],
                                                   List[str]]]:
    """Tasks dispatched ``minimum``+ times, with failure counts split by
    class and the failure reasons observed.

    Each hotspot is ``(path, counts, reasons)`` where ``counts`` separates
    ``program_failures`` from ``infrastructure_failures``
    (:data:`~repro.core.engine.events.INFRASTRUCTURE_REASONS`): a healthy
    task bounced around by node crashes is not the same signal as one
    whose program keeps failing, and ranking puts program failures first.
    """
    _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return retry_hotspots_rescan(store, instance_id, minimum)
    counts, reasons = views.retry_hotspots.read(instance_id)
    return rank_retry_hotspots(counts, reasons, minimum)


def retry_hotspots_rescan(store: OperaStore, instance_id: str,
                          minimum: int = 2) -> List[Tuple[str, Dict[str, int],
                                                          List[str]]]:
    _require_instance(store, instance_id)
    counts: Dict[str, List] = {}
    reasons: Dict[str, List[str]] = {}
    for event in store.instances.events(instance_id):
        kind = event["type"]
        if kind not in (TASK_DISPATCHED, TASK_FAILED):
            continue
        path = event["path"]
        entry = counts.get(path)
        if entry is None:
            entry = counts[path] = [0, 0, 0]
        if kind == TASK_DISPATCHED:
            entry[0] += 1
        else:
            reason = event["reason"]
            if reason in INFRASTRUCTURE_REASONS:
                entry[2] += 1
            else:
                entry[1] += 1
            reasons.setdefault(path, []).append(reason)
    return rank_retry_hotspots(counts, reasons, minimum)


# ---------------------------------------------------------------------------
# wall_time_breakdown
# ---------------------------------------------------------------------------


def wall_time_breakdown(store: OperaStore,
                        instance_id: str) -> Dict[str, float]:
    """Where the wall time went: running vs suspended vs (post-)terminal.

    Suspension intervals come from the suspend/resume events; the
    remainder up to the final event is counted as running time. A second
    ``instance_suspended`` before a resume closes the open interval first
    (the old fold overwrote ``suspend_start`` and lost the earlier one).
    """
    _require_instance(store, instance_id)
    views = _live_views(store, instance_id)
    if views is None:
        return wall_time_breakdown_rescan(store, instance_id)
    return views.wall_time.read(instance_id)


def wall_time_breakdown_rescan(store: OperaStore,
                               instance_id: str) -> Dict[str, float]:
    _require_instance(store, instance_id)
    events = list(store.instances.events(instance_id))
    if not events:
        return {"running": 0.0, "suspended": 0.0, "total": 0.0}
    start = events[0]["time"]
    end = events[-1]["time"]
    suspended = 0.0
    suspend_start: Optional[float] = None
    for event in events:
        if event["type"] == INSTANCE_SUSPENDED:
            if suspend_start is not None:
                suspended += event["time"] - suspend_start
            suspend_start = event["time"]
        elif event["type"] == INSTANCE_RESUMED and suspend_start is not None:
            suspended += event["time"] - suspend_start
            suspend_start = None
    if suspend_start is not None:
        suspended += end - suspend_start
    total = end - start
    return {
        "running": max(0.0, total - suspended),
        "suspended": suspended,
        "total": total,
    }
