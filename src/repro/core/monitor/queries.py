"""Analytical queries over the persistent instance space.

"The fact that the process state is persistently stored in a database also
offers significant advantages for monitoring and querying purposes"
(paper, Section 3.2). These queries read only the durable event logs, so
they work on live servers, on recovered stores, and on the archives of
finished runs alike — the operator analytics behind questions like *which
nodes did the work*, *where did the time go*, and *what kept failing*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...store.spaces import OperaStore


@dataclass
class NodeUsage:
    """Per-node accounting derived from completion events."""

    node: str
    activities: int = 0
    cpu_seconds: float = 0.0
    failures: int = 0

    @property
    def cpu_per_activity(self) -> float:
        return self.cpu_seconds / self.activities if self.activities else 0.0


def node_usage(store: OperaStore,
               instance_id: Optional[str] = None) -> List[NodeUsage]:
    """CPU and activity counts per node (descending by CPU)."""
    usage: Dict[str, NodeUsage] = {}
    instance_ids = ([instance_id] if instance_id
                    else store.instances.instance_ids())
    for iid in instance_ids:
        for event in store.instances.events(iid):
            node = event.get("node")
            if not node:
                continue
            entry = usage.setdefault(node, NodeUsage(node))
            if event["type"] == "task_completed":
                entry.activities += 1
                entry.cpu_seconds += event.get("cost", 0.0)
            elif event["type"] == "task_failed":
                entry.failures += 1
    return sorted(usage.values(), key=lambda u: -u.cpu_seconds)


def event_histogram(store: OperaStore,
                    instance_id: str) -> Dict[str, int]:
    """Event counts by type for one instance."""
    histogram: Dict[str, int] = {}
    for event in store.instances.events(instance_id):
        histogram[event["type"]] = histogram.get(event["type"], 0) + 1
    return histogram


def completions_over_time(store: OperaStore, instance_id: str,
                          bucket: float) -> List[Tuple[float, int]]:
    """Progress curve: completed activities per time bucket."""
    buckets: Dict[int, int] = {}
    for event in store.instances.events(instance_id):
        if event["type"] == "task_completed" and event.get("cost"):
            index = int(event["time"] // bucket)
            buckets[index] = buckets.get(index, 0) + 1
    return [(index * bucket, count)
            for index, count in sorted(buckets.items())]


def slowest_activities(store: OperaStore, instance_id: str,
                       top: int = 10) -> List[Tuple[str, float]]:
    """The activities that consumed the most CPU (paths, descending)."""
    costs: Dict[str, float] = {}
    for event in store.instances.events(instance_id):
        if event["type"] == "task_completed" and event.get("cost"):
            path = event["path"]
            costs[path] = costs.get(path, 0.0) + event["cost"]
    ranked = sorted(costs.items(), key=lambda kv: -kv[1])
    return ranked[:top]


def retry_hotspots(store: OperaStore, instance_id: str,
                   minimum: int = 2) -> List[Tuple[str, int, List[str]]]:
    """Tasks dispatched ``minimum``+ times, with their failure reasons."""
    dispatches: Dict[str, int] = {}
    reasons: Dict[str, List[str]] = {}
    for event in store.instances.events(instance_id):
        if event["type"] == "task_dispatched":
            dispatches[event["path"]] = dispatches.get(event["path"], 0) + 1
        elif event["type"] == "task_failed":
            reasons.setdefault(event["path"], []).append(event["reason"])
    hotspots = [
        (path, count, reasons.get(path, []))
        for path, count in dispatches.items() if count >= minimum
    ]
    return sorted(hotspots, key=lambda h: -h[1])


def wall_time_breakdown(store: OperaStore,
                        instance_id: str) -> Dict[str, float]:
    """Where the wall time went: running vs suspended vs (post-)terminal.

    Suspension intervals come from the suspend/resume events; the
    remainder up to the final event is counted as running time.
    """
    events = list(store.instances.events(instance_id))
    if not events:
        return {"running": 0.0, "suspended": 0.0, "total": 0.0}
    start = events[0]["time"]
    end = events[-1]["time"]
    suspended = 0.0
    suspend_start: Optional[float] = None
    for event in events:
        if event["type"] == "instance_suspended":
            suspend_start = event["time"]
        elif event["type"] == "instance_resumed" and suspend_start is not None:
            suspended += event["time"] - suspend_start
            suspend_start = None
    if suspend_start is not None:
        suspended += end - suspend_start
    total = end - start
    return {
        "running": max(0.0, total - suspended),
        "suspended": suspended,
        "total": total,
    }
