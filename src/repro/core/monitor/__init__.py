"""Monitoring: awareness model, adaptive load sampling, analytics."""

from . import queries
from .adaptive import AdaptiveMonitor, MonitorConfig, simulate_monitoring
from .awareness import AwarenessModel, NodeView

__all__ = [
    "AwarenessModel",
    "NodeView",
    "AdaptiveMonitor",
    "MonitorConfig",
    "simulate_monitoring",
    "queries",
]
