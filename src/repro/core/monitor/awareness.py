"""Awareness model: the server's view of the computing environment.

"Beyond task start times, task finish times and task failures, the system
also stores information regarding the load in each node, node availability,
node failure, node capacity... All together, this information allows the
creation of an awareness model which allows BioOpera to react to changes in
the computing environment" (paper, Section 3.4).

The :class:`AwarenessModel` is deliberately an *estimate*: external load is
whatever the adaptive monitors last reported, which may be stale — exactly
the situation behind the paper's scheduling-limitation discussion (Section
5.4) and our migration ablation.

Placement at scale
------------------

Beyond the per-node registry, the model maintains three indexes that keep
the dispatch hot path sublinear in cluster size:

* **per-placement-tag member sets** — ``candidates(tag)`` touches only the
  nodes carrying the tag instead of scanning the whole cluster;
* **lazy free-capacity heaps** — one max-heap per ``(tag, metric)`` pair,
  so the built-in scheduling policies can pick the best node in O(log n)
  via :meth:`best_node` without rebuilding candidate lists. Heap entries
  are invalidated lazily through per-node version counters: every mutation
  bumps the node's version and pushes a fresh entry, and stale entries are
  discarded when they surface at the top;
* **capacity-event (dirty-tag) tracking** — every event that can *create*
  placement capacity (job release, node recovery, upgrade, registration)
  records the affected placement tags. The dispatcher drains this set to
  skip queue segments whose tags had no capacity change since the last
  pump.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...errors import EngineError


@dataclass
class NodeView:
    """What the server currently believes about one node."""

    name: str
    cpus: int
    speed: float = 1.0
    tags: Tuple[str, ...] = ()
    up: bool = True
    #: excluded from placement after repeated job failures; cleared by a
    #: successful probe or the node rejoining.
    quarantined: bool = False
    external_load: float = 0.0     # CPUs' worth of non-BioOpera demand
    assigned: Set[str] = field(default_factory=set)  # job ids placed here
    last_report: float = 0.0

    @property
    def assigned_count(self) -> int:
        return len(self.assigned)

    def free_slots(self) -> int:
        """Slots not holding one of our jobs (hard placement bound)."""
        return max(0, self.cpus - self.assigned_count)

    def effective_free(self) -> float:
        """Estimated CPUs actually available: capacity minus external load
        minus our own assignments."""
        return max(0.0, self.cpus - self.external_load) - self.assigned_count

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "cpus": self.cpus,
            "speed": self.speed,
            "tags": list(self.tags),
            "up": self.up,
            "external_load": self.external_load,
        }


def effective_free_score(view: NodeView) -> float:
    """Scorer behind the least-loaded policy (and its heap metric)."""
    return view.effective_free()


def capacity_rate_score(view: NodeView) -> float:
    """Scorer behind the capacity-aware policy (and its heap metric):
    estimated free CPUs times per-CPU speed, floored so a saturated fast
    node still beats an idle crawler."""
    return max(0.25, view.effective_free()) * view.speed


#: heap metrics available to :meth:`AwarenessModel.best_node`. Policies
#: reference these by name so the heap fast path and the list-based
#: fallback share one scoring function (exact float equality matters for
#: the placement-equivalence guarantee).
HEAP_METRICS = {
    "effective-free": effective_free_score,
    "capacity-rate": capacity_rate_score,
}


class _RevName(str):
    """A node name whose ordering is reversed. A min-heap keyed on
    ``(-score, _RevName(name))`` therefore pops the maximum of
    ``(score, name)`` first — the same node that
    ``max(candidates, key=lambda v: (score(v), v.name))`` selects."""

    __slots__ = ()

    def __lt__(self, other):
        return str.__gt__(self, other)

    def __gt__(self, other):
        return str.__lt__(self, other)

    def __le__(self, other):
        return str.__ge__(self, other)

    def __ge__(self, other):
        return str.__le__(self, other)


class AwarenessModel:
    """Mutable registry of node views, fed by PEC reports."""

    def __init__(self):
        self._nodes: Dict[str, NodeView] = {}
        #: placement tag -> node names carrying it ("" = every node).
        self._members: Dict[str, Set[str]] = {"": set()}
        #: per-node version counters; a heap entry is valid only while its
        #: recorded version matches (lazy invalidation).
        self._versions: Dict[str, int] = {}
        #: (tag, metric) -> lazy max-heap of (-score, _RevName, version).
        self._heaps: Dict[Tuple[str, str], List[tuple]] = {}
        #: tags whose capacity may have grown since the last drain.
        self._dirty_tags: Set[str] = set()
        #: optional MetricsRegistry (set by the server's observability
        #: hub); assignment changes publish per-node utilization gauges.
        self.metrics = None

    def register(self, name: str, cpus: int, speed: float = 1.0,
                 tags: Tuple[str, ...] = ()) -> NodeView:
        if name in self._nodes:
            self._drop_membership(self._nodes[name])
        view = NodeView(name=name, cpus=cpus, speed=speed, tags=tuple(tags))
        self._nodes[name] = view
        self._versions[name] = self._versions.get(name, 0)
        self._members[""].add(name)
        for tag in view.tags:
            self._members.setdefault(tag, set()).add(name)
        self._touch(view, capacity_gain=True)
        return view

    def forget(self, name: str) -> None:
        view = self._nodes.pop(name, None)
        if view is None:
            return
        self._drop_membership(view)
        self._versions.pop(name, None)

    def _drop_membership(self, view: NodeView) -> None:
        self._members[""].discard(view.name)
        for tag in view.tags:
            members = self._members.get(tag)
            if members is not None:
                members.discard(view.name)

    def node(self, name: str) -> NodeView:
        view = self._nodes.get(name)
        if view is None:
            raise EngineError(f"awareness model has no node {name!r}")
        return view

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> List[NodeView]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    # -- index maintenance ------------------------------------------------------

    def _touch(self, view: NodeView, capacity_gain: bool = False) -> None:
        """Record a state change on ``view``: bump its version, refresh its
        heap entries, and (for events that can create capacity) mark its
        placement tags dirty for the dispatcher."""
        version = self._versions[view.name] + 1
        self._versions[view.name] = version
        if self._heaps:
            name = _RevName(view.name)
            scores = {
                metric: -scorer(view)
                for metric, scorer in HEAP_METRICS.items()
            }
            for tag in ("",) + view.tags:
                for metric, neg_score in scores.items():
                    heap = self._heaps.get((tag, metric))
                    if heap is not None:
                        heapq.heappush(heap, (neg_score, name, version))
        if capacity_gain:
            self._dirty_tags.add("")
            self._dirty_tags.update(view.tags)

    def drain_capacity_events(self) -> Set[str]:
        """Return (and clear) the placement tags that gained capacity since
        the previous drain. Consumed by ``Dispatcher.pump``."""
        dirty, self._dirty_tags = self._dirty_tags, set()
        return dirty

    # -- report ingestion -------------------------------------------------------

    def node_up(self, name: str, time: float = 0.0) -> None:
        view = self.node(name)
        view.up = True
        view.quarantined = False  # a rejoining node gets a clean slate
        view.last_report = time
        self._touch(view, capacity_gain=True)

    def node_down(self, name: str, time: float = 0.0) -> List[str]:
        """Mark a node down; returns the job ids that were assigned to it."""
        view = self.node(name)
        view.up = False
        view.last_report = time
        orphans = sorted(view.assigned)
        view.assigned.clear()
        self._touch(view)
        return orphans

    def load_report(self, name: str, external_load: float,
                    time: float = 0.0) -> None:
        view = self.node(name)
        view.external_load = max(0.0, float(external_load))
        view.last_report = time
        self._touch(view)

    def reconfigure(self, name: str, cpus: Optional[int] = None,
                    speed: Optional[float] = None) -> None:
        """Hardware upgrade (the paper's one-to-two-processors event)."""
        view = self.node(name)
        if cpus is not None:
            view.cpus = cpus
        if speed is not None:
            view.speed = speed
        self._touch(view, capacity_gain=True)

    # -- quarantine -------------------------------------------------------------

    def quarantine(self, name: str) -> None:
        """Exclude a node from placement (it stays up and keeps running
        whatever it already holds)."""
        view = self.node(name)
        view.quarantined = True
        self._touch(view)

    def release_quarantine(self, name: str) -> None:
        view = self._nodes.get(name)
        if view is not None and view.quarantined:
            view.quarantined = False
            self._touch(view, capacity_gain=True)

    # -- placement bookkeeping -----------------------------------------------------

    def assign(self, name: str, job_id: str) -> None:
        view = self.node(name)
        view.assigned.add(job_id)
        self._touch(view)
        self._publish_utilization(view)

    def release(self, name: str, job_id: str) -> None:
        view = self._nodes.get(name)
        if view is not None:
            view.assigned.discard(job_id)
            self._touch(view, capacity_gain=True)
            self._publish_utilization(view)

    def _publish_utilization(self, view: NodeView) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge(
                f"node_util/{view.name}",
                view.assigned_count / view.cpus if view.cpus else 0.0,
            )

    # -- queries -------------------------------------------------------------------

    def candidates(self, placement: str = "") -> List[NodeView]:
        """Up nodes with a free slot, optionally filtered by placement tag."""
        result = []
        for name in sorted(self._members.get(placement, ())):
            view = self._nodes[name]
            if view.up and not view.quarantined and view.free_slots() >= 1:
                result.append(view)
        return result

    def best_node(self, placement: str = "",
                  metric: str = "capacity-rate") -> Optional[str]:
        """O(log n) equivalent of ``max(candidates(placement), key=metric)``
        (ties broken by the larger name, matching the list-based policies).
        Returns None when no up node with a free slot carries the tag."""
        scorer = HEAP_METRICS.get(metric)
        if scorer is None:
            raise EngineError(f"unknown placement metric {metric!r}")
        key = (placement, metric)
        heap = self._heaps.get(key)
        members = self._members.get(placement, ())
        if heap is None or len(heap) > max(64, 4 * len(members)):
            heap = [
                (-scorer(self._nodes[name]), _RevName(name),
                 self._versions[name])
                for name in members
            ]
            heapq.heapify(heap)
            self._heaps[key] = heap
        while heap:
            _neg_score, name, version = heap[0]
            view = self._nodes.get(name)
            if (view is None or version != self._versions.get(name)
                    or not view.up or view.quarantined
                    or view.free_slots() < 1):
                heapq.heappop(heap)
                continue
            return str(name)
        return None

    def total_cpus(self, only_up: bool = True) -> int:
        return sum(
            v.cpus for v in self._nodes.values() if v.up or not only_up
        )

    def assigned_jobs(self, name: str) -> List[str]:
        return sorted(self.node(name).assigned)
