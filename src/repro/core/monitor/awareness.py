"""Awareness model: the server's view of the computing environment.

"Beyond task start times, task finish times and task failures, the system
also stores information regarding the load in each node, node availability,
node failure, node capacity... All together, this information allows the
creation of an awareness model which allows BioOpera to react to changes in
the computing environment" (paper, Section 3.4).

The :class:`AwarenessModel` is deliberately an *estimate*: external load is
whatever the adaptive monitors last reported, which may be stale — exactly
the situation behind the paper's scheduling-limitation discussion (Section
5.4) and our migration ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...errors import EngineError


@dataclass
class NodeView:
    """What the server currently believes about one node."""

    name: str
    cpus: int
    speed: float = 1.0
    tags: Tuple[str, ...] = ()
    up: bool = True
    external_load: float = 0.0     # CPUs' worth of non-BioOpera demand
    assigned: Set[str] = field(default_factory=set)  # job ids placed here
    last_report: float = 0.0

    @property
    def assigned_count(self) -> int:
        return len(self.assigned)

    def free_slots(self) -> int:
        """Slots not holding one of our jobs (hard placement bound)."""
        return max(0, self.cpus - self.assigned_count)

    def effective_free(self) -> float:
        """Estimated CPUs actually available: capacity minus external load
        minus our own assignments."""
        return max(0.0, self.cpus - self.external_load) - self.assigned_count

    def to_dict(self) -> Dict:
        return {
            "name": self.name,
            "cpus": self.cpus,
            "speed": self.speed,
            "tags": list(self.tags),
            "up": self.up,
            "external_load": self.external_load,
        }


class AwarenessModel:
    """Mutable registry of node views, fed by PEC reports."""

    def __init__(self):
        self._nodes: Dict[str, NodeView] = {}

    def register(self, name: str, cpus: int, speed: float = 1.0,
                 tags: Tuple[str, ...] = ()) -> NodeView:
        view = NodeView(name=name, cpus=cpus, speed=speed, tags=tuple(tags))
        self._nodes[name] = view
        return view

    def forget(self, name: str) -> None:
        self._nodes.pop(name, None)

    def node(self, name: str) -> NodeView:
        view = self._nodes.get(name)
        if view is None:
            raise EngineError(f"awareness model has no node {name!r}")
        return view

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> List[NodeView]:
        return [self._nodes[name] for name in sorted(self._nodes)]

    # -- report ingestion -------------------------------------------------------

    def node_up(self, name: str, time: float = 0.0) -> None:
        view = self.node(name)
        view.up = True
        view.last_report = time

    def node_down(self, name: str, time: float = 0.0) -> List[str]:
        """Mark a node down; returns the job ids that were assigned to it."""
        view = self.node(name)
        view.up = False
        view.last_report = time
        orphans = sorted(view.assigned)
        view.assigned.clear()
        return orphans

    def load_report(self, name: str, external_load: float,
                    time: float = 0.0) -> None:
        view = self.node(name)
        view.external_load = max(0.0, float(external_load))
        view.last_report = time

    def reconfigure(self, name: str, cpus: Optional[int] = None,
                    speed: Optional[float] = None) -> None:
        """Hardware upgrade (the paper's one-to-two-processors event)."""
        view = self.node(name)
        if cpus is not None:
            view.cpus = cpus
        if speed is not None:
            view.speed = speed

    # -- placement bookkeeping -----------------------------------------------------

    def assign(self, name: str, job_id: str) -> None:
        self.node(name).assigned.add(job_id)

    def release(self, name: str, job_id: str) -> None:
        if name in self._nodes:
            self._nodes[name].assigned.discard(job_id)

    # -- queries -------------------------------------------------------------------

    def candidates(self, placement: str = "") -> List[NodeView]:
        """Up nodes with a free slot, optionally filtered by placement tag."""
        result = []
        for view in self.nodes():
            if not view.up or view.free_slots() < 1:
                continue
            if placement and placement not in view.tags:
                continue
            result.append(view)
        return result

    def total_cpus(self, only_up: bool = True) -> int:
        return sum(
            v.cpus for v in self._nodes.values() if v.up or not only_up
        )

    def assigned_jobs(self, name: str) -> List[str]:
        return sorted(self.node(name).assigned)
