"""Canonical OCR printer: :class:`ProcessTemplate` -> text.

The printer emits the same grammar the parser accepts, so
``parse_ocr(print_ocr(t))`` reproduces ``t`` exactly (a property test
enforces this). Templates built programmatically can therefore be stored,
diffed, and reviewed as readable OCR text.
"""

from __future__ import annotations

import json
from typing import Any, List

from ...errors import OCRError
from ..model.conditions import TRUE
from ..model.data import Binding
from ..model.failure import ABORT, ALTERNATIVE, FailureHandler, IGNORE
from ..model.process import ProcessTemplate, TaskGraph
from ..model.tasks import Activity, Block, ParallelTask, SubprocessTask, Task

_INDENT = "  "


def _literal(value: Any) -> str:
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (int, float)):
        return repr(value)
    raise OCRError(
        f"value {value!r} of type {type(value).__name__} has no OCR literal "
        f"form"
    )


def _binding(binding: Binding) -> str:
    if binding.kind == "const":
        return _literal(binding.value)
    return binding.to_text()


def _string(text: str) -> str:
    return json.dumps(text)


class _Printer:
    def __init__(self):
        self.lines: List[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text}")

    def blank(self) -> None:
        if self.lines and self.lines[-1] != "":
            self.lines.append("")

    # -- common clauses ---------------------------------------------------------

    def emit_body(self, task: Task, *, default_join: str = "or") -> None:
        if task.description:
            self.emit(f"DESCRIPTION {_string(task.description)}")
        if task.join != default_join:
            self.emit(f"JOIN {task.join}")
        for param, binding in sorted(task.inputs.items()):
            self.emit(f"IN {param} = {_binding(binding)}")
        for source_field, wb_name in task.output_mappings:
            self.emit(f"MAP {source_field} -> {wb_name}")
        for signal in task.awaits:
            self.emit(f"AWAIT {signal}")
        for signal in task.raises:
            self.emit(f"RAISE {signal}")
        if task.failure is not None:
            self.emit(self.failure_clause(task.failure))

    @staticmethod
    def failure_clause(handler: FailureHandler) -> str:
        if handler.strategy == IGNORE:
            return "ON_FAILURE IGNORE"
        if handler.strategy == ABORT:
            return "ON_FAILURE ABORT"
        if handler.strategy == ALTERNATIVE:
            return f"ON_FAILURE ALTERNATIVE {handler.alternative_program}"
        clause = f"ON_FAILURE RETRY {handler.max_retries}"
        if handler.then == ALTERNATIVE:
            clause += f" THEN ALTERNATIVE {handler.alternative_program}"
        elif handler.then == IGNORE:
            clause += " THEN IGNORE"
        else:
            clause += " THEN ABORT"
        return clause

    # -- tasks -------------------------------------------------------------------

    def emit_task(self, task: Task) -> None:
        if isinstance(task, Activity):
            self.emit(f"ACTIVITY {task.name}")
            self.depth += 1
            self.emit(f"PROGRAM {task.program}")
            self.emit_body(task)
            for key, value in sorted(task.parameters.items()):
                self.emit(f"PARAM {key} = {_literal(value)}")
            self.depth -= 1
            self.emit("END")
        elif isinstance(task, ParallelTask):
            self.emit(f"PARALLEL {task.name}")
            self.depth += 1
            self.emit(
                f"FOREACH {_binding(task.list_input)} AS {task.element_param}"
            )
            self.emit_body(task)
            self.emit_task(task.body)
            self.depth -= 1
            self.emit("END")
        elif isinstance(task, Block):
            self.emit(f"BLOCK {task.name}")
            self.depth += 1
            self.emit_body(task)
            self.emit_graph(task.graph)
            self.depth -= 1
            self.emit("END")
        elif isinstance(task, SubprocessTask):
            self.emit(f"SUBPROCESS {task.name}")
            self.depth += 1
            clause = f"TEMPLATE {task.template_name}"
            if task.version is not None:
                clause += f" VERSION {task.version}"
            self.emit(clause)
            self.emit_body(task)
            self.depth -= 1
            self.emit("END")
        else:  # pragma: no cover - defensive
            raise OCRError(f"cannot print task kind {task.kind!r}")

    def emit_graph(self, graph: TaskGraph) -> None:
        for task in graph.tasks.values():
            self.emit_task(task)
        for connector in graph.connectors:
            clause = f"CONNECT {connector.source} -> {connector.target}"
            if connector.condition != TRUE:
                clause += f" WHEN [{connector.condition.to_text()}]"
            self.emit(clause)

    # -- process -----------------------------------------------------------------

    def emit_process(self, template: ProcessTemplate) -> None:
        self.emit(f"PROCESS {template.name}")
        self.depth += 1
        if template.description:
            self.emit(f"DESCRIPTION {_string(template.description)}")
        for param in template.parameters:
            clause = f"INPUT {param.name}"
            if param.default is not None:
                clause += f" DEFAULT {_literal(param.default)}"
            elif param.optional:
                clause += " OPTIONAL"
            if param.description:
                clause += f" DESCRIPTION {_string(param.description)}"
            self.emit(clause)
        for out_name, binding in sorted(template.outputs.items()):
            self.emit(f"OUTPUT {out_name} = {_binding(binding)}")
        self.blank()
        self.emit_graph(template.graph)
        for sphere in template.spheres:
            self.emit(f"SPHERE {sphere.name}")
            self.depth += 1
            self.emit("TASKS " + " ".join(sphere.tasks))
            for member, program in sphere.compensation:
                self.emit(f"COMPENSATE {member} WITH {program}")
            if sphere.on_abort != "abort_process":
                self.emit(f"ON_ABORT {sphere.on_abort}")
            self.depth -= 1
            self.emit("END")
        self.depth -= 1
        self.emit("END")


def print_ocr(template: ProcessTemplate) -> str:
    """Render a template as canonical OCR text."""
    printer = _Printer()
    printer.emit_process(template)
    return "\n".join(printer.lines) + "\n"
