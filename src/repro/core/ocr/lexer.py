"""Tokenizer for the OCR (Opera Canonical Representation) text format.

OCR is the "internal programming language used in BioOpera to represent and
manipulate processes" (paper, Figure 2). The reproduction's concrete syntax
is keyword-oriented and free-form (newlines are not significant); ``#``
starts a comment to end of line. Activation conditions are carried verbatim
inside ``[...]`` and handed to the condition parser, e.g.::

    CONNECT UserInput -> QueueGeneration WHEN [NOT DEFINED(wb.queue_file)]
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...errors import OCRSyntaxError

KEYWORDS = {
    "PROCESS", "DESCRIPTION", "INPUT", "OUTPUT", "OPTIONAL", "DEFAULT",
    "ACTIVITY", "PROGRAM", "PARAM", "IN", "MAP", "ON_FAILURE", "RETRY",
    "THEN", "ABORT", "IGNORE", "ALTERNATIVE", "BLOCK", "PARALLEL",
    "FOREACH", "AS", "SUBPROCESS", "TEMPLATE", "VERSION", "CONNECT",
    "WHEN", "JOIN", "SPHERE", "TASKS", "COMPENSATE", "WITH", "ON_ABORT",
    "RAISE", "AWAIT", "END", "TRUE", "FALSE", "NULL",
}

# token kinds: kw, ident, dotted (a.b.c), string, number, punct, condition, eof


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


_PUNCT = ("->", "=", ",")


def tokenize(source: str) -> List[Token]:
    """Tokenize OCR source text; raises :class:`OCRSyntaxError` on garbage."""
    tokens: List[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(source)

    def error(message: str) -> OCRSyntaxError:
        return OCRSyntaxError(message, line=line, column=column)

    while position < length:
        ch = source[position]
        if ch == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            position += 1
            column += 1
            continue
        if ch == "#":
            while position < length and source[position] != "\n":
                position += 1
            continue
        start_line, start_column = line, column
        if ch == "[":
            end = source.find("]", position + 1)
            if end < 0:
                raise error("unterminated condition '['")
            raw = source[position + 1:end]
            if "\n" in raw:
                line += raw.count("\n")
                column = len(raw) - raw.rfind("\n")
            else:
                column += end - position + 1
            tokens.append(Token("condition", raw.strip(), start_line, start_column))
            position = end + 1
            continue
        if ch == '"':
            end = position + 1
            chunks: List[str] = []
            while end < length and source[end] != '"':
                if source[end] == "\\" and end + 1 < length:
                    nxt = source[end + 1]
                    chunks.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                                  .get(nxt, nxt))
                    end += 2
                elif source[end] == "\n":
                    raise error("newline inside string literal")
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise error("unterminated string literal")
            tokens.append(Token("string", "".join(chunks),
                                start_line, start_column))
            column += end - position + 1
            position = end + 1
            continue
        two = source[position:position + 2]
        if two == "->":
            tokens.append(Token("punct", "->", start_line, start_column))
            position += 2
            column += 2
            continue
        if ch in "=,":
            tokens.append(Token("punct", ch, start_line, start_column))
            position += 1
            column += 1
            continue
        if ch.isdigit() or (ch == "-" and position + 1 < length
                            and source[position + 1].isdigit()):
            end = position + 1
            while end < length and (source[end].isdigit() or source[end] == "."):
                end += 1
            text = source[position:end]
            if text.count(".") > 1:
                raise error(f"malformed number {text!r}")
            tokens.append(Token("number", text, start_line, start_column))
            column += end - position
            position = end
            continue
        if ch.isalpha() or ch == "_":
            end = position + 1
            while end < length and (source[end].isalnum()
                                    or source[end] in "_."):
                end += 1
            text = source[position:end].rstrip(".")
            end = position + len(text)
            # Keywords are recognized in UPPERCASE only, so identifiers like
            # `Join` or `End` remain usable as task names.
            if text in KEYWORDS and "." not in text:
                tokens.append(Token("kw", text.upper(),
                                    start_line, start_column))
            elif "." in text:
                tokens.append(Token("dotted", text, start_line, start_column))
            else:
                tokens.append(Token("ident", text, start_line, start_column))
            column += end - position
            position = end
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
