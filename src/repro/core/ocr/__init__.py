"""OCR — Opera Canonical Representation: textual process language."""

from .lexer import Token, tokenize
from .parser import parse_ocr, parse_ocr_unchecked
from .printer import print_ocr

__all__ = ["Token", "tokenize", "parse_ocr", "parse_ocr_unchecked", "print_ocr"]
