"""Recursive-descent parser: OCR text -> :class:`ProcessTemplate`.

The concrete grammar (see :mod:`repro.core.ocr.lexer` for tokens)::

    process    := "PROCESS" IDENT header* item* "END"
    header     := "DESCRIPTION" STRING
                | "INPUT" IDENT ["OPTIONAL"] ["DEFAULT" literal]
                          ["DESCRIPTION" STRING]
                | "OUTPUT" IDENT "=" binding
    item       := task | connect | sphere
    task       := activity | block | parallel | subprocess
    activity   := "ACTIVITY" IDENT "PROGRAM" name body* "END"
    block      := "BLOCK" IDENT body* (task|connect)* "END"
    parallel   := "PARALLEL" IDENT "FOREACH" binding "AS" IDENT
                  body* task "END"
    subprocess := "SUBPROCESS" IDENT "TEMPLATE" name ["VERSION" NUMBER]
                  body* "END"
    body       := "IN" IDENT "=" binding
                | "MAP" IDENT "->" IDENT
                | "PARAM" IDENT "=" literal
                | "JOIN" ("AND"|"OR" as IDENT)
                | "DESCRIPTION" STRING
                | on_failure
    on_failure := "ON_FAILURE" ( "IGNORE" | "ABORT"
                | "ALTERNATIVE" name param*
                | "RETRY" NUMBER ["THEN" ("ABORT"|"IGNORE"|"ALTERNATIVE" name)] )
    connect    := "CONNECT" IDENT "->" IDENT ["WHEN" CONDITION]
    sphere     := "SPHERE" IDENT "TASKS" IDENT+
                  ("COMPENSATE" IDENT "WITH" name)*
                  ["ON_ABORT" IDENT] "END"
    binding    := "wb" "." IDENT | IDENT "." IDENT | literal
    literal    := STRING | NUMBER | "TRUE" | "FALSE" | "NULL"
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...errors import OCRSyntaxError
from ..model.conditions import parse_condition
from ..model.data import Binding, ProcessParameter
from ..model.failure import (
    ABORT,
    ALTERNATIVE,
    FailureHandler,
    IGNORE,
    RETRY,
    Sphere,
)
from ..model.process import ProcessTemplate, TaskGraph
from ..model.tasks import Activity, Block, ParallelTask, SubprocessTask, Task
from .lexer import Token, tokenize

_TASK_KEYWORDS = ("ACTIVITY", "BLOCK", "PARALLEL", "SUBPROCESS")


class _TaskBody:
    """Accumulated common clauses of a task body."""

    def __init__(self):
        self.inputs: Dict[str, Binding] = {}
        self.output_mappings: List[Tuple[str, str]] = []
        self.parameters: Dict[str, Any] = {}
        self.failure: Optional[FailureHandler] = None
        self.join: str = "or"
        self.description: str = ""
        self.raises: List[str] = []
        self.awaits: List[str] = []

    def task_kwargs(self) -> Dict[str, Any]:
        return {
            "inputs": self.inputs,
            "output_mappings": self.output_mappings,
            "failure": self.failure,
            "join": self.join,
            "description": self.description,
            "raises": self.raises,
            "awaits": self.awaits,
        }


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token plumbing -------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> OCRSyntaxError:
        token = token or self.peek()
        return OCRSyntaxError(message, line=token.line, column=token.column)

    def expect_kw(self, keyword: str) -> Token:
        token = self.advance()
        if token.kind != "kw" or token.value != keyword:
            raise self.error(f"expected {keyword}, got {token.value!r}", token)
        return token

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.advance()
        if token.kind != "ident":
            raise self.error(f"expected {what}, got {token.value!r}", token)
        return token.value

    def expect_punct(self, punct: str) -> None:
        token = self.advance()
        if token.kind != "punct" or token.value != punct:
            raise self.error(f"expected {punct!r}, got {token.value!r}", token)

    def at_kw(self, *keywords: str) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.value in keywords

    def expect_name(self) -> str:
        """A program/template name: identifier or dotted path."""
        token = self.advance()
        if token.kind in ("ident", "dotted"):
            return token.value
        raise self.error(f"expected a name, got {token.value!r}", token)

    # -- literals & bindings ----------------------------------------------------

    def parse_literal(self) -> Any:
        token = self.advance()
        if token.kind == "string":
            return token.value
        if token.kind == "number":
            return float(token.value) if "." in token.value else int(token.value)
        if token.kind == "kw" and token.value in ("TRUE", "FALSE", "NULL"):
            return {"TRUE": True, "FALSE": False, "NULL": None}[token.value]
        raise self.error(f"expected a literal, got {token.value!r}", token)

    def parse_binding(self) -> Binding:
        token = self.peek()
        if token.kind == "dotted":
            self.advance()
            parts = token.value.split(".")
            if len(parts) != 2:
                raise self.error(
                    f"binding must be wb.<item> or <task>.<field>, got "
                    f"{token.value!r}", token
                )
            if parts[0] == "wb":
                return Binding.whiteboard(parts[1])
            return Binding.task_output(parts[0], parts[1])
        return Binding.constant(self.parse_literal())

    # -- process ----------------------------------------------------------------

    def parse_process(self) -> ProcessTemplate:
        self.expect_kw("PROCESS")
        name = self.expect_ident("process name")
        description = ""
        parameters: List[ProcessParameter] = []
        outputs: Dict[str, Binding] = {}
        graph = TaskGraph()
        spheres: List[Sphere] = []
        while not self.at_kw("END"):
            if self.at_kw("DESCRIPTION"):
                self.advance()
                token = self.advance()
                if token.kind != "string":
                    raise self.error("DESCRIPTION needs a string", token)
                description = token.value
            elif self.at_kw("INPUT"):
                parameters.append(self.parse_input())
            elif self.at_kw("OUTPUT"):
                self.advance()
                out_name = self.expect_ident("output name")
                self.expect_punct("=")
                outputs[out_name] = self.parse_binding()
            elif self.at_kw(*_TASK_KEYWORDS):
                graph.add_task(self.parse_task())
            elif self.at_kw("CONNECT"):
                self.parse_connect(graph)
            elif self.at_kw("SPHERE"):
                spheres.append(self.parse_sphere())
            else:
                raise self.error(
                    f"unexpected {self.peek().value!r} in process body"
                )
        self.expect_kw("END")
        if self.peek().kind != "eof":
            raise self.error("trailing input after process END")
        return ProcessTemplate(
            name=name,
            description=description,
            parameters=parameters,
            outputs=outputs,
            spheres=spheres,
            graph=graph,
        )

    def parse_input(self) -> ProcessParameter:
        self.expect_kw("INPUT")
        name = self.expect_ident("input name")
        optional = False
        default: Any = None
        description = ""
        while True:
            if self.at_kw("OPTIONAL"):
                self.advance()
                optional = True
            elif self.at_kw("DEFAULT"):
                self.advance()
                default = self.parse_literal()
                optional = True
            elif self.at_kw("DESCRIPTION"):
                self.advance()
                token = self.advance()
                if token.kind != "string":
                    raise self.error("DESCRIPTION needs a string", token)
                description = token.value
            else:
                break
        return ProcessParameter(
            name=name, optional=optional, default=default,
            description=description,
        )

    # -- tasks --------------------------------------------------------------------

    def parse_task(self) -> Task:
        if self.at_kw("ACTIVITY"):
            return self.parse_activity()
        if self.at_kw("BLOCK"):
            return self.parse_block()
        if self.at_kw("PARALLEL"):
            return self.parse_parallel()
        if self.at_kw("SUBPROCESS"):
            return self.parse_subprocess()
        raise self.error(f"expected a task, got {self.peek().value!r}")

    def parse_body_clause(self, body: _TaskBody) -> bool:
        """Parse one common clause into ``body``; False if none matched."""
        if self.at_kw("IN"):
            self.advance()
            param = self.expect_ident("input parameter")
            self.expect_punct("=")
            body.inputs[param] = self.parse_binding()
            return True
        if self.at_kw("MAP"):
            self.advance()
            source_field = self.expect_ident("output field")
            self.expect_punct("->")
            wb_name = self.expect_ident("whiteboard item")
            body.output_mappings.append((source_field, wb_name))
            return True
        if self.at_kw("PARAM"):
            self.advance()
            key = self.expect_ident("parameter name")
            self.expect_punct("=")
            body.parameters[key] = self.parse_literal()
            return True
        if self.at_kw("JOIN"):
            self.advance()
            mode = self.expect_ident("join mode (and/or)").lower()
            body.join = mode
            return True
        if self.at_kw("DESCRIPTION"):
            self.advance()
            token = self.advance()
            if token.kind != "string":
                raise self.error("DESCRIPTION needs a string", token)
            body.description = token.value
            return True
        if self.at_kw("ON_FAILURE"):
            body.failure = self.parse_on_failure()
            return True
        if self.at_kw("RAISE"):
            self.advance()
            body.raises.append(self.expect_ident("signal name"))
            return True
        if self.at_kw("AWAIT"):
            self.advance()
            body.awaits.append(self.expect_ident("signal name"))
            return True
        return False

    def parse_on_failure(self) -> FailureHandler:
        self.expect_kw("ON_FAILURE")
        if self.at_kw("IGNORE"):
            self.advance()
            return FailureHandler(strategy=IGNORE)
        if self.at_kw("ABORT"):
            self.advance()
            return FailureHandler(strategy=ABORT)
        if self.at_kw("ALTERNATIVE"):
            self.advance()
            program = self.expect_name()
            return FailureHandler(strategy=ALTERNATIVE,
                                  alternative_program=program)
        if self.at_kw("RETRY"):
            self.advance()
            token = self.advance()
            if token.kind != "number":
                raise self.error("RETRY needs a count", token)
            retries = int(float(token.value))
            then = ABORT
            program = ""
            if self.at_kw("THEN"):
                self.advance()
                if self.at_kw("ABORT"):
                    self.advance()
                elif self.at_kw("IGNORE"):
                    self.advance()
                    then = IGNORE
                elif self.at_kw("ALTERNATIVE"):
                    self.advance()
                    then = ALTERNATIVE
                    program = self.expect_name()
                else:
                    raise self.error("bad ON_FAILURE ... THEN clause")
            return FailureHandler(
                strategy=RETRY, max_retries=retries, then=then,
                alternative_program=program,
            )
        raise self.error("bad ON_FAILURE clause")

    def parse_activity(self) -> Activity:
        self.expect_kw("ACTIVITY")
        name = self.expect_ident("activity name")
        self.expect_kw("PROGRAM")
        program = self.expect_name()
        body = _TaskBody()
        while self.parse_body_clause(body):
            pass
        self.expect_kw("END")
        return Activity(
            name=name, program=program, parameters=body.parameters,
            **body.task_kwargs(),
        )

    def parse_block(self) -> Block:
        self.expect_kw("BLOCK")
        name = self.expect_ident("block name")
        body = _TaskBody()
        graph = TaskGraph()
        while not self.at_kw("END"):
            if self.parse_body_clause(body):
                continue
            if self.at_kw(*_TASK_KEYWORDS):
                graph.add_task(self.parse_task())
            elif self.at_kw("CONNECT"):
                self.parse_connect(graph)
            else:
                raise self.error(
                    f"unexpected {self.peek().value!r} in block body"
                )
        self.expect_kw("END")
        if body.parameters:
            raise self.error(f"block {name!r} cannot take PARAM clauses")
        return Block(name=name, graph=graph, **body.task_kwargs())

    def parse_parallel(self) -> ParallelTask:
        self.expect_kw("PARALLEL")
        name = self.expect_ident("parallel task name")
        self.expect_kw("FOREACH")
        list_input = self.parse_binding()
        self.expect_kw("AS")
        element_param = self.expect_ident("element parameter")
        body = _TaskBody()
        inner: Optional[Task] = None
        while not self.at_kw("END"):
            if self.parse_body_clause(body):
                continue
            if self.at_kw(*_TASK_KEYWORDS):
                if inner is not None:
                    raise self.error(
                        f"parallel task {name!r} has more than one body task"
                    )
                inner = self.parse_task()
            else:
                raise self.error(
                    f"unexpected {self.peek().value!r} in parallel body"
                )
        self.expect_kw("END")
        if inner is None:
            raise self.error(f"parallel task {name!r} has no body task")
        if body.parameters:
            raise self.error(f"parallel task {name!r} cannot take PARAM")
        return ParallelTask(
            name=name, list_input=list_input, body=inner,
            element_param=element_param, **body.task_kwargs(),
        )

    def parse_subprocess(self) -> SubprocessTask:
        self.expect_kw("SUBPROCESS")
        name = self.expect_ident("subprocess task name")
        self.expect_kw("TEMPLATE")
        template_name = self.expect_name()
        version: Optional[int] = None
        if self.at_kw("VERSION"):
            self.advance()
            token = self.advance()
            if token.kind != "number":
                raise self.error("VERSION needs a number", token)
            version = int(float(token.value))
        body = _TaskBody()
        while self.parse_body_clause(body):
            pass
        self.expect_kw("END")
        if body.parameters:
            raise self.error(f"subprocess {name!r} cannot take PARAM")
        return SubprocessTask(
            name=name, template_name=template_name, version=version,
            **body.task_kwargs(),
        )

    # -- connectors & spheres -------------------------------------------------------

    def parse_connect(self, graph: TaskGraph) -> None:
        self.expect_kw("CONNECT")
        source = self.expect_ident("source task")
        self.expect_punct("->")
        target = self.expect_ident("target task")
        condition = None
        if self.at_kw("WHEN"):
            self.advance()
            token = self.advance()
            if token.kind != "condition":
                raise self.error(
                    "WHEN needs a bracketed condition [ ... ]", token
                )
            condition = parse_condition(token.value)
        graph.connect(source, target, condition)

    def parse_sphere(self) -> Sphere:
        self.expect_kw("SPHERE")
        name = self.expect_ident("sphere name")
        self.expect_kw("TASKS")
        tasks: List[str] = [self.expect_ident("sphere member")]
        while self.peek().kind == "ident":
            tasks.append(self.advance().value)
        compensation: List[Tuple[str, str]] = []
        on_abort = "abort_process"
        while not self.at_kw("END"):
            if self.at_kw("COMPENSATE"):
                self.advance()
                member = self.expect_ident("compensated task")
                self.expect_kw("WITH")
                compensation.append((member, self.expect_name()))
            elif self.at_kw("ON_ABORT"):
                self.advance()
                on_abort = self.expect_ident("sphere policy")
            else:
                raise self.error(
                    f"unexpected {self.peek().value!r} in sphere body"
                )
        self.expect_kw("END")
        return Sphere(
            name=name, tasks=tuple(tasks),
            compensation=tuple(compensation), on_abort=on_abort,
        )


def parse_ocr(source: str) -> ProcessTemplate:
    """Parse OCR source text into a validated :class:`ProcessTemplate`."""
    template = _Parser(tokenize(source)).parse_process()
    return template.ensure_valid()


def parse_ocr_unchecked(source: str) -> ProcessTemplate:
    """Parse without validation (used by tooling that inspects drafts)."""
    return _Parser(tokenize(source)).parse_process()
