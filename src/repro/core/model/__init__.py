"""OCR object model: processes, tasks, connectors, conditions, data."""

from .conditions import Expr, TRUE, parse_condition
from .connectors import ControlConnector, DataConnector
from .data import Binding, ProcessParameter, UNDEFINED, Whiteboard
from .failure import (
    ABORT,
    ALTERNATIVE,
    DEFAULT_HANDLER,
    FailureHandler,
    IGNORE,
    RETRY,
    Sphere,
)
from .process import ProcessTemplate, TaskGraph
from .tasks import Activity, Block, ParallelTask, SubprocessTask, Task

__all__ = [
    "Binding",
    "ProcessParameter",
    "UNDEFINED",
    "Whiteboard",
    "Expr",
    "TRUE",
    "parse_condition",
    "ControlConnector",
    "DataConnector",
    "FailureHandler",
    "DEFAULT_HANDLER",
    "Sphere",
    "RETRY",
    "ALTERNATIVE",
    "IGNORE",
    "ABORT",
    "Task",
    "Activity",
    "Block",
    "ParallelTask",
    "SubprocessTask",
    "ProcessTemplate",
    "TaskGraph",
]
